//! Regression tests for the paper's Figure 1 and the existential-optimality
//! narrative built around it.

use greedy_spanner::analysis::{evaluate, max_stretch_over_edges};
use greedy_spanner::optimality::{cage_overlay_instances, figure_one_instance};
use greedy_spanner::Spanner;
use spanner_graph::girth::girth;
use spanner_metric::generators::star_metric;

#[test]
fn figure_one_numbers_match_the_paper() {
    // "The greedy 3-spanner for the graph G ... includes all 15 edges of H,
    //  whereas the optimal 3-spanner for G consists of the 9 edges of S."
    let inst = figure_one_instance(0.1).unwrap();
    assert_eq!(inst.graph.num_vertices(), 10);
    assert_eq!(inst.graph.num_edges(), 21);

    let greedy = Spanner::greedy().stretch(3.0).build(&inst.graph).unwrap();
    assert_eq!(greedy.spanner.num_edges(), 15);
    assert_eq!(inst.count_h_edges_in(&greedy.spanner), 15);
    assert_eq!(inst.star_edge_keys.len(), 9);

    // The star is indeed a valid 3-spanner of G (t >= 2 + 2ε), and lighter.
    let star = inst
        .graph
        .filter_edges(|_, e| inst.star_edge_keys.contains(&e.key()));
    let star_with_unit_edges = {
        // Star edges that coincide with Petersen edges have weight 1 and are
        // present in G; the remaining 6 have weight 1 + ε.
        assert_eq!(star.num_edges(), 9);
        star
    };
    assert!(max_stretch_over_edges(&inst.graph, &star_with_unit_edges) <= 3.0 + 1e-9);
    assert!(star_with_unit_edges.total_weight() < greedy.spanner.total_weight());

    // The greedy spanner's stretch target is still met, of course.
    let report = evaluate(&inst.graph, &greedy.spanner, 3.0);
    assert!(report.meets_stretch_target());
}

#[test]
fn cage_overlays_scale_the_same_phenomenon() {
    for (name, inst) in cage_overlay_instances(0.05).unwrap() {
        let h_only = inst
            .graph
            .filter_edges(|_, e| inst.h_edge_keys.contains(&e.key()));
        let g = girth(&h_only).unwrap();
        let t = (g - 2) as f64;
        let greedy = Spanner::greedy().stretch(t).build(&inst.graph).unwrap();
        assert_eq!(
            greedy.spanner.num_edges(),
            inst.h_edge_keys.len(),
            "greedy should keep exactly the cage edges for {name}"
        );
        assert!(inst.star_weight() < greedy.spanner.total_weight());
    }
}

#[test]
fn degree_blowup_instance_matches_hm06_phenomenon() {
    // Metric spaces exist on which the greedy (1 + ε)-spanner has degree
    // n − 1 (Section 5's motivation for the approximate-greedy algorithm).
    for n in [10usize, 40, 120] {
        let metric = star_metric(n);
        let result = Spanner::greedy().stretch(1.5).build(&metric).unwrap();
        assert_eq!(result.spanner.max_degree(), n - 1);
        assert_eq!(result.spanner.num_edges(), n - 1);
    }
}
