//! Property suite for the determinism guarantee of the batched
//! filter-then-commit parallel greedy: across random graphs, stretch values
//! and thread counts {1, 2, 4, 8}, the pipeline's output must be
//! **byte-identical** to the sequential reference loop
//! (`greedy_spanner_reference`) — same edges, same insertion order, same
//! exact weights.

use greedy_spanner::greedy::greedy_spanner_reference;
use greedy_spanner::Spanner;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{complete_graph_with_weights, erdos_renyi_connected};
use spanner_graph::WeightedGraph;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Asserts the pipeline output equals the reference bit for bit at every
/// thread count.
fn assert_thread_count_invariant(g: &WeightedGraph, stretch: f64) {
    let reference = greedy_spanner_reference(g, stretch).expect("valid stretch");
    for threads in THREAD_COUNTS {
        let out = Spanner::greedy()
            .stretch(stretch)
            .threads(threads)
            .build(g)
            .expect("valid stretch");
        // `WeightedGraph` equality is structural and exact: same vertex
        // count, same edge list in the same insertion order, same f64
        // weights — byte-identical output, not just set-equal.
        assert_eq!(
            out.spanner,
            *reference.spanner(),
            "threads = {threads}, t = {stretch}, n = {}, m = {}",
            g.num_vertices(),
            g.num_edges()
        );
        assert_eq!(out.stats.edges_added, reference.edges_added());
        assert_eq!(out.stats.threads_used, threads);
        assert_eq!(
            out.stats.workspace_reuse_hits, out.stats.distance_queries,
            "threads = {threads}: a pool engine allocated mid-construction"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse-to-medium random graphs across the stretch range.
    #[test]
    fn parallel_greedy_matches_reference_on_er_graphs(
        seed in 0u64..10_000,
        n in 8usize..60,
        stretch in 1.0f64..6.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, 1.0..10.0, &mut rng);
        assert_thread_count_invariant(&g, stretch);
    }

    /// Dense graphs with near-uniform weights: many candidates share one
    /// weight-class batch, which maximizes snapshot staleness and exercises
    /// the commit re-check path hard.
    #[test]
    fn parallel_greedy_matches_reference_on_dense_uniform_weights(
        seed in 0u64..10_000,
        n in 6usize..30,
        stretch in 1.0f64..3.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = complete_graph_with_weights(n, 1.0..1.05, &mut rng);
        assert_thread_count_invariant(&g, stretch);
    }

    /// High-spread weights: many tiny weight-class batches, exercising the
    /// batch-boundary logic and the inline small-batch path.
    #[test]
    fn parallel_greedy_matches_reference_on_high_spread_weights(
        seed in 0u64..10_000,
        n in 8usize..40,
        stretch in 1.0f64..4.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.4, 1.0..10_000.0, &mut rng);
        assert_thread_count_invariant(&g, stretch);
    }
}
