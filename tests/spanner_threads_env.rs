//! The `SPANNER_THREADS` environment override, in a binary of its own.
//!
//! This is deliberately the only test in this file: `std::env::set_var`
//! races against concurrent `getenv` calls under the default multi-threaded
//! test harness, so the override is exercised in a process where nothing
//! else runs. The env var is set before any construction, never changed
//! afterwards, and the assertions cover both halves of the precedence rule
//! in [`greedy_spanner::SpannerConfig::resolve_threads`].

use greedy_spanner::greedy::greedy_spanner_reference;
use greedy_spanner::Spanner;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;

#[test]
fn spanner_threads_env_is_an_equivalent_override() {
    std::env::set_var("SPANNER_THREADS", "4");

    let mut rng = SmallRng::seed_from_u64(4242);
    let g = erdos_renyi_connected(40, 0.3, 1.0..10.0, &mut rng);
    let reference = greedy_spanner_reference(&g, 2.0).unwrap();

    // Config leaves `threads` at 0 → the env value applies.
    let via_env = Spanner::greedy().stretch(2.0).build(&g).unwrap();
    assert_eq!(via_env.stats.threads_used, 4, "env override must apply");

    // An explicit builder value beats the env override.
    let via_explicit = Spanner::greedy().stretch(2.0).threads(2).build(&g).unwrap();
    assert_eq!(
        via_explicit.stats.threads_used, 2,
        "explicit config must beat the env override"
    );

    // And neither changes the output — the determinism guarantee.
    assert_eq!(via_env.spanner, *reference.spanner());
    assert_eq!(via_explicit.spanner, *reference.spanner());
}
