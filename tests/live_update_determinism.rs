//! Property suite for the live-update subsystem's two contracts:
//!
//! 1. **Invariant preservation.** For random update streams, a
//!    [`LiveSpanner`] maintains the certified stretch-`t` invariant after
//!    every batch — measured independently with
//!    [`greedy_spanner::analysis::is_t_spanner`] against the live original.
//! 2. **Incremental-vs-rebuild serving equivalence.** A [`SpannerServer`]
//!    interleaving query batches and update batches answers
//!    **bit-identically** to a server rebuilt from scratch (a fresh frozen
//!    handle over the current spanner, empty cache) after each batch — at
//!    thread counts {1, 2, 8} and cache capacities {0, 64}, over ER,
//!    dense-uniform and high-spread weight distributions. Lazy
//!    invalidation of stale shortest-path trees must therefore be airtight.

use greedy_spanner::analysis::is_t_spanner;
use greedy_spanner::serve::{ServeBuilder, SpannerServer};
use greedy_spanner::workload::{LiveWorkload, StreamEvent};
use greedy_spanner::{LiveSpanner, Spanner};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{complete_graph_with_weights, erdos_renyi_connected};
use spanner_graph::WeightedGraph;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CACHE_CAPACITIES: [usize; 2] = [0, 64];

fn live_for(g: &WeightedGraph, t: f64) -> LiveSpanner {
    Spanner::greedy()
        .stretch(t)
        .build(g)
        .expect("valid stretch")
        .live(g)
        .expect("greedy guarantees a stretch")
}

/// The "rebuilt from scratch" oracle: freeze the driven server's current
/// spanner into a fresh handle (cold cache, one thread) and audit against
/// the driven server's live original.
fn rebuilt_reference(server: &SpannerServer) -> SpannerServer {
    let original = server
        .live()
        .expect("equivalence runs on live servers")
        .original()
        .to_weighted_graph();
    ServeBuilder::from_handle(server.freeze_current())
        .threads(1)
        .cache_capacity(0)
        .audit_against(&original)
        .finish()
}

fn assert_stream_equivalence(g: &WeightedGraph, t: f64, workload_seed: u64) {
    let stream = LiveWorkload::new(g.num_vertices())
        .expect("valid universe")
        .update_fraction(0.5)
        .expect("valid fraction")
        .rounds(6)
        .queries_per_batch(40)
        .updates_per_batch(5)
        .weights(0.05, 20.0)
        .expect("valid range")
        .bound(1e6)
        .seed(workload_seed)
        .generate(g);
    for threads in THREAD_COUNTS {
        for cache in CACHE_CAPACITIES {
            let mut server = live_for(g, t)
                .serve()
                .threads(threads)
                .cache_capacity(cache)
                .finish();
            for (round, event) in stream.iter().enumerate() {
                match event {
                    StreamEvent::Updates(batch) => {
                        let outcome = server.apply_updates(batch).expect("valid batch");
                        assert!(
                            outcome.certified_stretch <= t * (1.0 + 1e-9) + 1e-12,
                            "round {round}: certificate {} above t = {t}",
                            outcome.certified_stretch
                        );
                        // The invariant, measured independently.
                        let live = server.live().unwrap();
                        assert!(
                            is_t_spanner(
                                &live.original().to_weighted_graph(),
                                &live.spanner().to_weighted_graph(),
                                t
                            ),
                            "round {round}, threads {threads}, cache {cache}: invariant lost"
                        );
                    }
                    StreamEvent::Queries(queries) => {
                        // The interleaved (possibly stale-cached) server vs.
                        // a from-scratch rebuild at the current epoch.
                        let mut rebuilt = rebuilt_reference(&server);
                        let expected = rebuilt.answer_batch(queries).expect("valid batch");
                        let got = server.answer_batch(queries).expect("valid batch");
                        assert_eq!(
                            got, expected,
                            "round {round}, threads {threads}, cache {cache}: interleaved \
                             server diverged from the from-scratch rebuild"
                        );
                    }
                }
            }
            // The stream exercised the update path.
            let stats = server.update_stats().expect("live server");
            assert!(stats.batches > 0, "stream contained no update batch");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Erdős–Rényi graphs with moderate weight spread.
    #[test]
    fn er_streams_stay_invariant_and_serve_identically(
        seed in 0u64..10_000,
        n in 10usize..24,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.35, 1.0..10.0, &mut rng);
        assert_stream_equivalence(&g, 2.0, seed ^ 0x11FE);
    }

    /// Dense uniform graphs (every pair an edge, tight weight band).
    #[test]
    fn dense_uniform_streams_stay_invariant_and_serve_identically(
        seed in 0u64..10_000,
        n in 8usize..16,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = complete_graph_with_weights(n, 1.0..2.0, &mut rng);
        assert_stream_equivalence(&g, 1.5, seed ^ 0xD3_5E);
    }

    /// High-spread weights (four orders of magnitude) — the regime where a
    /// single deletion can strand many light-edge witnesses.
    #[test]
    fn high_spread_streams_stay_invariant_and_serve_identically(
        seed in 0u64..10_000,
        n in 10usize..20,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.4, 0.01..100.0, &mut rng);
        assert_stream_equivalence(&g, 3.0, seed ^ 0x5B_EAD);
    }
}

/// Deterministic (non-proptest) end-to-end check that the stream actually
/// exercises staleness: a hot cached source must be invalidated by an
/// update and the lazily-refreshed answer must match a rebuild.
#[test]
fn stale_cache_entries_are_lazily_evicted_and_answers_track_the_rebuild() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = erdos_renyi_connected(30, 0.3, 1.0..6.0, &mut rng);
    let mut server = live_for(&g, 2.0)
        .serve()
        .threads(2)
        .cache_capacity(16)
        .finish();
    let stream = LiveWorkload::new(30)
        .expect("valid")
        .update_fraction(0.4)
        .expect("valid")
        .rounds(12)
        .queries_per_batch(64)
        .updates_per_batch(6)
        .seed(17)
        .generate(&g);
    let mut saw_updates = false;
    for event in &stream {
        match event {
            StreamEvent::Updates(batch) => {
                server.apply_updates(batch).expect("valid batch");
                saw_updates = true;
            }
            StreamEvent::Queries(queries) => {
                let mut rebuilt = rebuilt_reference(&server);
                let expected = rebuilt.answer_batch(queries).expect("valid batch");
                assert_eq!(server.answer_batch(queries).expect("valid"), expected);
            }
        }
    }
    assert!(saw_updates);
    let stats = server.stats();
    assert!(
        stats.stale_evictions > 0,
        "the stream never exercised lazy invalidation (hits {}, misses {})",
        stats.cache_hits,
        stats.cache_misses
    );
    assert_eq!(stats.epoch, server.epoch());
    // Consistency of the cumulative counters.
    let updates = server.update_stats().unwrap();
    assert_eq!(
        updates.admitted + updates.rejected,
        updates.insertions,
        "every insertion is either admitted or rejected"
    );
}

/// Answers must stay well-defined when updates disconnect parts of the
/// graph: deletions can legitimately cut off vertices, and both the
/// interleaved and rebuilt servers must agree on the `None`s.
#[test]
fn disconnecting_deletions_keep_equivalence() {
    // A path is maximally fragile: every deletion disconnects it.
    let g = WeightedGraph::from_edges(12, (1..12).map(|v| (v - 1, v, 1.0))).unwrap();
    assert_stream_equivalence(&g, 2.0, 4242);
}
