//! End-to-end integration tests spanning all three member crates:
//! generators → spanner constructions → analysis.

use greedy_spanner::analysis::{evaluate, is_t_spanner, lightness, max_stretch_all_pairs};
use greedy_spanner::approx_greedy::approximate_greedy_spanner;
use greedy_spanner::baselines::{
    baswana_sen_spanner, mst_spanner, star_spanner, theta_graph_spanner, wspd_spanner,
};
use greedy_spanner::greedy::greedy_spanner;
use greedy_spanner::greedy_metric::greedy_spanner_of_metric;
use greedy_spanner::optimality::contains_mst;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{erdos_renyi_connected, grid_graph, random_geometric_connected};
use spanner_graph::mst::mst_weight;
use spanner_metric::generators::{clustered_points, uniform_points};
use spanner_metric::{GraphMetric, MetricSpace};

#[test]
fn graph_pipeline_generate_spanner_analyze() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = erdos_renyi_connected(120, 0.15, 1.0..10.0, &mut rng);
    for t in [1.5, 2.0, 4.0] {
        let result = greedy_spanner(&g, t).expect("valid stretch");
        let report = evaluate(&g, result.spanner(), t);
        assert!(report.meets_stretch_target(), "t = {t}");
        assert!(contains_mst(&g, result.spanner()));
        assert!(report.summary.num_edges <= g.num_edges());
        assert!(report.summary.lightness >= 1.0 - 1e-9);
    }
}

#[test]
fn geometric_graph_pipeline() {
    let mut rng = SmallRng::seed_from_u64(2);
    let (g, _) = random_geometric_connected(150, 0.15, &mut rng);
    let spanner = greedy_spanner(&g, 2.0).expect("valid stretch");
    assert!(is_t_spanner(&g, spanner.spanner(), 2.0));
    // The spanner of a geometric graph is itself a plausible communication
    // backbone: light and low degree.
    assert!(lightness(&g, spanner.spanner()) < lightness(&g, &g) + 1e-9);
}

#[test]
fn grid_pipeline_with_all_baselines_on_induced_metric() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = grid_graph(6, 7, 0.2, &mut rng);
    let metric = GraphMetric::new(&g).expect("grid is connected");
    let complete = metric.to_complete_graph();

    let greedy = greedy_spanner_of_metric(&metric, 1.5).expect("non-empty");
    assert!(is_t_spanner(&complete, &greedy.spanner, 1.5));

    let bs = baswana_sen_spanner(&complete, 2, &mut rng).expect("valid k");
    assert!(is_t_spanner(&complete, &bs, 3.0));

    let star = star_spanner(&metric, 0).expect("non-empty");
    assert_eq!(star.num_edges(), metric.len() - 1);

    let mst = mst_spanner(&complete);
    assert!((mst.total_weight() - mst_weight(&complete)).abs() < 1e-9);
}

#[test]
fn euclidean_pipeline_greedy_vs_baselines_shape() {
    // The qualitative shape of the paper's Section 1.2 claim: the greedy
    // spanner is sparser and lighter than Θ-graph and WSPD baselines built
    // for a comparable stretch.
    let mut rng = SmallRng::seed_from_u64(4);
    let points = uniform_points::<2, _>(150, &mut rng);
    let complete = points.to_complete_graph();

    let greedy = greedy_spanner_of_metric(&points, 1.5).expect("non-empty").spanner;
    let theta = theta_graph_spanner(&points, 12).expect("valid cones");
    let wspd = wspd_spanner(&points, 0.5).expect("valid epsilon");

    assert!(greedy.num_edges() <= theta.num_edges());
    assert!(greedy.num_edges() <= wspd.num_edges());
    assert!(lightness(&complete, &greedy) <= lightness(&complete, &wspd) + 1e-9);
    // All of them satisfy their stretch targets.
    assert!(max_stretch_all_pairs(&complete, &greedy) <= 1.5 + 1e-9);
    assert!(max_stretch_all_pairs(&complete, &wspd) <= 1.5 + 1e-9);
}

#[test]
fn approximate_greedy_pipeline_on_clustered_points() {
    let mut rng = SmallRng::seed_from_u64(5);
    let points = clustered_points::<2, _>(140, 6, 0.03, &mut rng);
    let complete = points.to_complete_graph();
    let approx = approximate_greedy_spanner(&points, 0.5).expect("non-empty");
    assert!(max_stretch_all_pairs(&complete, &approx.spanner) <= 1.5 + 1e-9);
    assert!(approx.spanner.num_edges() <= approx.base.num_edges());
    // Lightness is finite and not absurd relative to the exact greedy.
    let exact = greedy_spanner_of_metric(&points, 1.5).expect("non-empty");
    let ratio = lightness(&complete, &approx.spanner) / lightness(&complete, &exact.spanner);
    assert!(ratio < 10.0, "approximate-greedy lightness ratio {ratio} too large");
}

#[test]
fn facade_prelude_is_usable() {
    use greedy_spanner_suite::prelude::*;
    let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)]).unwrap();
    let spanner = greedy_spanner(&g, 2.0).unwrap();
    let report = evaluate(&g, spanner.spanner(), 2.0);
    assert!(report.meets_stretch_target());
    assert_eq!(spanner.spanner().num_edges(), 2);
}
