//! End-to-end integration tests spanning all three member crates:
//! generators → unified spanner pipeline → analysis.

use greedy_spanner::algorithms::registry;
use greedy_spanner::analysis::{evaluate, is_t_spanner, lightness, max_stretch_all_pairs};
use greedy_spanner::optimality::contains_mst;
use greedy_spanner::{Spanner, SpannerConfig, SpannerInput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{erdos_renyi_connected, grid_graph, random_geometric_connected};
use spanner_graph::mst::mst_weight;
use spanner_metric::generators::{clustered_points, uniform_points};
use spanner_metric::{GraphMetric, MetricSpace};

#[test]
fn graph_pipeline_generate_spanner_analyze() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = erdos_renyi_connected(120, 0.15, 1.0..10.0, &mut rng);
    for t in [1.5, 2.0, 4.0] {
        // threads pinned to 1: the one-query-per-candidate assertion below
        // is specific to the sequential path (the parallel loop adds
        // commit re-checks), and the suite runs under any SPANNER_THREADS.
        let result = Spanner::greedy()
            .stretch(t)
            .threads(1)
            .build(&g)
            .expect("valid stretch");
        let report = evaluate(&g, &result.spanner, t);
        assert!(report.meets_stretch_target(), "t = {t}");
        assert!(contains_mst(&g, &result.spanner));
        assert!(report.summary.num_edges <= g.num_edges());
        assert!(report.summary.lightness >= 1.0 - 1e-9);
        // The pipeline's uniform stats agree with the graph.
        assert_eq!(result.stats.edges_examined, g.num_edges());
        assert_eq!(result.stats.edges_added, result.spanner.num_edges());
        assert!(result.stats.peak_frontier > 0);
        // The CSR substrate contract: one bounded query per candidate edge,
        // and every one of them answered from the pre-sized engine workspace
        // with zero per-query heap allocation.
        assert_eq!(result.stats.distance_queries, g.num_edges());
        assert_eq!(
            result.stats.workspace_reuse_hits, result.stats.distance_queries,
            "t = {t}: a greedy query allocated mid-construction"
        );
    }
}

#[test]
fn geometric_graph_pipeline() {
    let mut rng = SmallRng::seed_from_u64(2);
    let (g, _) = random_geometric_connected(150, 0.15, &mut rng);
    let spanner = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    assert!(is_t_spanner(&g, &spanner.spanner, 2.0));
    // The spanner of a geometric graph is itself a plausible communication
    // backbone: light and low degree.
    assert!(lightness(&g, &spanner.spanner) < lightness(&g, &g) + 1e-9);
}

#[test]
fn grid_pipeline_with_all_baselines_on_induced_metric() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = grid_graph(6, 7, 0.2, &mut rng);
    let metric = GraphMetric::new(&g).expect("grid is connected");
    let complete = metric.to_complete_graph();

    let greedy = Spanner::greedy()
        .stretch(1.5)
        .build(&metric)
        .expect("non-empty");
    assert!(is_t_spanner(&complete, &greedy.spanner, 1.5));

    let bs = Spanner::baswana_sen()
        .k(2)
        .seed(3)
        .build(&complete)
        .expect("valid k");
    assert!(is_t_spanner(&complete, &bs.spanner, 3.0));
    assert_eq!(bs.provenance.guaranteed_stretch, Some(3.0));

    let star = Spanner::star().build(&metric).expect("non-empty");
    assert_eq!(star.spanner.num_edges(), metric.len() - 1);

    let mst = Spanner::mst().build(&complete).expect("non-empty");
    assert!((mst.spanner.total_weight() - mst_weight(&complete)).abs() < 1e-9);
}

#[test]
fn euclidean_pipeline_greedy_vs_baselines_shape() {
    // The qualitative shape of the paper's Section 1.2 claim: the greedy
    // spanner is sparser and lighter than Θ-graph and WSPD baselines built
    // for a comparable stretch.
    let mut rng = SmallRng::seed_from_u64(4);
    let points = uniform_points::<2, _>(150, &mut rng);
    let complete = points.to_complete_graph();

    let greedy = Spanner::greedy()
        .stretch(1.5)
        .build(&points)
        .expect("non-empty")
        .into_spanner();
    let theta = Spanner::theta_graph()
        .cones(12)
        .build(&points)
        .expect("valid cones")
        .into_spanner();
    let wspd = Spanner::wspd()
        .epsilon(0.5)
        .build(&points)
        .expect("valid epsilon")
        .into_spanner();

    assert!(greedy.num_edges() <= theta.num_edges());
    assert!(greedy.num_edges() <= wspd.num_edges());
    assert!(lightness(&complete, &greedy) <= lightness(&complete, &wspd) + 1e-9);
    // All of them satisfy their stretch targets.
    assert!(max_stretch_all_pairs(&complete, &greedy) <= 1.5 + 1e-9);
    assert!(max_stretch_all_pairs(&complete, &wspd) <= 1.5 + 1e-9);
}

#[test]
fn approximate_greedy_pipeline_on_clustered_points() {
    let mut rng = SmallRng::seed_from_u64(5);
    let points = clustered_points::<2, _>(140, 6, 0.03, &mut rng);
    let complete = points.to_complete_graph();
    let approx = Spanner::approx_greedy()
        .epsilon(0.5)
        .build(&points)
        .expect("non-empty");
    assert!(max_stretch_all_pairs(&complete, &approx.spanner) <= 1.5 + 1e-9);
    // Lightness is finite and not absurd relative to the exact greedy.
    let exact = Spanner::greedy()
        .stretch(1.5)
        .build(&points)
        .expect("non-empty");
    let ratio = lightness(&complete, &approx.spanner) / lightness(&complete, &exact.spanner);
    assert!(
        ratio < 10.0,
        "approximate-greedy lightness ratio {ratio} too large"
    );
}

#[test]
fn whole_registry_runs_on_one_workload() {
    // The point of the unified pipeline: one loop, every construction.
    let mut rng = SmallRng::seed_from_u64(6);
    let points = uniform_points::<2, _>(60, &mut rng);
    let input = SpannerInput::from(&points);
    let reference = input.reference_graph();
    let config = SpannerConfig {
        stretch: 2.0,
        seed: 7,
        ..SpannerConfig::default()
    };
    let mut ran = 0;
    for algorithm in registry() {
        assert!(algorithm.supports(&input), "{}", algorithm.name());
        let out = algorithm
            .build(&input, &config)
            .unwrap_or_else(|_| panic!("{}", algorithm.name()));
        assert_eq!(out.spanner.num_vertices(), 60, "{}", algorithm.name());
        assert!(
            spanner_graph::connectivity::is_connected(&out.spanner),
            "{}",
            algorithm.name()
        );
        if let Some(bound) = out.provenance.guaranteed_stretch {
            assert!(
                max_stretch_all_pairs(&reference, &out.spanner) <= bound * (1.0 + 1e-9) + 1e-12,
                "{}",
                algorithm.name()
            );
        }
        ran += 1;
    }
    assert!(ran >= 7, "expected the full registry to run, got {ran}");
}

#[test]
fn facade_prelude_is_usable() {
    use greedy_spanner_suite::prelude::*;
    let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)]).unwrap();
    let spanner = Spanner::greedy().stretch(2.0).build(&g).unwrap();
    let report = evaluate(&g, &spanner.spanner, 2.0);
    assert!(report.meets_stretch_target());
    assert_eq!(spanner.spanner.num_edges(), 2);
}

#[test]
fn parallel_pipeline_is_thread_count_invariant_end_to_end() {
    // The determinism guarantee of the filter-then-commit loop, exercised
    // across all three crates: graph and metric inputs, every thread count,
    // bit-identical spanners — and the reference loop agrees too.
    let mut rng = SmallRng::seed_from_u64(8);
    let g = erdos_renyi_connected(60, 0.2, 1.0..10.0, &mut rng);
    let reference = greedy_spanner::greedy::greedy_spanner_reference(&g, 2.0).unwrap();
    for threads in [1, 2, 4, 8] {
        let out = Spanner::greedy()
            .stretch(2.0)
            .threads(threads)
            .build(&g)
            .unwrap();
        assert_eq!(
            out.spanner,
            *reference.spanner(),
            "threads = {threads}: graph greedy must match the reference"
        );
        assert_eq!(out.stats.threads_used, threads);
        assert_eq!(
            out.stats.workspace_reuse_hits, out.stats.distance_queries,
            "threads = {threads}: every query must be allocation-free"
        );
    }

    let points = uniform_points::<2, _>(40, &mut rng);
    let sequential = Spanner::greedy().stretch(1.5).build(&points).unwrap();
    let parallel = Spanner::greedy()
        .stretch(1.5)
        .threads(8)
        .build(&points)
        .unwrap();
    assert_eq!(sequential.spanner, parallel.spanner);
    assert_eq!(
        sequential.stats.edges_examined,
        parallel.stats.edges_examined
    );
    assert!(parallel.stats.batches >= 1);
}

#[test]
fn matrix_cells_parallelize_with_identical_results() {
    let mut rng = SmallRng::seed_from_u64(9);
    let g = erdos_renyi_connected(30, 0.3, 1.0..5.0, &mut rng);
    let points = uniform_points::<2, _>(30, &mut rng);
    let inputs = [
        ("er", SpannerInput::from(&g)),
        ("pts", SpannerInput::from(&points)),
    ];
    let algorithms = registry();
    let stretches = [1.5, 3.0];
    let sequential =
        greedy_spanner::run_matrix(&inputs, &algorithms, &stretches, &SpannerConfig::default());
    let parallel = greedy_spanner::run_matrix(
        &inputs,
        &algorithms,
        &stretches,
        &SpannerConfig {
            threads: 4,
            ..SpannerConfig::default()
        },
    );
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            (s.input.as_str(), s.algorithm.as_str()),
            (p.input.as_str(), p.algorithm.as_str())
        );
        assert_eq!(
            s.output.as_ref().unwrap().spanner,
            p.output.as_ref().unwrap().spanner
        );
    }
    let agg = greedy_spanner::aggregate_stats(&parallel);
    assert_eq!(agg.cells, parallel.len());
    assert_eq!(agg.failures, 0);
}
