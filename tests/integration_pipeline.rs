//! End-to-end integration tests spanning all three member crates:
//! generators → unified spanner pipeline → analysis.

use greedy_spanner::algorithms::registry;
use greedy_spanner::analysis::{evaluate, is_t_spanner, lightness, max_stretch_all_pairs};
use greedy_spanner::optimality::contains_mst;
use greedy_spanner::{Spanner, SpannerConfig, SpannerInput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{erdos_renyi_connected, grid_graph, random_geometric_connected};
use spanner_graph::mst::mst_weight;
use spanner_metric::generators::{clustered_points, uniform_points};
use spanner_metric::{GraphMetric, MetricSpace};

#[test]
fn graph_pipeline_generate_spanner_analyze() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = erdos_renyi_connected(120, 0.15, 1.0..10.0, &mut rng);
    for t in [1.5, 2.0, 4.0] {
        let result = Spanner::greedy()
            .stretch(t)
            .build(&g)
            .expect("valid stretch");
        let report = evaluate(&g, &result.spanner, t);
        assert!(report.meets_stretch_target(), "t = {t}");
        assert!(contains_mst(&g, &result.spanner));
        assert!(report.summary.num_edges <= g.num_edges());
        assert!(report.summary.lightness >= 1.0 - 1e-9);
        // The pipeline's uniform stats agree with the graph.
        assert_eq!(result.stats.edges_examined, g.num_edges());
        assert_eq!(result.stats.edges_added, result.spanner.num_edges());
        assert!(result.stats.peak_frontier > 0);
        // The CSR substrate contract: one bounded query per candidate edge,
        // and every one of them answered from the pre-sized engine workspace
        // with zero per-query heap allocation.
        assert_eq!(result.stats.distance_queries, g.num_edges());
        assert_eq!(
            result.stats.workspace_reuse_hits, result.stats.distance_queries,
            "t = {t}: a greedy query allocated mid-construction"
        );
    }
}

#[test]
fn geometric_graph_pipeline() {
    let mut rng = SmallRng::seed_from_u64(2);
    let (g, _) = random_geometric_connected(150, 0.15, &mut rng);
    let spanner = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    assert!(is_t_spanner(&g, &spanner.spanner, 2.0));
    // The spanner of a geometric graph is itself a plausible communication
    // backbone: light and low degree.
    assert!(lightness(&g, &spanner.spanner) < lightness(&g, &g) + 1e-9);
}

#[test]
fn grid_pipeline_with_all_baselines_on_induced_metric() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = grid_graph(6, 7, 0.2, &mut rng);
    let metric = GraphMetric::new(&g).expect("grid is connected");
    let complete = metric.to_complete_graph();

    let greedy = Spanner::greedy()
        .stretch(1.5)
        .build(&metric)
        .expect("non-empty");
    assert!(is_t_spanner(&complete, &greedy.spanner, 1.5));

    let bs = Spanner::baswana_sen()
        .k(2)
        .seed(3)
        .build(&complete)
        .expect("valid k");
    assert!(is_t_spanner(&complete, &bs.spanner, 3.0));
    assert_eq!(bs.provenance.guaranteed_stretch, Some(3.0));

    let star = Spanner::star().build(&metric).expect("non-empty");
    assert_eq!(star.spanner.num_edges(), metric.len() - 1);

    let mst = Spanner::mst().build(&complete).expect("non-empty");
    assert!((mst.spanner.total_weight() - mst_weight(&complete)).abs() < 1e-9);
}

#[test]
fn euclidean_pipeline_greedy_vs_baselines_shape() {
    // The qualitative shape of the paper's Section 1.2 claim: the greedy
    // spanner is sparser and lighter than Θ-graph and WSPD baselines built
    // for a comparable stretch.
    let mut rng = SmallRng::seed_from_u64(4);
    let points = uniform_points::<2, _>(150, &mut rng);
    let complete = points.to_complete_graph();

    let greedy = Spanner::greedy()
        .stretch(1.5)
        .build(&points)
        .expect("non-empty")
        .into_spanner();
    let theta = Spanner::theta_graph()
        .cones(12)
        .build(&points)
        .expect("valid cones")
        .into_spanner();
    let wspd = Spanner::wspd()
        .epsilon(0.5)
        .build(&points)
        .expect("valid epsilon")
        .into_spanner();

    assert!(greedy.num_edges() <= theta.num_edges());
    assert!(greedy.num_edges() <= wspd.num_edges());
    assert!(lightness(&complete, &greedy) <= lightness(&complete, &wspd) + 1e-9);
    // All of them satisfy their stretch targets.
    assert!(max_stretch_all_pairs(&complete, &greedy) <= 1.5 + 1e-9);
    assert!(max_stretch_all_pairs(&complete, &wspd) <= 1.5 + 1e-9);
}

#[test]
fn approximate_greedy_pipeline_on_clustered_points() {
    let mut rng = SmallRng::seed_from_u64(5);
    let points = clustered_points::<2, _>(140, 6, 0.03, &mut rng);
    let complete = points.to_complete_graph();
    let approx = Spanner::approx_greedy()
        .epsilon(0.5)
        .build(&points)
        .expect("non-empty");
    assert!(max_stretch_all_pairs(&complete, &approx.spanner) <= 1.5 + 1e-9);
    // Lightness is finite and not absurd relative to the exact greedy.
    let exact = Spanner::greedy()
        .stretch(1.5)
        .build(&points)
        .expect("non-empty");
    let ratio = lightness(&complete, &approx.spanner) / lightness(&complete, &exact.spanner);
    assert!(
        ratio < 10.0,
        "approximate-greedy lightness ratio {ratio} too large"
    );
}

#[test]
fn whole_registry_runs_on_one_workload() {
    // The point of the unified pipeline: one loop, every construction.
    let mut rng = SmallRng::seed_from_u64(6);
    let points = uniform_points::<2, _>(60, &mut rng);
    let input = SpannerInput::from(&points);
    let reference = input.reference_graph();
    let config = SpannerConfig {
        stretch: 2.0,
        seed: 7,
        ..SpannerConfig::default()
    };
    let mut ran = 0;
    for algorithm in registry() {
        assert!(algorithm.supports(&input), "{}", algorithm.name());
        let out = algorithm
            .build(&input, &config)
            .unwrap_or_else(|_| panic!("{}", algorithm.name()));
        assert_eq!(out.spanner.num_vertices(), 60, "{}", algorithm.name());
        assert!(
            spanner_graph::connectivity::is_connected(&out.spanner),
            "{}",
            algorithm.name()
        );
        if let Some(bound) = out.provenance.guaranteed_stretch {
            assert!(
                max_stretch_all_pairs(&reference, &out.spanner) <= bound * (1.0 + 1e-9) + 1e-12,
                "{}",
                algorithm.name()
            );
        }
        ran += 1;
    }
    assert!(ran >= 7, "expected the full registry to run, got {ran}");
}

#[test]
fn facade_prelude_is_usable() {
    use greedy_spanner_suite::prelude::*;
    let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)]).unwrap();
    let spanner = Spanner::greedy().stretch(2.0).build(&g).unwrap();
    let report = evaluate(&g, &spanner.spanner, 2.0);
    assert!(report.meets_stretch_target());
    assert_eq!(spanner.spanner.num_edges(), 2);
}

#[test]
#[allow(deprecated)]
fn legacy_shims_still_match_the_pipeline() {
    // The deprecated free functions remain for one release; they must agree
    // exactly with the unified pipeline they forward to.
    let mut rng = SmallRng::seed_from_u64(8);
    let g = erdos_renyi_connected(60, 0.2, 1.0..10.0, &mut rng);
    let legacy = greedy_spanner::greedy::greedy_spanner(&g, 2.0).unwrap();
    let unified = Spanner::greedy().stretch(2.0).build(&g).unwrap();
    assert_eq!(legacy.spanner().num_edges(), unified.spanner.num_edges());
    assert!((legacy.spanner().total_weight() - unified.spanner.total_weight()).abs() < 1e-12);

    let points = uniform_points::<2, _>(40, &mut rng);
    let legacy = greedy_spanner::greedy_metric::greedy_spanner_of_metric(&points, 1.5).unwrap();
    let unified = Spanner::greedy().stretch(1.5).build(&points).unwrap();
    assert_eq!(legacy.spanner.num_edges(), unified.spanner.num_edges());
    assert_eq!(legacy.stats.edges_examined, unified.stats.edges_examined);
}
