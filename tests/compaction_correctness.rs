//! Generation compaction must be **behaviourally invisible**: a live
//! server whose graphs get compacted under churn answers bit-identically
//! to a twin that never compacts, while actually re-packing its edge
//! arrays.
//!
//! Two servers are driven through the same forced append/delete/compact
//! cycles at every thread count {1, 2, 8} × cache capacity {0, 64}. After
//! every batch the suite asserts the live edge content (endpoints and
//! exact `f64` weight bits), the served answers to a fixed query batch,
//! and the certified stretch are bit-identical across the generation swap
//! — and at the end, that compaction really fired and really shrank the
//! ground-truth arrays.

use greedy_spanner::serve::SpannerServer;
use greedy_spanner::update::COMPACTION_MIN_DEAD;
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{Query, Spanner, UpdateBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::{CsrGraph, VertexId, WeightedGraph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CACHE_CAPACITIES: [usize; 2] = [0, 64];

/// Live edge *content* — ids are allowed to change across a compaction
/// swap, endpoints and exact weight bits are not.
fn live_content(graph: &CsrGraph) -> Vec<(usize, usize, u64)> {
    let mut edges: Vec<(usize, usize, u64)> = graph
        .live_edges()
        .map(|(_, u, v, w)| (u.index(), v.index(), w.to_bits()))
        .collect();
    edges.sort_unstable();
    edges
}

fn server_for(g: &WeightedGraph, threshold: f64, threads: usize, cache: usize) -> SpannerServer {
    Spanner::greedy()
        .stretch(2.0)
        .build(g)
        .expect("valid stretch")
        .live(g)
        .expect("greedy guarantees a stretch")
        .with_threads(threads)
        .with_compaction_threshold(threshold)
        .serve()
        .threads(threads)
        .cache_capacity(cache)
        .finish()
}

/// Forced append/delete cycles: every round inserts a block of edges and
/// deletes the previous round's block, marching the dead-slot fraction
/// over the compaction threshold again and again.
fn churn_rounds(n: usize, rounds: usize, block: usize, seed: u64) -> Vec<UpdateBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut previous: Vec<(usize, usize)> = Vec::new();
    let mut batches = Vec::new();
    for _ in 0..rounds {
        let mut batch = UpdateBatch::new();
        for (u, v) in previous.drain(..) {
            batch = batch.delete(VertexId(u), VertexId(v));
        }
        for _ in 0..block {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            let w = rng.gen_range(0.2..3.0);
            batch = batch.insert(VertexId(u), VertexId(v), w);
            previous.push((u, v));
        }
        batches.push(batch);
    }
    batches
}

fn queries(n: usize) -> Vec<Query> {
    QueryWorkload::zipf(n, 1.1)
        .expect("valid skew")
        .queries(48)
        .seed(4242)
        .generate()
}

#[test]
fn compaction_swap_is_invisible_to_serving_at_every_thread_and_cache_config() {
    let n = 14;
    let g = WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap();
    let batches = churn_rounds(n, 12, 10, 99);
    let held_out = queries(n);

    for threads in THREAD_COUNTS {
        for cache in CACHE_CAPACITIES {
            // Threshold 1.0 can never be reached while live edges remain,
            // so the twin keeps every tombstone forever.
            let mut compacting = server_for(&g, 0.5, threads, cache);
            let mut hoarding = server_for(&g, 1.0, threads, cache);

            for (round, batch) in batches.iter().enumerate() {
                let a = compacting.apply_updates(batch).expect("valid batch");
                let b = hoarding.apply_updates(batch).expect("valid batch");
                assert_eq!(
                    (a.admitted, a.rejected, a.repaired),
                    (b.admitted, b.rejected, b.repaired),
                    "t{threads} c{cache} round {round}: admission diverged"
                );

                let (cl, hl) = (
                    compacting.live().expect("live server"),
                    hoarding.live().expect("live server"),
                );
                assert_eq!(
                    live_content(cl.spanner()),
                    live_content(hl.spanner()),
                    "t{threads} c{cache} round {round}: spanner content diverged"
                );
                assert_eq!(
                    live_content(cl.original()),
                    live_content(hl.original()),
                    "t{threads} c{cache} round {round}: original content diverged"
                );
                assert_eq!(
                    cl.stats().certified_stretch.to_bits(),
                    hl.stats().certified_stretch.to_bits(),
                    "t{threads} c{cache} round {round}: certificate diverged"
                );

                let got = compacting.answer_batch(&held_out).expect("valid batch");
                let expected = hoarding.answer_batch(&held_out).expect("valid batch");
                assert_eq!(
                    got, expected,
                    "t{threads} c{cache} round {round}: answers diverged across the swap"
                );
            }

            let (cl, hl) = (
                compacting.live().expect("live server"),
                hoarding.live().expect("live server"),
            );
            assert!(
                cl.stats().compactions > 0,
                "t{threads} c{cache}: the churn never forced a compaction"
            );
            assert_eq!(
                hl.stats().compactions,
                0,
                "t{threads} c{cache}: the hoarding twin must never compact"
            );
            assert!(
                cl.original().edge_id_bound() < hl.original().edge_id_bound(),
                "t{threads} c{cache}: compaction failed to shrink the edge array \
                 ({} vs {})",
                cl.original().edge_id_bound(),
                hl.original().edge_id_bound()
            );
            // Compaction bumps epochs; the swap must have been surfaced to
            // the serving layer rather than smuggled in silently.
            assert!(cl.epoch() > hl.epoch());
        }
    }
}

/// The threshold knob itself: out-of-range and non-finite inputs are
/// clamped or ignored, and the trigger respects `COMPACTION_MIN_DEAD`.
#[test]
fn compaction_threshold_knob_is_clamped_and_min_dead_is_respected() {
    let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
    let live = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch")
        .live(&g)
        .expect("greedy guarantees a stretch");
    assert!((live.compaction_threshold() - 0.5).abs() < 1e-12);
    let live = live.with_compaction_threshold(f64::NAN);
    assert!(
        (live.compaction_threshold() - 0.5).abs() < 1e-12,
        "NaN ignored"
    );
    let live = live.with_compaction_threshold(40.0);
    assert!(
        (live.compaction_threshold() - 1.0).abs() < 1e-12,
        "clamped high"
    );
    let mut live = live.with_compaction_threshold(-3.0);
    assert!(live.compaction_threshold() <= 1e-6, "clamped low");

    // Even at the lowest possible threshold, fewer than
    // `COMPACTION_MIN_DEAD` tombstones never trigger a rebuild.
    for i in 0..COMPACTION_MIN_DEAD / 2 {
        let u = i % 4;
        let v = (i + 1) % 4;
        let batch = UpdateBatch::new().insert(VertexId(u), VertexId(v), 1.0);
        live.apply(&batch).expect("valid insert");
        let batch = UpdateBatch::new().delete(VertexId(u), VertexId(v));
        live.apply(&batch).expect("valid delete");
    }
    assert_eq!(
        live.stats().compactions,
        0,
        "below COMPACTION_MIN_DEAD nothing may compact"
    );
    assert!(live.original().dead_edges() > 0);
}
