//! Property suite for the serving layer's determinism guarantee: batched
//! [`SpannerServer`] answers must be **bit-identical** to the one-shot
//! `dijkstra` free functions on the same spanner, across thread counts
//! {1, 2, 8} and across cache states (disabled / small / large, cold and
//! warm) — a cache hit may never change a result.

use greedy_spanner::serve::{Answer, PathAnswer, Query, StretchSample};
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::Spanner;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::dijkstra;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::{VertexId, WeightedGraph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CACHE_CAPACITIES: [usize; 3] = [0, 2, 64];

/// Answers one query with the allocation-per-call `dijkstra` free functions
/// — the reference implementation the engine substrate is property-tested
/// against, and therefore the ground truth for the server.
fn free_function_answer(
    spanner: &WeightedGraph,
    original: &WeightedGraph,
    query: &Query,
) -> Answer {
    match *query {
        Query::Distance {
            source,
            target,
            bound,
        } => Answer::Distance(dijkstra::bounded_distance(spanner, source, target, bound)),
        Query::Path { source, target } => {
            let tree = dijkstra::shortest_path_tree(spanner, source);
            Answer::Path(tree.distance(target).map(|distance| PathAnswer {
                distance,
                vertices: tree.path_to(target).expect("reachable"),
            }))
        }
        Query::KNearest { source, k } => {
            let tree = dijkstra::shortest_path_tree(spanner, source);
            let mut members: Vec<(VertexId, f64)> = (0..spanner.num_vertices())
                .filter_map(|v| tree.distance(VertexId(v)).map(|d| (VertexId(v), d)))
                .collect();
            members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            members.truncate(k);
            Answer::KNearest(members)
        }
        Query::Ball { source, radius } => Answer::Ball(dijkstra::ball(spanner, source, radius)),
        Query::StretchAudit { source, target } => {
            let sample = dijkstra::bounded_distance(spanner, source, target, f64::INFINITY)
                .and_then(|spanner_distance| {
                    let graph_distance =
                        dijkstra::bounded_distance(original, source, target, f64::INFINITY)?;
                    Some(StretchSample {
                        spanner_distance,
                        graph_distance,
                        stretch: if graph_distance > 0.0 {
                            spanner_distance / graph_distance
                        } else {
                            1.0
                        },
                    })
                });
            Answer::StretchAudit(sample)
        }
    }
}

fn assert_server_matches_reference(g: &WeightedGraph, stretch: f64, workload_seed: u64) {
    let n = g.num_vertices();
    let output = Spanner::greedy().stretch(stretch).build(g).expect("valid");
    let spanner = output.spanner.clone();
    let queries = QueryWorkload::mixed(n, true)
        .expect("valid workload")
        .queries(120)
        .seed(workload_seed)
        .bound(3.0 * stretch)
        .generate();
    let reference: Vec<Answer> = queries
        .iter()
        .map(|q| free_function_answer(&spanner, g, q))
        .collect();
    for threads in THREAD_COUNTS {
        for cache in CACHE_CAPACITIES {
            let mut server = output
                .clone()
                .serve()
                .threads(threads)
                .cache_capacity(cache)
                .audit_against(g)
                .finish();
            // Cold batch, then a warm repeat: the second round answers the
            // hot sources from cached trees and must change nothing.
            let cold = server.answer_batch(&queries).expect("valid batch");
            let warm = server.answer_batch(&queries).expect("valid batch");
            assert_eq!(
                cold, reference,
                "cold, threads={threads} cache={cache} n={n} t={stretch}"
            );
            assert_eq!(
                warm, reference,
                "warm, threads={threads} cache={cache} n={n} t={stretch}"
            );
            if cache > 0 {
                assert!(
                    server.stats().cache_hits > 0,
                    "threads={threads} cache={cache}: the warm round must hit"
                );
            } else {
                assert_eq!(server.stats().cache_hits, 0);
            }
            let engine = server.engine_stats();
            assert_eq!(
                engine.reuse_hits, engine.queries,
                "threads={threads} cache={cache}: a serving engine allocated"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random ER graphs, random stretch, mixed workloads: the server is a
    /// bit-exact distance oracle at every thread count and cache state.
    #[test]
    fn server_answers_match_free_functions(
        seed in 0u64..10_000,
        n in 8usize..45,
        stretch in 1.0f64..5.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.35, 1.0..10.0, &mut rng);
        assert_server_matches_reference(&g, stretch, seed ^ 0xD15C0);
    }

    /// Uniform and Zipf point-to-point workloads (the bench shapes) under
    /// the same contract.
    #[test]
    fn point_to_point_workloads_match_across_cache_states(
        seed in 0u64..10_000,
        n in 10usize..40,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, 1.0..6.0, &mut rng);
        let output = Spanner::greedy().stretch(2.0).build(&g).expect("valid");
        let spanner = output.spanner.clone();
        for workload in [
            QueryWorkload::uniform(n).expect("valid").queries(80).seed(seed).bound(12.0),
            QueryWorkload::zipf(n, 1.2).expect("valid").queries(80).seed(seed).bound(12.0),
        ] {
            let queries = workload.generate();
            let reference: Vec<Answer> = queries
                .iter()
                .map(|q| free_function_answer(&spanner, &g, q))
                .collect();
            for cache in CACHE_CAPACITIES {
                let mut server = output
                    .clone()
                    .serve()
                    .threads(2)
                    .cache_capacity(cache)
                    .finish();
                prop_assert_eq!(&server.answer_batch(&queries).expect("valid"), &reference);
                prop_assert_eq!(&server.answer_batch(&queries).expect("valid"), &reference);
            }
        }
    }

    /// Tie-breaking determinism of `k_nearest`: on unit-weight graphs many
    /// vertices share a distance, and the contract is that equal distances
    /// order by vertex id — identically on the engine path (cold, a ball
    /// settle order) and the cached-tree path (warm, a sorted prefix), at
    /// every thread count.
    #[test]
    fn k_nearest_breaks_distance_ties_by_vertex_id_everywhere(
        seed in 0u64..10_000,
        n in 8usize..30,
        k in 1usize..12,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Unit weights force distance ties at every hop count.
        let g = erdos_renyi_connected(n, 0.35, 1.0..1.0000001, &mut rng);
        let output = Spanner::greedy().stretch(2.0).build(&g).expect("valid");
        // Two k-nearest queries per source so the cache admits the tree:
        // the warm round answers from the sorted prefix, the cold round
        // from the engine's settle order. Both must produce the same
        // (distance, vertex)-ordered list.
        let queries: Vec<Query> = (0..n)
            .flat_map(|s| [Query::k_nearest(VertexId(s), k); 2])
            .collect();
        let mut reference: Option<Vec<Answer>> = None;
        for threads in THREAD_COUNTS {
            for cache in CACHE_CAPACITIES {
                let mut server = output
                    .clone()
                    .serve()
                    .threads(threads)
                    .cache_capacity(cache)
                    .finish();
                let cold = server.answer_batch(&queries).expect("valid");
                let warm = server.answer_batch(&queries).expect("valid");
                prop_assert_eq!(&cold, &warm, "threads {} cache {}", threads, cache);
                for answer in &cold {
                    let Answer::KNearest(members) = answer else {
                        panic!("k-nearest batch");
                    };
                    // Sorted by (distance, vertex): ties strictly increase
                    // by vertex id.
                    for w in members.windows(2) {
                        let ((v0, d0), (v1, d1)) = (w[0], w[1]);
                        prop_assert!(
                            d0 < d1 || (d0 == d1 && v0 < v1),
                            "tie broken wrong: ({v0:?}, {d0}) before ({v1:?}, {d1}) \
                             [threads {}, cache {}]",
                            threads,
                            cache
                        );
                    }
                }
                match &reference {
                    None => reference = Some(cold),
                    Some(r) => prop_assert_eq!(&cold, r, "threads {} cache {}", threads, cache),
                }
            }
        }
    }
}
