//! Property suite for the serving runtime's admission contract:
//!
//! * Under a fixed open-loop schedule, a seeded virtual clock and a fixed
//!   limiter configuration, the **admitted/shed partition is identical** at
//!   every thread count {1, 2, 8} and across every backend kind (frozen
//!   [`SpannerServer`], live server, [`ShardedServer`]) — shed decisions
//!   are a pure function of the schedule and the seed, never of backend
//!   answers, machine load or thread scheduling.
//! * **Admitted answers are bit-identical** to the pre-runtime unlimited
//!   path (`answer_batch_unlimited` on an identically built twin), even
//!   though the router dispatches them in limit-sized chunks — chunked
//!   dispatch rides the standing batch-boundary-invariance guarantee.
//! * The compatibility shim (`answer_batch`, now routed through an
//!   unlimited core) answers bit-identically to the unlimited path and
//!   never sheds.

use std::time::Duration;

use greedy_spanner::runtime::{AimdLimit, Limiter, QosClass, Router, VirtualClock};
use greedy_spanner::serve::{Answer, ServeError, SpannerServer};
use greedy_spanner::shard::ShardedSpanner;
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{Query, Spanner};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::WeightedGraph;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const STRETCH: f64 = 2.0;
const N: usize = 60;
const CLOCK_SEED: u64 = 42;

fn graph() -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(17);
    erdos_renyi_connected(N, 0.12, 1.0..6.0, &mut rng)
}

/// A fixed mixed-class schedule: interactive point batches interleaved with
/// bulk radius sweeps, sizes straddling the limiter's initial limit so the
/// run exercises admit, chunk, queue and shed.
fn schedule() -> Vec<Vec<Query>> {
    let sizes = [16usize, 40, 8, 96, 24, 48, 12, 80, 20, 32, 56, 16];
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            if i % 3 == 2 {
                QueryWorkload::ball_sweep(N, vec![1.5, 3.0])
                    .expect("valid sweep")
                    .queries(size)
                    .seed(100 + i as u64)
                    .generate()
            } else {
                QueryWorkload::uniform(N)
                    .expect("valid shape")
                    .queries(size)
                    .seed(i as u64)
                    .generate()
            }
        })
        .collect()
}

fn frozen_server(g: &WeightedGraph, threads: usize) -> SpannerServer {
    Spanner::greedy()
        .stretch(STRETCH)
        .build(g)
        .expect("build")
        .serve()
        .threads(threads)
        .finish()
}

fn live_server(g: &WeightedGraph, threads: usize) -> SpannerServer {
    Spanner::greedy()
        .stretch(STRETCH)
        .build(g)
        .expect("build")
        .live(g)
        .expect("live")
        .serve()
        .threads(threads)
        .finish()
}

/// `None` = shed, `Some(answers)` = admitted and answered.
type Outcome = Vec<Option<Vec<Answer>>>;

/// Drives the fixed schedule through a freshly configured router over
/// `backend` and records per-batch outcomes. Limiter, knee and clock seed
/// are part of the contract under test — identical everywhere.
fn run_schedule<B: greedy_spanner::runtime::Backend>(backend: B) -> Outcome {
    let mut router = Router::over(backend)
        .limiter(Limiter::aimd(AimdLimit::new(16)))
        .virtual_clock(VirtualClock::seeded(CLOCK_SEED))
        .shed_factor(1.0)
        .finish();
    schedule()
        .iter()
        .map(
            |batch| match router.submit(QosClass::of_batch(batch), batch) {
                Ok(answers) => Some(answers),
                Err(ServeError::Overloaded { retry_after_hint }) => {
                    assert!(
                        retry_after_hint > Duration::ZERO,
                        "shed batches carry a usable retry hint"
                    );
                    None
                }
                Err(other) => panic!("schedule contains no invalid batch: {other}"),
            },
        )
        .collect()
}

fn shed_pattern(outcome: &Outcome) -> Vec<bool> {
    outcome.iter().map(Option::is_none).collect()
}

#[test]
fn admission_partition_and_answers_are_identical_across_thread_counts() {
    let g = graph();
    for (kind, build) in [
        (
            "frozen",
            &(|t| run_schedule(frozen_server(&g, t))) as &dyn Fn(usize) -> Outcome,
        ),
        ("live", &|t| run_schedule(live_server(&g, t))),
        ("sharded", &|t| {
            run_schedule(
                ShardedSpanner::greedy()
                    .stretch(STRETCH)
                    .shards(3)
                    .build(&g)
                    .expect("sharded build")
                    .serve()
                    .threads(t)
                    .finish(),
            )
        }),
    ] {
        let reference = build(THREAD_COUNTS[0]);
        assert!(
            reference.iter().any(Option::is_some) && reference.iter().any(Option::is_none),
            "{kind}: the schedule must exercise both admission and shedding"
        );
        for &threads in &THREAD_COUNTS[1..] {
            let outcome = build(threads);
            assert_eq!(
                outcome, reference,
                "{kind}: outcome diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn shed_partition_is_identical_across_backend_kinds() {
    let g = graph();
    let frozen = run_schedule(frozen_server(&g, 2));
    let live = run_schedule(live_server(&g, 2));
    let sharded = run_schedule(
        ShardedSpanner::greedy()
            .stretch(STRETCH)
            .shards(3)
            .build(&g)
            .expect("sharded build")
            .serve()
            .threads(2)
            .finish(),
    );
    // The shed decision never consults the backend (only batch shape, the
    // limiter and the virtual clock), so the partition is one and the same.
    assert_eq!(shed_pattern(&frozen), shed_pattern(&live));
    assert_eq!(shed_pattern(&frozen), shed_pattern(&sharded));
}

#[test]
fn admitted_answers_match_the_unlimited_path_bit_for_bit() {
    let g = graph();
    let batches = schedule();
    for &threads in &THREAD_COUNTS {
        let outcome = run_schedule(frozen_server(&g, threads));
        // An identically built twin answers every batch on the pre-runtime
        // unlimited path — whole batches, no admission, no chunking.
        let mut twin = frozen_server(&g, threads);
        for (batch, result) in batches.iter().zip(&outcome) {
            let unlimited = twin.answer_batch_unlimited(batch).expect("valid batch");
            if let Some(admitted) = result {
                assert_eq!(
                    admitted, &unlimited,
                    "chunked dispatch changed an answer at threads={threads}"
                );
            }
        }
    }
}

#[test]
fn unlimited_shim_never_sheds_and_matches_direct_dispatch() {
    let g = graph();
    let mut shim = frozen_server(&g, 2);
    let mut direct = frozen_server(&g, 2);
    for batch in schedule() {
        let via_shim = shim.answer_batch(&batch).expect("unlimited never sheds");
        let unlimited = direct.answer_batch_unlimited(&batch).expect("valid batch");
        assert_eq!(via_shim, unlimited);
    }
    let stats = shim.stats();
    let total: u64 = schedule().iter().map(|b| b.len() as u64).sum();
    assert_eq!(stats.admitted, total);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.queued, 0);
}
