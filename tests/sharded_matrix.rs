//! `run_matrix` over sharded builds: the [`Sharded`] adapter slots into the
//! grid next to the direct constructions, cells are bit-identical across
//! thread counts, one-shard cells reproduce the unsharded greedy cells
//! exactly, and the max per-shard peak-memory estimate is monotone
//! non-increasing in the shard count.

use greedy_spanner::{
    run_matrix, Sharded, ShardedSpanner, SpannerAlgorithm, SpannerConfig, SpannerInput,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::WeightedGraph;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const STRETCHES: [f64; 2] = [2.0, 3.0];

fn instances() -> Vec<WeightedGraph> {
    let mut rng = SmallRng::seed_from_u64(20160722);
    vec![
        erdos_renyi_connected(30, 0.25, 1.0..9.0, &mut rng),
        erdos_renyi_connected(48, 0.15, 1.0..9.0, &mut rng),
    ]
}

fn sharded_grid(
    graphs: &[WeightedGraph],
    shards: usize,
    threads: usize,
) -> Vec<greedy_spanner::MatrixCell> {
    let inputs: Vec<(&str, SpannerInput<'_>)> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| (["er-30", "er-48"][i], SpannerInput::from(g)))
        .collect();
    let algorithms: Vec<Box<dyn SpannerAlgorithm>> = vec![Box::new(Sharded::greedy(shards))];
    let config = SpannerConfig {
        threads,
        ..SpannerConfig::default()
    };
    run_matrix(&inputs, &algorithms, &STRETCHES, &config)
}

#[test]
fn sharded_cells_are_identical_across_thread_counts() {
    let graphs = instances();
    for shards in SHARD_COUNTS {
        let reference = sharded_grid(&graphs, shards, 1);
        assert_eq!(reference.len(), graphs.len() * STRETCHES.len());
        for cell in &reference {
            assert!(
                cell.succeeded(),
                "{} k={shards} t={}",
                cell.input,
                cell.stretch
            );
            let report = cell
                .report
                .as_ref()
                .expect("successful cells carry a report");
            assert!(
                report.meets_stretch_target(),
                "{} k={shards} t={}: measured {}",
                cell.input,
                cell.stretch,
                report.max_stretch
            );
        }
        for threads in [2usize, 8] {
            let cells = sharded_grid(&graphs, shards, threads);
            assert_eq!(cells.len(), reference.len());
            for (cell, expected) in cells.iter().zip(&reference) {
                assert_eq!(cell.input, expected.input);
                assert_eq!(cell.stretch, expected.stretch);
                let (got, want) = (
                    cell.output.as_ref().expect("cell built"),
                    expected.output.as_ref().expect("cell built"),
                );
                assert_eq!(
                    got.spanner.edges(),
                    want.spanner.edges(),
                    "{} k={shards} t={} threads={threads}",
                    cell.input,
                    cell.stretch
                );
            }
        }
    }
}

#[test]
fn one_shard_cells_reproduce_the_unsharded_greedy_cells() {
    let graphs = instances();
    let sharded = sharded_grid(&graphs, 1, 2);
    let inputs: Vec<(&str, SpannerInput<'_>)> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| (["er-30", "er-48"][i], SpannerInput::from(g)))
        .collect();
    let direct_algorithms: Vec<Box<dyn SpannerAlgorithm>> =
        vec![Box::new(greedy_spanner::algorithms::Greedy)];
    let config = SpannerConfig {
        threads: 2,
        ..SpannerConfig::default()
    };
    let direct = run_matrix(&inputs, &direct_algorithms, &STRETCHES, &config);
    assert_eq!(sharded.len(), direct.len());
    for (cell, expected) in sharded.iter().zip(&direct) {
        assert_eq!(cell.input, expected.input);
        assert_eq!(cell.stretch, expected.stretch);
        let (got, want) = (
            cell.output.as_ref().expect("sharded cell built"),
            expected.output.as_ref().expect("direct cell built"),
        );
        assert_eq!(
            got.spanner.edges(),
            want.spanner.edges(),
            "{} t={}: one-shard grid cell != unsharded greedy cell",
            cell.input,
            cell.stretch
        );
    }
}

#[test]
fn max_per_shard_peak_memory_is_monotone_non_increasing_in_shard_count() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = erdos_renyi_connected(120, 0.08, 1.0..6.0, &mut rng);
    let mut previous = usize::MAX;
    for shards in SHARD_COUNTS {
        let out = ShardedSpanner::greedy()
            .stretch(2.0)
            .shards(shards)
            .build(&g)
            .expect("sharded build");
        let peak = out.max_shard_peak_memory();
        assert!(peak > 0, "k={shards}: zero peak-memory estimate");
        assert!(
            peak <= previous,
            "k={shards}: per-shard peak {peak} grew past {previous}"
        );
        previous = peak;
    }
}
