//! Acceptance matrix for the point-query acceleration stack: every engine
//! variant — binary-heap queue, bucket queue, and bucket + ALT landmark
//! pruning, with and without the cache-conscious relayout, under the
//! scalar, batched, and auto-selected relaxation kernels — must serve
//! answers **bit-identical** to the plain reference configuration, across
//! thread counts {1, 2, 8} and cache capacities {0, 64}, cold and warm.
//!
//! The live half of the matrix drives servers through update batches that
//! force generation compaction (an epoch bump), so stale landmark tables
//! must be dropped and re-derived before they can influence an answer;
//! every post-update batch is audited against a from-scratch
//! [`SpannerServer::freeze_current`] rebuild that carries no accelerator
//! state at all.

use greedy_spanner::serve::{Answer, Query, ServeBuilder, SpannerServer};
use greedy_spanner::workload::{LiveWorkload, QueryWorkload, StreamEvent};
use greedy_spanner::Spanner;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::{QueuePolicy, RelaxKernel, WeightedGraph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CACHE_CAPACITIES: [usize; 2] = [0, 64];

/// One engine configuration under test: queue policy, whether the frozen
/// handle is relayouted, how many landmarks to derive (0 = none), and which
/// relaxation kernel the engines run.
struct Variant {
    name: &'static str,
    policy: QueuePolicy,
    reorder: bool,
    landmarks: usize,
    kernel: RelaxKernel,
}

/// The frozen-handle matrix. `heap/plain/scalar` is the reference: the
/// exact pre-acceleration serving configuration.
const FROZEN_VARIANTS: [Variant; 8] = [
    Variant {
        name: "heap/plain/scalar",
        policy: QueuePolicy::Heap,
        reorder: false,
        landmarks: 0,
        kernel: RelaxKernel::Scalar,
    },
    Variant {
        name: "heap/plain/batched",
        policy: QueuePolicy::Heap,
        reorder: false,
        landmarks: 0,
        kernel: RelaxKernel::Batched,
    },
    Variant {
        name: "bucket/plain/batched",
        policy: QueuePolicy::Auto,
        reorder: false,
        landmarks: 0,
        kernel: RelaxKernel::Batched,
    },
    Variant {
        name: "bucket/reordered/auto",
        policy: QueuePolicy::Auto,
        reorder: true,
        landmarks: 0,
        kernel: RelaxKernel::Auto,
    },
    Variant {
        name: "heap/reordered+alt/scalar",
        policy: QueuePolicy::Heap,
        reorder: true,
        landmarks: 4,
        kernel: RelaxKernel::Scalar,
    },
    Variant {
        name: "heap/reordered+alt/batched",
        policy: QueuePolicy::Heap,
        reorder: true,
        landmarks: 4,
        kernel: RelaxKernel::Batched,
    },
    Variant {
        name: "bucket/reordered+alt/batched",
        policy: QueuePolicy::Auto,
        reorder: true,
        landmarks: 4,
        kernel: RelaxKernel::Batched,
    },
    Variant {
        name: "bucket/reordered+alt/auto",
        policy: QueuePolicy::Auto,
        reorder: true,
        landmarks: 4,
        kernel: RelaxKernel::Auto,
    },
];

fn test_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi_connected(n, 0.12, 0.05..8.0, &mut rng)
}

#[test]
fn frozen_engine_variants_answer_bit_identically() {
    let g = test_graph(90, 0x0720_2611);
    let stretch = 3.0;
    let output = Spanner::greedy().stretch(stretch).build(&g).expect("valid");
    let queries = QueryWorkload::mixed(g.num_vertices(), true)
        .expect("valid workload")
        .queries(140)
        .seed(0xA17)
        .bound(3.0 * stretch)
        .generate();
    // The reference: binary heap, original layout, no landmarks — the
    // serving configuration that predates the acceleration stack.
    let reference: Vec<Answer> = {
        let mut server = output
            .clone()
            .serve()
            .threads(1)
            .cache_capacity(0)
            .queue_policy(QueuePolicy::Heap)
            .relax_kernel(RelaxKernel::Scalar)
            .reorder(false)
            .landmarks(0)
            .audit_against(&g)
            .finish();
        server.answer_batch(&queries).expect("valid batch")
    };
    for variant in &FROZEN_VARIANTS {
        for threads in THREAD_COUNTS {
            for cache in CACHE_CAPACITIES {
                let mut server = output
                    .clone()
                    .serve()
                    .threads(threads)
                    .cache_capacity(cache)
                    .queue_policy(variant.policy)
                    .relax_kernel(variant.kernel)
                    .reorder(variant.reorder)
                    .landmarks(variant.landmarks)
                    .audit_against(&g)
                    .finish();
                let cold = server.answer_batch(&queries).expect("valid batch");
                let warm = server.answer_batch(&queries).expect("valid batch");
                assert_eq!(
                    cold, reference,
                    "cold {} threads={threads} cache={cache}",
                    variant.name
                );
                assert_eq!(
                    warm, reference,
                    "warm {} threads={threads} cache={cache}",
                    variant.name
                );
                let engine = server.engine_stats();
                assert_eq!(
                    engine.reuse_hits, engine.queries,
                    "{} threads={threads} cache={cache}: a serving engine allocated",
                    variant.name
                );
            }
        }
    }
}

/// The from-scratch oracle for a live server: freeze its current spanner
/// into a fresh frozen handle served with **no** accelerator state — heap
/// queue, inherited (identity) layout, whatever landmark state the handle
/// carries (none, for a live-born handle) — and a cold cache.
fn rebuilt_reference(server: &SpannerServer, queries: &[Query]) -> Vec<Answer> {
    let original = server
        .live()
        .expect("live matrix runs on live servers")
        .original()
        .to_weighted_graph();
    let mut reference = ServeBuilder::from_handle(server.freeze_current())
        .threads(1)
        .cache_capacity(0)
        .queue_policy(QueuePolicy::Heap)
        .relax_kernel(RelaxKernel::Scalar)
        .audit_against(&original)
        .finish();
    reference.answer_batch(queries).expect("valid batch")
}

#[test]
fn live_engine_variants_survive_compacting_update_batches() {
    let g = test_graph(70, 0x0720_2622);
    let stretch = 3.0;
    let stream = LiveWorkload::new(g.num_vertices())
        .expect("valid universe")
        .update_fraction(0.5)
        .expect("valid fraction")
        .rounds(10)
        .queries_per_batch(30)
        // Heavy churn: compaction requires `COMPACTION_MIN_DEAD` tombstoned
        // slots, so the stream needs enough deletes/reweights to cross it.
        .updates_per_batch(30)
        .weights(0.05, 20.0)
        .expect("valid range")
        .bound(1e6)
        .seed(0xBEE5)
        .generate(&g);
    // Live servers never relayout; the live matrix varies queue policy, the
    // demand-derived landmark table (0 disables it), and the relax kernel.
    // Tombstoning update batches are exactly what flips `Auto` onto the
    // batched path mid-stream, so the kernel dimension matters most here.
    let live_variants: [(&str, QueuePolicy, usize, RelaxKernel); 6] = [
        (
            "heap/plain/scalar",
            QueuePolicy::Heap,
            0,
            RelaxKernel::Scalar,
        ),
        (
            "heap/plain/batched",
            QueuePolicy::Heap,
            0,
            RelaxKernel::Batched,
        ),
        ("bucket/plain/auto", QueuePolicy::Auto, 0, RelaxKernel::Auto),
        (
            "heap/alt/batched",
            QueuePolicy::Heap,
            4,
            RelaxKernel::Batched,
        ),
        (
            "bucket/alt/batched",
            QueuePolicy::Auto,
            4,
            RelaxKernel::Batched,
        ),
        ("bucket/alt/auto", QueuePolicy::Auto, 4, RelaxKernel::Auto),
    ];
    for (name, policy, landmark_count, kernel) in live_variants {
        for threads in THREAD_COUNTS {
            for cache in CACHE_CAPACITIES {
                // A near-zero threshold makes every tombstoning batch
                // compact, so epoch bumps (which invalidate any live
                // landmark table) happen throughout the stream.
                let mut server = Spanner::greedy()
                    .stretch(stretch)
                    .build(&g)
                    .expect("valid stretch")
                    .live(&g)
                    .expect("greedy guarantees a stretch")
                    .with_compaction_threshold(1e-6)
                    .serve()
                    .threads(threads)
                    .cache_capacity(cache)
                    .queue_policy(policy)
                    .relax_kernel(kernel)
                    .landmarks(landmark_count)
                    .finish();
                let mut compactions = 0usize;
                for (round, event) in stream.iter().enumerate() {
                    match event {
                        StreamEvent::Updates(batch) => {
                            let outcome = server.apply_updates(batch).expect("valid batch");
                            compactions += outcome.compactions;
                        }
                        StreamEvent::Queries(queries) => {
                            let answers = server.answer_batch(queries).expect("valid batch");
                            let reference = rebuilt_reference(&server, queries);
                            assert_eq!(
                                answers, reference,
                                "round {round}: {name} threads={threads} cache={cache}"
                            );
                        }
                    }
                }
                assert!(
                    compactions > 0,
                    "{name}: the stream must trigger at least one compaction \
                     for the epoch-invalidation path to be exercised"
                );
            }
        }
    }
}
