//! Property suite for the sharded pipeline's determinism and certification
//! contract:
//!
//! * The sharded **build** artifact (stitched spanner + stitch statistics)
//!   is bit-identical at every thread count, and one build shard reproduces
//!   the direct pipeline exactly.
//! * The certified global stretch is real: `evaluate` confirms the stitched
//!   spanner meets the guarantee carried in its provenance, and the stitch
//!   audit's `max_cut_stretch` stays within it.
//! * **Serving** answers are bit-identical across serve-shard counts
//!   {1, 2, 4} × thread counts {1, 2, 8} × cache states (disabled and
//!   default, cold and warm) — and one serve shard answers exactly like
//!   today's `SpannerServer` over the same stitched output.

use greedy_spanner::analysis::evaluate;
use greedy_spanner::serve::Answer;
use greedy_spanner::shard::SKELETON_SLACK;
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{ShardedSpanner, Spanner};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::WeightedGraph;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SERVE_SHARDS: [usize; 3] = [1, 2, 4];
const CACHE_CAPACITIES: [usize; 2] = [0, 32];
const STRETCH: f64 = 2.0;

fn assert_sharded_contract(g: &WeightedGraph, build_shards: usize, workload_seed: u64) {
    let n = g.num_vertices();
    let build = |threads: usize| {
        ShardedSpanner::greedy()
            .stretch(STRETCH)
            .shards(build_shards)
            .threads(threads)
            .build(g)
            .expect("sharded build")
    };

    // The build artifact is a function of (graph, shards, seed) alone —
    // never of the thread budget.
    let sharded = build(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let other = build(threads);
        assert_eq!(
            other.spanner().edges(),
            sharded.spanner().edges(),
            "build artifact changed: k={build_shards} threads={threads} n={n}"
        );
        assert_eq!(other.stitch.cut_edges, sharded.stitch.cut_edges);
        assert_eq!(other.stitch.kept_cut_edges, sharded.stitch.kept_cut_edges);
        assert_eq!(
            other.stitch.skeleton_vertices,
            sharded.stitch.skeleton_vertices
        );
        assert_eq!(
            other.stitch.contracted_edges,
            sharded.stitch.contracted_edges
        );
        assert_eq!(
            other.stitch.max_cut_stretch.to_bits(),
            sharded.stitch.max_cut_stretch.to_bits()
        );
    }

    // One build shard is the direct pipeline, bit for bit.
    if build_shards == 1 {
        let direct = Spanner::greedy()
            .stretch(STRETCH)
            .build(g)
            .expect("direct build");
        assert_eq!(
            sharded.spanner().edges(),
            direct.spanner.edges(),
            "k=1 != direct, n={n}"
        );
    }

    // The certified stretch in the provenance is real, and the stitch audit
    // stayed within it.
    let target = sharded
        .certified_stretch()
        .expect("greedy certifies a stretch");
    let report = evaluate(g, sharded.spanner(), target);
    assert!(
        report.meets_stretch_target(),
        "k={build_shards} n={n}: measured {} > certified {target}",
        report.max_stretch
    );
    assert!(
        sharded.stitch.max_cut_stretch <= target * SKELETON_SLACK,
        "cut-edge audit exceeded the certificate: {} > {target}",
        sharded.stitch.max_cut_stretch
    );

    // Serving: every serve-shard count, thread count, and cache state
    // answers exactly like the plain server over the same stitched output.
    let queries = QueryWorkload::mixed(n, true)
        .expect("valid workload")
        .queries(90)
        .seed(workload_seed)
        .bound(3.0 * STRETCH)
        .generate();
    let mut plain = sharded.output.clone().serve().audit_against(g).finish();
    let reference: Vec<Answer> = plain.answer_batch(&queries).expect("valid batch");
    let warm_reference = plain.answer_batch(&queries).expect("valid batch");
    assert_eq!(warm_reference, reference, "plain server warm != cold");
    for serve_shards in SERVE_SHARDS {
        for threads in THREAD_COUNTS {
            for cache in CACHE_CAPACITIES {
                let mut server = sharded
                    .clone()
                    .serve()
                    .serve_shards(serve_shards)
                    .threads(threads)
                    .cache_capacity(cache)
                    .audit_against(g)
                    .finish();
                let cold = server.answer_batch(&queries).expect("valid batch");
                let warm = server.answer_batch(&queries).expect("valid batch");
                let label = format!(
                    "build_k={build_shards} serve_k={serve_shards} threads={threads} \
                     cache={cache} n={n}"
                );
                assert_eq!(cold, reference, "cold, {label}");
                assert_eq!(warm, reference, "warm, {label}");
                let merged = server.stats();
                assert_eq!(merged.queries, 2 * queries.len() as u64, "{label}");
                assert_eq!(merged.latency.total(), merged.queries, "{label}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random ER graphs × build-shard counts {1, 2, 4}: the full sharded
    /// contract (build determinism, certification, serving bit-identity).
    #[test]
    fn sharded_pipeline_is_deterministic_and_certified(
        seed in 0u64..10_000,
        n in 24usize..56,
        shards_index in 0usize..3,
    ) {
        let build_shards = [1usize, 2, 4][shards_index];
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.2, 1.0..8.0, &mut rng);
        assert_sharded_contract(&g, build_shards, seed ^ 0x5A4D);
    }
}

/// A fixed mid-size instance exercising all three build-shard counts, so
/// the contract is pinned even if the proptest sampler drifts.
#[test]
fn fixed_instance_covers_every_build_shard_count() {
    let mut rng = SmallRng::seed_from_u64(20160722);
    let g = erdos_renyi_connected(64, 0.15, 1.0..10.0, &mut rng);
    for build_shards in [1usize, 2, 4] {
        assert_sharded_contract(&g, build_shards, 0xF00D);
    }
}
