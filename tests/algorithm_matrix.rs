//! Satellite coverage for the unified pipeline: every `registry()` algorithm
//! runs on a seeded Erdős–Rényi graph and on a doubling metric (clustered
//! planar points), and `analysis::evaluate` confirms each construction's
//! stretch guarantee on both.

use greedy_spanner::algorithms::registry;
use greedy_spanner::analysis::evaluate;
use greedy_spanner::{run_matrix, SpannerConfig, SpannerError, SpannerInput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::erdos_renyi_connected;
use spanner_metric::generators::clustered_points;

#[test]
fn every_registry_algorithm_meets_its_stretch_target_on_both_input_kinds() {
    let mut rng = SmallRng::seed_from_u64(20160722);
    let graph = erdos_renyi_connected(60, 0.2, 1.0..10.0, &mut rng);
    // Clustered planar points: a doubling metric (ddim ≈ 2).
    let doubling = clustered_points::<2, _>(60, 4, 0.05, &mut rng);

    let inputs = [
        ("er-graph", SpannerInput::from(&graph)),
        ("doubling-metric", SpannerInput::from(&doubling)),
    ];
    let config = SpannerConfig {
        stretch: 3.0,
        seed: 11,
        ..SpannerConfig::default()
    };

    for (input_name, input) in &inputs {
        let reference = input.reference_graph();
        for algorithm in registry() {
            if !algorithm.supports(input) {
                // Unsupported pairs must fail loudly, not silently succeed.
                assert!(
                    matches!(
                        algorithm.build(input, &config),
                        Err(SpannerError::Unsupported { .. })
                    ),
                    "{} on {input_name}",
                    algorithm.name()
                );
                continue;
            }
            let out = algorithm
                .build(input, &config)
                .unwrap_or_else(|e| panic!("{} on {input_name}: {e}", algorithm.name()));
            // `evaluate` must certify the guarantee the algorithm claims for
            // this config (the trivial baselines claim none; for them the
            // spanner must still span).
            match algorithm.guaranteed_stretch(&config) {
                Some(target) => {
                    let report = evaluate(&reference, &out.spanner, target);
                    assert!(
                        report.meets_stretch_target(),
                        "{} on {input_name}: measured {} > target {target}",
                        algorithm.name(),
                        report.max_stretch
                    );
                }
                None => {
                    assert!(
                        spanner_graph::connectivity::is_connected(&out.spanner),
                        "{} on {input_name} must span",
                        algorithm.name()
                    );
                }
            }
            // Uniform bookkeeping holds everywhere.
            assert_eq!(out.provenance.algorithm, algorithm.name());
            assert_eq!(out.provenance.input, input.describe());
            assert_eq!(out.stats.edges_added, out.spanner.num_edges());
        }
    }
}

#[test]
fn batch_runner_covers_the_same_grid_in_one_call() {
    let mut rng = SmallRng::seed_from_u64(31337);
    let graph = erdos_renyi_connected(40, 0.25, 1.0..5.0, &mut rng);
    let doubling = clustered_points::<2, _>(40, 3, 0.05, &mut rng);
    let inputs = [
        ("er-graph", SpannerInput::from(&graph)),
        ("doubling-metric", SpannerInput::from(&doubling)),
    ];
    let algorithms = registry();
    let stretches = [1.5, 2.0, 3.0];
    let cells = run_matrix(&inputs, &algorithms, &stretches, &SpannerConfig::default());

    // Both input kinds appear, every cell succeeds, and every reported
    // guarantee is certified by the attached evaluation report.
    assert!(cells.iter().any(|c| c.input == "er-graph"));
    assert!(cells.iter().any(|c| c.input == "doubling-metric"));
    for cell in &cells {
        let out = cell.output.as_ref().unwrap_or_else(|e| {
            panic!(
                "{} on {} at t={}: {e}",
                cell.algorithm, cell.input, cell.stretch
            )
        });
        let report = cell
            .report
            .as_ref()
            .expect("successful cells carry reports");
        if let Some(bound) = out.provenance.guaranteed_stretch {
            assert!(
                report.max_stretch <= bound * (1.0 + 1e-9) + 1e-12,
                "{} on {} at t={}: {} > {bound}",
                cell.algorithm,
                cell.input,
                cell.stretch,
                report.max_stretch
            );
        }
    }
    // The grid is dense: the metric input supports the whole registry.
    let metric_cells = cells
        .iter()
        .filter(|c| c.input == "doubling-metric")
        .count();
    assert_eq!(metric_cells, algorithms.len() * stretches.len());
}
