//! Property-based tests of the paper's structural claims, driven by proptest:
//! random graphs and point sets are generated and the invariants the proofs
//! rely on are checked exhaustively on each instance.

use proptest::prelude::*;

use greedy_spanner::analysis::{is_t_spanner, max_stretch_all_pairs, max_stretch_over_edges};
use greedy_spanner::approx_greedy::ApproxGreedyParams;
use greedy_spanner::bounded_degree::bounded_degree_spanner;
use greedy_spanner::optimality::{contains_mst, is_own_unique_spanner, star_overlay_instance};
use greedy_spanner::Spanner;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{erdos_renyi_connected, high_girth_graph};
use spanner_graph::metric_closure::metric_closure;
use spanner_graph::mst::mst_weight;
use spanner_graph::WeightedGraph;
use spanner_metric::generators::uniform_points;
use spanner_metric::{EuclideanSpace, MetricSpace, Point};

/// Strategy: a connected random weighted graph described by (n, density seed).
fn arb_connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (5usize..40, 0u64..1000, 1usize..4).prop_map(|(n, seed, density)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = density as f64 * 0.1;
        erdos_renyi_connected(n, p, 1.0..10.0, &mut rng)
    })
}

/// Strategy: a small planar point set with distinct points.
fn arb_point_set() -> impl Strategy<Value = EuclideanSpace<2>> {
    (4usize..30, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        uniform_points::<2, _>(n, &mut rng)
    })
}

/// Strategy: a stretch parameter in [1, 5].
fn arb_stretch() -> impl Strategy<Value = f64> {
    (10u32..50).prop_map(|t| t as f64 / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The greedy output is always a t-spanner of its input (Algorithm 1's
    /// defining property).
    #[test]
    fn greedy_output_is_a_t_spanner(g in arb_connected_graph(), t in arb_stretch()) {
        let spanner = Spanner::greedy().stretch(t).build(&g).unwrap();
        prop_assert!(is_t_spanner(&g, &spanner.spanner, t));
        prop_assert!(spanner.spanner.is_edge_subgraph_of(&g));
    }

    /// Observation 2: the greedy spanner contains an MST of the input.
    #[test]
    fn greedy_contains_an_mst(g in arb_connected_graph(), t in arb_stretch()) {
        let spanner = Spanner::greedy().stretch(t).build(&g).unwrap();
        prop_assert!(contains_mst(&g, &spanner.spanner));
    }

    /// Lemma 3: the only t-spanner of the greedy t-spanner is itself.
    #[test]
    fn greedy_is_its_own_unique_spanner(g in arb_connected_graph(), t in arb_stretch()) {
        let spanner = Spanner::greedy().stretch(t).build(&g).unwrap();
        prop_assert!(is_own_unique_spanner(&spanner.spanner, t).unwrap());
    }

    /// The greedy spanner's weight is sandwiched between the MST weight
    /// (Observation 2: it contains an MST) and the input weight (it is a
    /// subgraph), and it spans the graph.
    #[test]
    fn greedy_weight_between_mst_and_input(g in arb_connected_graph(), t in arb_stretch()) {
        let spanner = Spanner::greedy().stretch(t).build(&g).unwrap();
        let w = spanner.spanner.total_weight();
        prop_assert!(w + 1e-9 >= mst_weight(&g));
        prop_assert!(w <= g.total_weight() + 1e-9);
        prop_assert!(spanner.spanner.num_edges() + 1 >= g.num_vertices());
    }

    /// Observation 6: the metric closure preserves the MST weight.
    #[test]
    fn metric_closure_preserves_mst_weight(g in arb_connected_graph()) {
        let closure = metric_closure(&g).unwrap();
        prop_assert!((mst_weight(&g) - mst_weight(&closure)).abs() <= 1e-6 * mst_weight(&g).max(1.0));
    }

    /// The greedy spanner of a metric space meets its stretch target and is
    /// never heavier than the full metric graph.
    #[test]
    fn metric_greedy_meets_stretch(points in arb_point_set(), t in arb_stretch()) {
        let complete = points.to_complete_graph();
        let result = Spanner::greedy().stretch(t).build(&points).unwrap();
        prop_assert!(max_stretch_over_edges(&complete, &result.spanner) <= t * (1.0 + 1e-9));
        prop_assert!(result.spanner.total_weight() <= complete.total_weight() + 1e-9);
    }

    /// The approximate-greedy spanner always meets the (1 + ε) stretch target
    /// (soundness of the cluster-graph over-estimates) and stays inside its
    /// base spanner.
    #[test]
    fn approximate_greedy_is_sound(points in arb_point_set(), eps_pct in 20u32..80) {
        let eps = eps_pct as f64 / 100.0;
        let complete = points.to_complete_graph();
        let approx = Spanner::approx_greedy().epsilon(eps).build(&points).unwrap();
        prop_assert!(max_stretch_all_pairs(&complete, &approx.spanner) <= (1.0 + eps) * (1.0 + 1e-9));
        // Theorem 6's structural guarantee: the output draws its edges from
        // the (deterministic) bounded-degree base spanner.
        let params = ApproxGreedyParams::new(eps);
        let base = bounded_degree_spanner(&points, params.epsilon * params.base_fraction).unwrap();
        prop_assert!(approx.spanner.is_edge_subgraph_of(&base));
    }

    /// Baswana–Sen always meets its (2k − 1) stretch guarantee.
    #[test]
    fn baswana_sen_meets_stretch(g in arb_connected_graph(), k in 1usize..4, seed in 0u64..100) {
        let spanner = Spanner::baswana_sen().k(k).seed(seed).build(&g).unwrap();
        prop_assert!(is_t_spanner(&g, &spanner.spanner, (2 * k - 1) as f64));
    }

    /// The Figure 1 phenomenon generalizes: for any unit-weight high-girth
    /// graph H with girth g, the greedy (g − 2)-spanner of the star overlay
    /// keeps every edge of H.
    #[test]
    fn star_overlay_greedy_keeps_high_girth_edges(n in 8usize..25, seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = high_girth_graph(n, 5, 1.0, &mut rng);
        let inst = star_overlay_instance(&h, 0, 0.25).unwrap();
        let greedy = Spanner::greedy().stretch(3.0).build(&inst.graph).unwrap();
        prop_assert_eq!(inst.count_h_edges_in(&greedy.spanner), h.num_edges());
    }

    /// Distinct points always yield a connected greedy spanner whose degree is
    /// at most n − 1 and whose size is at most the number of candidate pairs.
    #[test]
    fn metric_greedy_structural_sanity(points in arb_point_set()) {
        let n = points.len();
        let result = Spanner::greedy().stretch(2.0).build(&points).unwrap();
        prop_assert!(spanner_graph::connectivity::is_connected(&result.spanner));
        prop_assert!(result.spanner.max_degree() <= n.saturating_sub(1));
        prop_assert!(result.spanner.num_edges() <= n * (n - 1) / 2);
    }
}

#[test]
fn collinear_points_regression() {
    // A hand-picked degenerate instance: equally spaced collinear points.
    let points: EuclideanSpace<1> = (0..10).map(|i| Point::new([i as f64])).collect();
    let result = Spanner::greedy().stretch(1.0).build(&points).unwrap();
    assert_eq!(result.spanner.num_edges(), 9);
}
