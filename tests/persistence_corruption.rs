//! Corruption hardening of the persistence subsystem: damaged stores must
//! surface typed [`greedy_spanner::PersistError`]s or fall back to older
//! valid snapshots — **never panic, never serve silently-wrong state**.
//!
//! Covered here:
//! * the newest snapshot truncated or bit-flipped → recovery falls back to
//!   an older valid snapshot and replays a longer WAL suffix to the exact
//!   same state;
//! * every snapshot destroyed → typed `NoValidSnapshot`;
//! * a damaged WAL tail → recovery stops at the torn record and lands on
//!   the exact pre-crash prefix state;
//! * property test: random truncation / byte flips anywhere in the store
//!   either recover to a certified stretch-`t` state or fail with a typed
//!   error — no panics, no garbage.

use std::fs;
use std::path::{Path, PathBuf};

use greedy_spanner::analysis::is_t_spanner;
use greedy_spanner::{LiveSpanner, PersistError, Spanner, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::{VertexId, WeightedGraph};
use spanner_store::{list_snapshots, read_wal, WAL_FILE_NAME};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("greedy-spanner-corruption-tests")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn live_for(g: &WeightedGraph, t: f64) -> LiveSpanner {
    Spanner::greedy()
        .stretch(t)
        .build(g)
        .expect("valid stretch")
        .live(g)
        .expect("greedy guarantees a stretch")
}

/// Deterministic churny stream (insert-heavy, then delete-heavy) that
/// crosses the compaction threshold, so the store accumulates several
/// snapshot generations plus a WAL suffix.
fn churn_batches(n: usize, seed: u64) -> Vec<UpdateBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<(usize, usize)> = Vec::new();
    let mut batches = Vec::new();
    for round in 0..14 {
        let mut batch = UpdateBatch::new();
        for _ in 0..6 {
            let deletable = !live.is_empty();
            if round % 2 == 0 || !deletable {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n - 1);
                if v >= u {
                    v += 1;
                }
                let w = rng.gen_range(0.3..6.0);
                batch = batch.insert(VertexId(u), VertexId(v), w);
                live.push((u, v));
            } else {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                batch = batch.delete(VertexId(u), VertexId(v));
            }
        }
        batches.push(batch);
    }
    batches
}

/// Build a populated store and return the final in-memory truth alongside.
fn populated_store(dir: &Path, seed: u64) -> (LiveSpanner, WeightedGraph) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5);
    let g = erdos_renyi_connected(14, 0.3, 1.0..8.0, &mut rng);
    let mut live = live_for(&g, 2.0);
    live.persist_to(dir).expect("fresh store");
    for batch in churn_batches(14, seed) {
        live.apply(&batch).expect("valid batch");
    }
    (live, g)
}

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = fs::read(path).unwrap();
    assert!(offset < bytes.len(), "flip offset out of range");
    bytes[offset] ^= 0x40;
    fs::write(path, bytes).unwrap();
}

#[test]
fn damaged_newest_snapshot_falls_back_to_older_generation() {
    for (mode, name) in [("flip", "snap-flip"), ("truncate", "snap-trunc")] {
        let dir = fresh_dir(name);
        let (live, _) = populated_store(&dir, 11);
        let snapshots = list_snapshots(&dir).expect("store is listable");
        assert!(
            snapshots.len() >= 2,
            "churn should have written several generations, got {}",
            snapshots.len()
        );

        let newest = &snapshots[0].path;
        let len = fs::metadata(newest).unwrap().len() as usize;
        match mode {
            "flip" => flip_byte(newest, len / 2),
            _ => {
                let f = fs::OpenOptions::new().write(true).open(newest).unwrap();
                f.set_len(len as u64 / 2).unwrap();
            }
        }

        // Fallback: older snapshot + longer WAL replay → identical state.
        let recovered = LiveSpanner::recover(&dir).expect("older generation recovers");
        assert!(
            recovered.report.snapshots_skipped >= 1,
            "{mode}: the damaged newest snapshot must be skipped"
        );
        assert_ne!(recovered.report.snapshot_path, *newest);
        assert_eq!(
            recovered.live.spanner().to_weighted_graph(),
            live.spanner().to_weighted_graph(),
            "{mode}: fallback recovery diverged"
        );
        assert_eq!(
            recovered.live.original().to_weighted_graph(),
            live.original().to_weighted_graph()
        );
        assert_eq!(recovered.live.stats().batches, live.stats().batches);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn store_with_no_valid_snapshot_reports_typed_error() {
    let dir = fresh_dir("all-snapshots-dead");
    let _ = populated_store(&dir, 13);
    for candidate in list_snapshots(&dir).expect("store is listable") {
        flip_byte(&candidate.path, 64);
    }
    match LiveSpanner::recover(&dir) {
        Err(PersistError::NoValidSnapshot { candidates, .. }) => {
            assert!(candidates >= 2, "every damaged candidate must be counted");
        }
        other => panic!("expected NoValidSnapshot, got {other:?}"),
    }

    // An empty directory is the degenerate case of the same error.
    let empty = fresh_dir("empty-store");
    fs::create_dir_all(&empty).unwrap();
    match LiveSpanner::recover(&empty) {
        Err(PersistError::NoValidSnapshot { candidates, .. }) => assert_eq!(candidates, 0),
        other => panic!("expected NoValidSnapshot, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&empty).unwrap();
}

#[test]
fn torn_wal_tail_recovers_the_exact_prefix_state() {
    let dir = fresh_dir("torn-tail");
    let twin_dir = fresh_dir("torn-tail-twin");
    let (live, g) = populated_store(&dir, 17);
    let batches = churn_batches(14, 17);

    // Keep only snapshot seq 0 so the WAL carries the whole history, then
    // flip a byte inside the last record: recovery must stop exactly one
    // batch short.
    let snapshots = list_snapshots(&dir).expect("store is listable");
    for stale in &snapshots[..snapshots.len() - 1] {
        fs::remove_file(&stale.path).unwrap();
    }
    let wal_path = dir.join(WAL_FILE_NAME);
    let contents = read_wal(&wal_path).expect("intact WAL");
    assert_eq!(contents.records.len(), batches.len());
    assert!(contents.torn_tail.is_none());
    let last_payload = contents.records.last().unwrap().payload.len() as u64;
    let last_start = contents.valid_len - (last_payload + 24); // 24 = record overhead
    flip_byte(&wal_path, last_start as usize + 20);

    let recovered = LiveSpanner::recover(&dir).expect("prefix recovers");
    assert!(
        recovered.report.torn_tail.is_some(),
        "tear must be reported"
    );
    assert_eq!(recovered.report.snapshot_seq, 0);
    assert_eq!(recovered.report.batches_replayed, batches.len() as u64 - 1);

    // The recovered state equals a twin that only ever saw the prefix.
    let mut twin = live_for(&g, 2.0);
    for batch in &batches[..batches.len() - 1] {
        twin.apply(batch).expect("valid batch");
    }
    assert_eq!(
        recovered.live.spanner().to_weighted_graph(),
        twin.spanner().to_weighted_graph()
    );
    assert_eq!(
        recovered.live.original().to_weighted_graph(),
        twin.original().to_weighted_graph()
    );
    assert_ne!(
        recovered.live.spanner().to_weighted_graph(),
        live.spanner().to_weighted_graph(),
        "the torn batch must not have been applied"
    );

    // After recovery the WAL is healed: new batches land after the tear.
    let mut revived = recovered.live;
    revived.apply(&batches[batches.len() - 1]).expect("reapply");
    assert_eq!(
        revived.spanner().to_weighted_graph(),
        live.spanner().to_weighted_graph(),
        "reapplying the lost batch must converge to the full history"
    );
    fs::remove_dir_all(&dir).unwrap();
    let _ = fs::remove_dir_all(&twin_dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary single-point damage anywhere in the store: recovery either
    /// lands on a certified stretch-t state or fails with a typed error.
    /// It must never panic and never report more batches than were applied.
    #[test]
    fn random_store_damage_never_panics(
        seed in 0u64..1_000,
        pick in 0usize..100,
        spot in 0usize..10_000,
        truncate in 0usize..2,
    ) {
        let truncate = truncate == 1;
        let dir = fresh_dir(&format!("prop-{seed}-{pick}-{spot}-{truncate}"));
        let (live, _) = populated_store(&dir, seed);
        let total_batches = live.stats().batches;

        let mut files: Vec<PathBuf> = list_snapshots(&dir)
            .expect("store is listable")
            .into_iter()
            .map(|c| c.path)
            .collect();
        files.push(dir.join(WAL_FILE_NAME));
        let target = &files[pick % files.len()];
        let len = fs::metadata(target).unwrap().len() as usize;
        if truncate {
            let f = fs::OpenOptions::new().write(true).open(target).unwrap();
            f.set_len((spot % len.max(1)) as u64).unwrap();
        } else {
            flip_byte(target, spot % len.max(1));
        }

        match LiveSpanner::recover(&dir) {
            Ok(recovered) => {
                let stats = recovered.live.stats();
                prop_assert!(stats.batches <= total_batches);
                let spanner = recovered.live.spanner().to_weighted_graph();
                let original = recovered.live.original().to_weighted_graph();
                prop_assert!(
                    is_t_spanner(&original, &spanner, recovered.live.stretch()),
                    "recovered state lost the stretch invariant"
                );
            }
            Err(err) => {
                // Typed, descriptive, and importantly: returned, not panicked.
                prop_assert!(!format!("{err}").is_empty());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
