//! End-to-end crash-recovery contract of the persistence subsystem:
//!
//! 1. **Kill/restart bit-identity.** A live spanner that persists to a
//!    store, applies part of an update stream, is killed (dropped without
//!    ceremony) and recovered, then applies the rest of the stream, must
//!    answer a held-out query batch **bit-identically** to an uninterrupted
//!    twin that never touched disk — at worker-thread counts {1, 2, 8}.
//! 2. **Bounded memory under churn.** Unbounded insert/delete churn must
//!    trigger generation compaction, keeping the ground-truth edge array
//!    within a constant factor of the live edge count — and the
//!    compaction-triggered snapshots must themselves recover bit-identically.

use std::path::PathBuf;

use greedy_spanner::update::COMPACTION_MIN_DEAD;
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{LiveSpanner, Spanner, UpdateBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::generators::erdos_renyi_connected;
use spanner_graph::{VertexId, WeightedGraph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("greedy-spanner-recovery-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn live_for(g: &WeightedGraph, t: f64, threads: usize) -> LiveSpanner {
    Spanner::greedy()
        .stretch(t)
        .build(g)
        .expect("valid stretch")
        .live(g)
        .expect("greedy guarantees a stretch")
        .with_threads(threads)
}

/// A deterministic mixed insert/delete stream, valid for sequential
/// application: the generator mirrors the live edge multiset so deletions
/// always name a live pair.
fn update_stream(
    g: &WeightedGraph,
    rounds: usize,
    per_batch: usize,
    seed: u64,
) -> Vec<UpdateBatch> {
    let n = g.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .map(|e| (e.u.index(), e.v.index()))
        .collect();
    let mut batches = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut batch = UpdateBatch::new();
        for _ in 0..per_batch {
            if rng.gen_bool(0.5) || edges.is_empty() {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n - 1);
                if v >= u {
                    v += 1;
                }
                let w = rng.gen_range(0.5..12.0);
                batch = batch.insert(VertexId(u), VertexId(v), w);
                edges.push((u, v));
            } else {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                batch = batch.delete(VertexId(u), VertexId(v));
            }
        }
        batches.push(batch);
    }
    batches
}

/// The held-out read-only workload both runs answer at the end.
fn held_out_queries(n: usize) -> Vec<greedy_spanner::Query> {
    QueryWorkload::zipf(n, 1.1)
        .expect("valid skew")
        .queries(96)
        .seed(777)
        .generate()
}

#[test]
fn killed_and_recovered_run_answers_bit_identically_to_uninterrupted() {
    let mut rng = SmallRng::seed_from_u64(31);
    let g = erdos_renyi_connected(24, 0.35, 1.0..10.0, &mut rng);
    let batches = update_stream(&g, 12, 6, 0xFEED);
    let kill_after = 5;
    let queries = held_out_queries(24);

    for threads in THREAD_COUNTS {
        // The uninterrupted twin: never touches disk.
        let mut uninterrupted = live_for(&g, 2.0, threads);
        for batch in &batches {
            uninterrupted.apply(batch).expect("valid batch");
        }

        // The victim: persists, applies a prefix, is killed (dropped).
        let dir = fresh_dir(&format!("kill-restart-{threads}"));
        {
            let mut victim = live_for(&g, 2.0, threads);
            victim.persist_to(&dir).expect("fresh store");
            for batch in &batches[..kill_after] {
                victim.apply(batch).expect("valid batch");
            }
            // Killed here: no checkpoint, no detach — the WAL is the only
            // record of the applied prefix.
        }

        // Restart: recover and apply the remainder of the stream.
        let recovered = LiveSpanner::recover(&dir).expect("store recovers");
        assert_eq!(
            recovered.report.batches_replayed + recovered.report.snapshot_seq,
            kill_after as u64,
            "snapshot + replay must cover exactly the applied prefix"
        );
        let mut revived = recovered.live.with_threads(threads);
        for batch in &batches[kill_after..] {
            revived.apply(batch).expect("valid batch");
        }

        // Bit-identical state and statistics...
        assert_eq!(
            revived.spanner().to_weighted_graph(),
            uninterrupted.spanner().to_weighted_graph(),
            "threads {threads}: spanner diverged"
        );
        assert_eq!(
            revived.original().to_weighted_graph(),
            uninterrupted.original().to_weighted_graph(),
            "threads {threads}: original diverged"
        );
        assert_eq!(revived.epoch(), uninterrupted.epoch());
        let (r, u) = (revived.stats(), uninterrupted.stats());
        assert_eq!(
            (r.batches, r.admitted, r.rejected, r.repaired, r.compactions),
            (u.batches, u.admitted, u.rejected, u.repaired, u.compactions),
            "threads {threads}: history counters diverged"
        );
        assert_eq!(
            r.certified_stretch.to_bits(),
            u.certified_stretch.to_bits(),
            "threads {threads}: stretch certificate diverged"
        );

        // ... and bit-identical served answers on the held-out batch.
        let mut revived_server = revived.serve().threads(threads).finish();
        let mut reference_server = uninterrupted.serve().threads(threads).finish();
        let got = revived_server.answer_batch(&queries).expect("valid batch");
        let expected = reference_server
            .answer_batch(&queries)
            .expect("valid batch");
        assert_eq!(got, expected, "threads {threads}: served answers diverged");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Churn far past the original size: compaction must keep the ground-truth
/// arrays within a constant factor of the live count, snapshots must be
/// written at compactions, and recovery from that churned store must be
/// exact.
#[test]
fn churn_is_bounded_by_compaction_and_recovers_exactly() {
    let g = WeightedGraph::from_edges(16, (1..16).map(|v| (v - 1, v, 1.0))).unwrap();
    let dir = fresh_dir("bounded-churn");
    let mut live = live_for(&g, 2.0, 2);
    live.persist_to(&dir).expect("fresh store");

    // 30 rounds of insert-8 / delete-8: ~240 slots of churn over a graph
    // that keeps only ~15 live edges.
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..30 {
        let mut pairs = Vec::new();
        let mut insert = UpdateBatch::new();
        for _ in 0..8 {
            let u = rng.gen_range(0..16);
            let mut v = rng.gen_range(0..15);
            if v >= u {
                v += 1;
            }
            let w = rng.gen_range(0.2..4.0);
            insert = insert.insert(VertexId(u), VertexId(v), w);
            pairs.push((u, v));
        }
        live.apply(&insert).expect("valid batch");
        let mut delete = UpdateBatch::new();
        for (u, v) in pairs {
            delete = delete.delete(VertexId(u), VertexId(v));
        }
        live.apply(&delete).expect("valid batch");
    }

    let stats = live.stats();
    assert!(
        stats.compactions > 0,
        "the churn never crossed the compaction threshold"
    );
    assert!(
        stats.snapshots_written > 1,
        "compactions must write snapshots (got {})",
        stats.snapshots_written
    );
    assert_eq!(stats.snapshot_failures, 0);
    for (graph, label) in [(live.original(), "original"), (live.spanner(), "spanner")] {
        let live_count = graph.live_edges().count();
        let bound = 3 * live_count + 3 * COMPACTION_MIN_DEAD;
        assert!(
            graph.edge_id_bound() <= bound,
            "{label}: {} slots for {live_count} live edges (bound {bound})",
            graph.edge_id_bound()
        );
    }

    // The store holds several generations; recovery must still be exact
    // (and must start from a compaction snapshot, not the initial one).
    let recovered = LiveSpanner::recover(&dir).expect("store recovers");
    assert!(
        recovered.report.snapshot_seq > 0,
        "recovery should start from a compaction-written snapshot"
    );
    assert_eq!(
        recovered.live.spanner().to_weighted_graph(),
        live.spanner().to_weighted_graph()
    );
    assert_eq!(
        recovered.live.original().to_weighted_graph(),
        live.original().to_weighted_graph()
    );
    assert_eq!(recovered.live.epoch(), live.epoch());
    assert_eq!(recovered.live.stats().batches, live.stats().batches);
    assert_eq!(recovered.live.stats().compactions, live.stats().compactions);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An explicit checkpoint into the store directory shortens replay: only
/// records past its cursor are reapplied.
#[test]
fn checkpoints_shorten_replay() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = erdos_renyi_connected(18, 0.35, 1.0..8.0, &mut rng);
    let batches = update_stream(&g, 8, 5, 0xC0FFEE);
    let dir = fresh_dir("checkpointed");

    let mut live = live_for(&g, 2.0, 1);
    live.persist_to(&dir).expect("fresh store");
    for batch in &batches[..6] {
        live.apply(batch).expect("valid batch");
    }
    let name = spanner_store::snapshot_file_name(live.stats().batches, live.epoch());
    live.checkpoint(&dir.join(name)).expect("checkpoint");
    for batch in &batches[6..] {
        live.apply(batch).expect("valid batch");
    }

    let recovered = LiveSpanner::recover(&dir).expect("store recovers");
    assert_eq!(recovered.report.snapshot_seq, 6, "starts at the checkpoint");
    assert_eq!(recovered.report.batches_replayed, 2);
    assert_eq!(
        recovered.live.spanner().to_weighted_graph(),
        live.spanner().to_weighted_graph()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
