//! Property tests pinning the bucket-queue frontier (and the landmark-pruned
//! search) to the binary heap and to the reference free functions: every
//! queue the engine can select must produce **bit-identical** distances,
//! paths, balls, and tie-breaks — on Erdős–Rényi, dense, and
//! high-weight-spread graphs, including graphs with tombstoned edges and
//! live overlay insertions.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::dijkstra::{ball, bounded_distance};
use spanner_graph::{
    CsrGraph, DijkstraEngine, EdgeId, Landmarks, QueuePolicy, VertexId, WeightedGraph,
};

/// Graph families whose weight distributions stress the bucket-width rule
/// differently: sparse ER (mixed bucket occupancy), dense (many
/// equal-bucket entries), and high-spread (weights across three orders of
/// magnitude, so the mean-derived width is far from the min).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..28, 0u64..1000, 0usize..3).prop_map(|(n, seed, family)| {
        let mut rng = SmallRng::seed_from_u64(seed ^ (family as u64) << 32);
        let (p, lo, hi) = match family {
            0 => (0.15, 0.5, 6.0),   // ER
            1 => (0.6, 1.0, 2.0),    // dense, narrow weights
            _ => (0.25, 0.01, 10.0), // high weight spread
        };
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(lo..hi));
                }
            }
        }
        g
    })
}

/// One engine per queue policy, both pre-sized so the zero-allocation
/// contract is co-tested for free.
fn engine_pair(n: usize, m: usize) -> (DijkstraEngine, DijkstraEngine) {
    let mut heap = DijkstraEngine::with_capacity_for(n, m);
    heap.set_queue_policy(QueuePolicy::Heap);
    let auto = DijkstraEngine::with_capacity_for(n, m);
    (heap, auto)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bounded distances: heap, bucket (`Auto`), and the reference free
    /// function agree exactly for arbitrary (source, target, bound) triples.
    #[test]
    fn bounded_distances_agree_across_queues(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..20.0);
            let via_heap = heap.bounded_distance(&csr, s, t, bound);
            let via_bucket = auto.bounded_distance(&csr, s, t, bound);
            prop_assert_eq!(via_heap, via_bucket, "s={} t={} bound={}", s, t, bound);
            prop_assert_eq!(via_heap, bounded_distance(&g, s, t, bound));
        }
        prop_assert_eq!(heap.stats().reuse_hits, heap.stats().queries);
        prop_assert_eq!(auto.stats().reuse_hits, auto.stats().queries);
    }

    /// Balls: membership AND order (including every equal-distance
    /// tie-break) are identical across queue policies and match the
    /// reference. This is the satellite tie-handling property: equal
    /// distances settle in ascending vertex-id order no matter which
    /// frontier ran the search.
    #[test]
    fn balls_and_ties_agree_across_queues(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            let s = VertexId(rng.gen_range(0..n));
            let radius = rng.gen_range(0.0..15.0);
            let via_heap = heap.ball(&csr, s, radius).to_vec();
            let via_bucket = auto.ball(&csr, s, radius).to_vec();
            prop_assert_eq!(&via_heap, &via_bucket, "s={} radius={}", s, radius);
            prop_assert_eq!(&via_heap[..], &ball(&g, s, radius)[..]);
            for w in via_heap.windows(2) {
                prop_assert!(
                    w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                    "ties must be in ascending vertex-id order"
                );
            }
        }
    }

    /// Unit-weight graphs maximize exact distance ties (every vertex at hop
    /// distance d ties); ball order and k-nearest truncation must still be
    /// identical across queues.
    #[test]
    fn unit_weight_tie_storms_are_deterministic(n in 3usize..24, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.4) {
                    g.add_edge(VertexId(u), VertexId(v), 1.0);
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let s = VertexId(rng.gen_range(0..n));
        let heap_ball = heap.ball(&csr, s, n as f64).to_vec();
        let auto_ball = auto.ball(&csr, s, n as f64).to_vec();
        prop_assert_eq!(&heap_ball, &auto_ball);
        // k_nearest truncation at a tie boundary picks the same vertices.
        let tree = heap.shortest_path_tree(&csr, s).to_owned_tree();
        for k in 0..=heap_ball.len() {
            prop_assert_eq!(&tree.k_nearest(k)[..], &heap_ball[..k]);
        }
        prop_assert_eq!(tree.members(), &heap_ball[..]);
    }

    /// Shortest-path trees (unbounded, so both policies route to the heap)
    /// and bounded paths agree across policies after the engines have been
    /// through bucket queries — i.e. policy switching mid-stream never
    /// corrupts the workspace.
    #[test]
    fn trees_agree_after_mixed_policy_streams(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Warm both engines with bounded queries first.
        for _ in 0..5 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.1..10.0);
            prop_assert_eq!(
                heap.bounded_distance(&csr, s, t, bound),
                auto.bounded_distance(&csr, s, t, bound)
            );
        }
        let s = VertexId(rng.gen_range(0..n));
        let heap_tree = heap.shortest_path_tree(&csr, s).to_owned_tree();
        let auto_tree = auto.shortest_path_tree(&csr, s).to_owned_tree();
        for v in 0..n {
            prop_assert_eq!(heap_tree.distance(VertexId(v)), auto_tree.distance(VertexId(v)));
            prop_assert_eq!(heap_tree.path_to(VertexId(v)), auto_tree.path_to(VertexId(v)));
        }
    }

    /// Landmark-pruned bounded distances equal unpruned ones for every
    /// (source, target, bound) — on both queue policies.
    #[test]
    fn landmark_pruning_is_answer_invariant(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 3.min(n));
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = if rng.gen_bool(0.15) {
                f64::INFINITY
            } else {
                rng.gen_range(0.0..20.0)
            };
            let plain = heap.bounded_distance(&csr, s, t, bound);
            prop_assert_eq!(
                plain,
                heap.bounded_distance_landmarked(&csr, &lm, s, t, bound),
                "heap+ALT diverged: s={} t={} bound={}", s, t, bound
            );
            prop_assert_eq!(
                plain,
                auto.bounded_distance_landmarked(&csr, &lm, s, t, bound),
                "bucket+ALT diverged: s={} t={} bound={}", s, t, bound
            );
        }
    }

    /// Queues agree while the CSR carries tombstoned edges and overlay
    /// insertions: delete/append churn between query rounds, checking
    /// against a fresh build of the surviving edge set each round.
    #[test]
    fn queues_agree_under_tombstones_and_overlays(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut csr = CsrGraph::from(&g);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges() + 24);
        let mut surviving: Vec<(VertexId, VertexId, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let mut ids: Vec<usize> = (0..g.num_edges()).collect();
        let mut next_weight = 0.13f64;
        for step in 0..16 {
            if step % 2 == 0 && !ids.is_empty() {
                let pick = rng.gen_range(0..ids.len());
                let id = ids.swap_remove(pick);
                surviving.swap_remove(pick);
                csr.remove_edge(EdgeId(id)).unwrap();
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n.max(2) - 1);
                if v >= u { v += 1; }
                next_weight += 0.41;
                let id = csr.append_edge(VertexId(u), VertexId(v), next_weight);
                ids.push(id.index());
                surviving.push((VertexId(u), VertexId(v), next_weight));
            }
            let reference = {
                let mut fresh = WeightedGraph::new(n);
                for &(u, v, w) in &surviving {
                    fresh.add_edge(u, v, w);
                }
                fresh
            };
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..25.0);
            let via_heap = heap.bounded_distance(&csr, s, t, bound);
            prop_assert_eq!(via_heap, auto.bounded_distance(&csr, s, t, bound),
                "step {}: queue divergence under churn", step);
            prop_assert_eq!(via_heap, bounded_distance(&reference, s, t, bound),
                "step {}: engine diverged from fresh rebuild", step);
            let radius = rng.gen_range(0.0..12.0);
            prop_assert_eq!(
                heap.ball(&csr, s, radius).to_vec(),
                auto.ball(&csr, s, radius).to_vec(),
                "step {}: ball divergence under churn", step
            );
        }
    }

    /// Reordering the CSR relabels answers but never changes them: a query
    /// in external-id space answered through the permutation equals the
    /// query on the original layout, under both queue policies.
    #[test]
    fn reorder_is_answer_preserving_across_queues(g in arb_graph(), seed in 0u64..500) {
        use spanner_graph::VertexPerm;
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let perm = VertexPerm::degree_sorted(&csr);
        let reordered = csr.reorder(&perm);
        let (mut heap, mut auto) = engine_pair(n, g.num_edges());
        let mut reordered_engine = DijkstraEngine::with_capacity_for(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..12 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..20.0);
            let original = heap.bounded_distance(&csr, s, t, bound);
            prop_assert_eq!(original, auto.bounded_distance(&csr, s, t, bound));
            let translated = reordered_engine.bounded_distance(
                &reordered,
                perm.to_internal(s),
                perm.to_internal(t),
                bound,
            );
            prop_assert_eq!(original, translated, "reorder changed an answer");
        }
    }
}
