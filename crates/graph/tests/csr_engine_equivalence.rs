//! Property tests pinning the CSR query substrate to the legacy free
//! functions: on random seeded graphs, [`DijkstraEngine`] over a [`CsrGraph`]
//! must return exactly the same distances, paths and ball memberships as the
//! allocation-per-query reference implementations in `spanner_graph::dijkstra`
//! — including mid-growth, when part of the CSR still lives in its overflow
//! chains.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::dijkstra::{ball, bounded_distance, shortest_path_distance, shortest_path_tree};
use spanner_graph::{CsrGraph, DijkstraEngine, VertexId, WeightedGraph};

/// Strategy: a random weighted graph (possibly disconnected, with parallel
/// edges) described by (n, seed, density).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..30, 0u64..1000, 1usize..7).prop_map(|(n, seed, density)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = density as f64 * 0.1;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.1..8.0));
                    // Occasional parallel edge — the substrate must not
                    // assume simple graphs.
                    if rng.gen_bool(0.05) {
                        g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.1..8.0));
                    }
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounded distances agree with the legacy free function for arbitrary
    /// (source, target, bound) triples.
    #[test]
    fn bounded_distance_matches_legacy(g in arb_graph(), queries in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::with_capacity_for(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(queries);
        for _ in 0..25 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..20.0);
            let via_engine = engine.bounded_distance(&csr, s, t, bound);
            let via_legacy = bounded_distance(&g, s, t, bound);
            prop_assert_eq!(via_engine, via_legacy, "s={} t={} bound={}", s, t, bound);
        }
        // Pre-sized engine: every query must have reused the workspace.
        prop_assert_eq!(engine.stats().reuse_hits, engine.stats().queries);
    }

    /// Full shortest-path trees agree: same distances everywhere, and paths
    /// with identical endpoints and total weight.
    #[test]
    fn tree_distances_and_paths_match_legacy(g in arb_graph()) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::with_capacity_for(n, g.num_edges());
        for s in 0..n {
            let legacy = shortest_path_tree(&g, VertexId(s));
            let tree = engine.shortest_path_tree(&csr, VertexId(s));
            for v in 0..n {
                prop_assert_eq!(tree.distance(VertexId(v)), legacy.distance(VertexId(v)));
                let (p_engine, p_legacy) =
                    (tree.path_to(VertexId(v)), legacy.path_to(VertexId(v)));
                prop_assert_eq!(p_engine.is_some(), p_legacy.is_some());
                if let Some(p) = p_engine {
                    // Ties can be broken differently mid-path; endpoints and
                    // realized distance must agree.
                    prop_assert_eq!(p.first(), Some(&VertexId(s)));
                    prop_assert_eq!(p.last(), Some(&VertexId(v)));
                    let d = shortest_path_distance(&g, VertexId(s), VertexId(v)).unwrap();
                    prop_assert!((tree.distance(VertexId(v)).unwrap() - d).abs() < 1e-9);
                }
            }
        }
    }

    /// Ball membership (and its (distance, vertex) ordering) agrees with the
    /// legacy free function.
    #[test]
    fn ball_membership_matches_legacy(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::with_capacity_for(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..10 {
            let s = VertexId(rng.gen_range(0..n));
            let radius = rng.gen_range(0.0..15.0);
            let legacy = ball(&g, s, radius);
            let via_engine = engine.ball(&csr, s, radius);
            prop_assert_eq!(via_engine, &legacy[..], "s={} radius={}", s, radius);
        }
    }

    /// Queries against an incrementally grown CSR (overflow chains, periodic
    /// re-packs) match queries against the equivalently grown WeightedGraph
    /// at every growth step.
    #[test]
    fn incremental_appends_match_legacy(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut grown = WeightedGraph::new(n);
        let mut csr = CsrGraph::new(n);
        let mut engine = DijkstraEngine::with_capacity_for(n, g.num_edges());
        for e in g.edges() {
            grown.add_edge(e.u, e.v, e.weight);
            csr.append_edge(e.u, e.v, e.weight);
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..20.0);
            prop_assert_eq!(
                engine.bounded_distance(&csr, s, t, bound),
                bounded_distance(&grown, s, t, bound)
            );
        }
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        // Growth never allocated per query either: the engine was sized for
        // the final edge count up front.
        prop_assert_eq!(engine.stats().reuse_hits, engine.stats().queries);
    }

    /// Queries against a CSR with interleaved appends *and* deletions match
    /// queries against a fresh build of the surviving edge set — while
    /// tombstones linger in the packed arrays and across consolidations.
    #[test]
    fn interleaved_deletions_match_a_fresh_build(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        let mut surviving: Vec<(VertexId, VertexId, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let mut ids: Vec<usize> = (0..g.num_edges()).collect();
        let mut next_weight = 0.11f64;
        for step in 0..20 {
            // Alternate deletions of random live edges with fresh appends.
            if step % 2 == 0 && !ids.is_empty() {
                let pick = rng.gen_range(0..ids.len());
                let id = ids.swap_remove(pick);
                // `surviving` is kept parallel to `ids` by construction.
                surviving.swap_remove(pick);
                csr.remove_edge(spanner_graph::EdgeId(id)).unwrap();
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n.max(2) - 1);
                if v >= u { v += 1; }
                next_weight += 0.37;
                let id = csr.append_edge(VertexId(u), VertexId(v), next_weight);
                ids.push(id.index());
                surviving.push((VertexId(u), VertexId(v), next_weight));
            }
            let reference = {
                let mut fresh = WeightedGraph::new(n);
                for &(u, v, w) in &surviving {
                    fresh.add_edge(u, v, w);
                }
                fresh
            };
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..25.0);
            prop_assert_eq!(
                engine.bounded_distance(&csr, s, t, bound),
                bounded_distance(&reference, s, t, bound),
                "step {}: s={} t={} bound={}", step, s, t, bound
            );
            prop_assert_eq!(csr.num_edges(), surviving.len());
        }
    }
}
