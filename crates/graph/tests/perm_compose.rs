//! Property tests for [`VertexPerm`] composition: chained renumberings
//! (shard-local mapping ∘ compaction remap ∘ serving relayout) must collapse
//! into a single translation table that agrees with applying the stages one
//! by one, and inverses must round-trip to the identity.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::{CsrGraph, VertexId, VertexPerm, WeightedGraph};

/// A uniformly random permutation over `n` vertices (seeded Fisher–Yates).
fn random_perm(n: usize, seed: u64) -> VertexPerm {
    let mut order: Vec<VertexId> = (0..n).map(VertexId).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    VertexPerm::from_order(&order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `compose` agrees with applying the two stages in sequence, in both
    /// directions, for every vertex.
    #[test]
    fn compose_matches_staged_translation(n in 1usize..40, s1 in 0u64..500, s2 in 0u64..500) {
        let a = random_perm(n, s1);
        let b = random_perm(n, s2);
        let ab = a.compose(&b);
        for v in (0..n).map(VertexId) {
            prop_assert_eq!(ab.to_internal(v), b.to_internal(a.to_internal(v)));
            prop_assert_eq!(ab.to_external(v), a.to_external(b.to_external(v)));
        }
    }

    /// A permutation composed with its inverse is the identity, both ways.
    #[test]
    fn inverse_round_trips(n in 1usize..40, seed in 0u64..500) {
        let p = random_perm(n, seed);
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
        for v in (0..n).map(VertexId) {
            prop_assert_eq!(p.inverse().to_internal(v), p.to_external(v));
        }
    }

    /// Identity is a two-sided unit for `compose`.
    #[test]
    fn identity_is_a_unit(n in 1usize..40, seed in 0u64..500) {
        let p = random_perm(n, seed);
        let id = VertexPerm::identity(n);
        prop_assert_eq!(p.compose(&id), p.clone());
        prop_assert_eq!(id.compose(&p), p);
    }

    /// Reordering a graph through `a.compose(&b)` equals reordering through
    /// `a` then `b` — the collapsed table is a drop-in for the pipeline.
    #[test]
    fn composed_reorder_matches_staged_reorder(n in 2usize..24, gs in 0u64..300, s1 in 0u64..300, s2 in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(gs);
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..5.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let a = random_perm(n, s1);
        let b = random_perm(n, s2);
        let staged = csr.reorder(&a).reorder(&b);
        let collapsed = csr.reorder(&a.compose(&b));
        prop_assert_eq!(staged.num_edges(), collapsed.num_edges());
        for v in (0..n).map(VertexId) {
            let sn: Vec<_> = staged.neighbors(v).collect();
            let cn: Vec<_> = collapsed.neighbors(v).collect();
            prop_assert_eq!(sn, cn);
        }
    }
}
