//! Property tests pinning the batched gather → relax kernel to the scalar
//! reference across the full configuration grid the engine can run:
//! `RelaxKernel` × `QueuePolicy` × CSR layout (original vs degree-sorted
//! relayout) × landmarks (none vs ALT pruning) — distances, paths, balls,
//! settle order, and the search counters must be **bit-identical** in every
//! cell, including graphs with tombstoned edges and live overlay
//! insertions.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::dijkstra::bounded_distance;
use spanner_graph::{
    CsrGraph, DijkstraEngine, EdgeId, EngineStats, KernelStats, Landmarks, QueuePolicy,
    RelaxKernel, VertexId, VertexPerm, WeightedGraph,
};

/// The same graph families as the queue-equivalence suite: sparse ER,
/// dense narrow-weight (long rows — the batched kernel's sweet spot), and
/// high weight spread (degenerate cohort slack vs the mean-derived bucket
/// width).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..28, 0u64..1000, 0usize..3).prop_map(|(n, seed, family)| {
        let mut rng = SmallRng::seed_from_u64(seed ^ (family as u64) << 32);
        let (p, lo, hi) = match family {
            0 => (0.15, 0.5, 6.0),   // ER
            1 => (0.6, 1.0, 2.0),    // dense, narrow weights
            _ => (0.25, 0.01, 10.0), // high weight spread
        };
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(lo..hi));
                }
            }
        }
        g
    })
}

/// One pre-sized engine per `(kernel, queue)` grid cell, scalar/heap first
/// (the reference). Pre-sizing co-tests the zero-allocation contract of the
/// gather scratch for free.
fn grid_engines(n: usize, m: usize) -> Vec<(RelaxKernel, QueuePolicy, DijkstraEngine)> {
    let mut engines = Vec::new();
    for kernel in [RelaxKernel::Scalar, RelaxKernel::Batched, RelaxKernel::Auto] {
        for queue in [QueuePolicy::Heap, QueuePolicy::Auto] {
            let mut e = DijkstraEngine::with_capacity_for(n, m);
            e.set_relax_kernel(kernel);
            e.set_queue_policy(queue);
            engines.push((kernel, queue, e));
        }
    }
    engines
}

/// The kernel block is the only counter allowed to differ across kernels.
fn comparable(stats: EngineStats) -> EngineStats {
    EngineStats {
        kernel: KernelStats::default(),
        ..stats
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Bounded distances and balls (answers AND settle order) agree across
    /// every grid cell and match the reference free function; search
    /// counters are bit-identical between kernels at a fixed queue policy,
    /// and pre-sized engines never allocate under either kernel.
    #[test]
    fn kernel_grid_agrees_on_distances_and_balls(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let mut engines = grid_engines(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..16 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..20.0);
            let want = bounded_distance(&g, s, t, bound);
            let radius = rng.gen_range(0.0..12.0);
            let mut want_ball: Option<Vec<(VertexId, f64)>> = None;
            for (kernel, queue, e) in engines.iter_mut() {
                prop_assert_eq!(
                    e.bounded_distance(&csr, s, t, bound),
                    want,
                    "case {}: {:?}/{:?} distance diverged", case, kernel, queue
                );
                let got_ball = e.ball(&csr, s, radius).to_vec();
                match &want_ball {
                    None => want_ball = Some(got_ball),
                    Some(w) => prop_assert_eq!(
                        w, &got_ball,
                        "case {}: {:?}/{:?} ball settle order diverged", case, kernel, queue
                    ),
                }
            }
        }
        for queue in [QueuePolicy::Heap, QueuePolicy::Auto] {
            let per_queue: Vec<EngineStats> = engines
                .iter()
                .filter(|(_, q, _)| *q == queue)
                .map(|(_, _, e)| e.stats())
                .collect();
            for s in &per_queue {
                prop_assert_eq!(
                    s.reuse_hits, s.queries,
                    "a pre-sized engine must never allocate ({:?})", queue
                );
                prop_assert!(s.kernel.candidates_committed <= s.kernel.edges_gathered);
            }
            for s in &per_queue[1..] {
                prop_assert_eq!(
                    comparable(per_queue[0]), comparable(*s),
                    "kernels must agree on every search counter ({:?})", queue
                );
            }
        }
    }

    /// Shortest-path trees: distances and full parent chains agree across
    /// the kernel grid (the `TRACK_PARENTS` commit path).
    #[test]
    fn kernel_grid_agrees_on_paths(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let mut engines = grid_engines(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..4 {
            let s = VertexId(rng.gen_range(0..n));
            let reference = {
                let (_, _, e) = &mut engines[0];
                e.shortest_path_tree(&csr, s).to_owned_tree()
            };
            for (kernel, queue, e) in engines.iter_mut().skip(1) {
                let tree = e.shortest_path_tree(&csr, s).to_owned_tree();
                for v in 0..n {
                    prop_assert_eq!(
                        reference.distance(VertexId(v)),
                        tree.distance(VertexId(v)),
                        "{:?}/{:?}: SPT distance diverged", kernel, queue
                    );
                    prop_assert_eq!(
                        reference.path_to(VertexId(v)),
                        tree.path_to(VertexId(v)),
                        "{:?}/{:?}: SPT parent chain diverged", kernel, queue
                    );
                }
            }
        }
    }

    /// ALT pruning composed with the batched kernel (the heuristic rides the
    /// commit filter) stays answer-invariant in every grid cell, on both
    /// the original and the degree-sorted layout.
    #[test]
    fn kernel_grid_agrees_under_landmarks_and_relayout(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_vertices();
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 3.min(n));
        let perm = VertexPerm::degree_sorted(&csr);
        let reordered = csr.reorder(&perm);
        let lm_reordered = Landmarks::build_degree_ranked(&reordered, 3.min(n));
        let mut engines = grid_engines(n, g.num_edges());
        let mut reordered_engines = grid_engines(n, g.num_edges());
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..12 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = if rng.gen_bool(0.15) {
                f64::INFINITY
            } else {
                rng.gen_range(0.0..20.0)
            };
            let want = bounded_distance(&g, s, t, bound);
            for (kernel, queue, e) in engines.iter_mut() {
                prop_assert_eq!(
                    e.bounded_distance_landmarked(&csr, &lm, s, t, bound),
                    want,
                    "case {}: {:?}/{:?}+ALT diverged", case, kernel, queue
                );
            }
            let (si, ti) = (perm.to_internal(s), perm.to_internal(t));
            for (kernel, queue, e) in reordered_engines.iter_mut() {
                prop_assert_eq!(
                    e.bounded_distance_landmarked(&reordered, &lm_reordered, si, ti, bound),
                    want,
                    "case {}: {:?}/{:?}+ALT on relayout diverged", case, kernel, queue
                );
            }
        }
    }

    /// Tombstoned packed rows and overlay overflow chains: the batched
    /// kernel's bitmap gather must agree with the scalar per-edge liveness
    /// path and with a fresh rebuild of the surviving edge set, under
    /// delete/append churn.
    #[test]
    fn kernel_grid_agrees_under_tombstones_and_overflow(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut csr = CsrGraph::from(&g);
        let mut engines = grid_engines(n, g.num_edges() + 24);
        let mut surviving: Vec<(VertexId, VertexId, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let mut ids: Vec<usize> = (0..g.num_edges()).collect();
        let mut next_weight = 0.13f64;
        for step in 0..12 {
            if step % 2 == 0 && !ids.is_empty() {
                let pick = rng.gen_range(0..ids.len());
                let id = ids.swap_remove(pick);
                surviving.swap_remove(pick);
                csr.remove_edge(EdgeId(id)).unwrap();
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n.max(2) - 1);
                if v >= u { v += 1; }
                next_weight += 0.41;
                let id = csr.append_edge(VertexId(u), VertexId(v), next_weight);
                ids.push(id.index());
                surviving.push((VertexId(u), VertexId(v), next_weight));
            }
            let reference = {
                let mut fresh = WeightedGraph::new(n);
                for &(u, v, w) in &surviving {
                    fresh.add_edge(u, v, w);
                }
                fresh
            };
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.0..25.0);
            let want = bounded_distance(&reference, s, t, bound);
            let radius = rng.gen_range(0.0..12.0);
            let mut want_ball: Option<Vec<(VertexId, f64)>> = None;
            for (kernel, queue, e) in engines.iter_mut() {
                prop_assert_eq!(
                    e.bounded_distance(&csr, s, t, bound),
                    want,
                    "step {}: {:?}/{:?} diverged under churn", step, kernel, queue
                );
                let got_ball = e.ball(&csr, s, radius).to_vec();
                match &want_ball {
                    None => want_ball = Some(got_ball),
                    Some(w) => prop_assert_eq!(
                        w, &got_ball,
                        "step {}: {:?}/{:?} ball diverged under churn", step, kernel, queue
                    ),
                }
            }
        }
        // With deletions pending, Auto must have routed through the batched
        // kernel on at least one engine (the bitmap-gather satellite).
        let auto_kernel: u64 = engines
            .iter()
            .filter(|(k, _, _)| *k == RelaxKernel::Auto)
            .map(|(_, _, e)| e.stats().kernel.rows_batched)
            .sum();
        prop_assert!(auto_kernel > 0, "Auto never took the batched path under churn");
    }
}
