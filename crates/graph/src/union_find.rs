//! Disjoint-set forest with union by rank and path compression.

/// A union–find (disjoint-set) structure over dense indices `0..n`.
///
/// Used by Kruskal's MST algorithm and by several generators to control
/// connectivity. Amortized near-constant time per operation.
///
/// # Example
///
/// ```
/// use spanner_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 3));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set, compressing paths.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`.
    ///
    /// Returns `true` if the two were in different sets (i.e. a merge
    /// happened), `false` if they were already connected.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.num_sets(), 5);
        assert!(!uf.is_empty());
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 5));
    }

    #[test]
    fn chain_union_yields_single_set() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_sets(), 1);
        for i in 0..n {
            assert!(uf.connected(0, i));
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = UnionFind::new(8);
        for i in 1..8 {
            uf.union(0, i);
        }
        let root = uf.find(7);
        assert_eq!(uf.find(7), root);
        assert_eq!(uf.find(3), root);
    }
}
