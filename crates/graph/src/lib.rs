//! Weighted-graph substrate for the greedy-spanner reproduction.
//!
//! This crate provides everything the spanner constructions in
//! [`greedy-spanner`](https://example.org/greedy-spanner) need from a graph library:
//!
//! * [`WeightedGraph`] — an undirected, positively-weighted multigraph stored as an
//!   edge list plus adjacency lists, with O(1) edge access by [`EdgeId`].
//! * Shortest paths — [`dijkstra`] (full, single-pair, and distance-bounded variants).
//! * Minimum spanning trees — [`mst`] (Kruskal and Prim) built on [`UnionFind`].
//! * Structural queries — [`connectivity`], [`girth`], [`apsp`], [`metric_closure`].
//! * Workload generation — [`generators`] (random, geometric, grid, cage graphs, the
//!   paper's Figure 1 construction, …).
//! * Aggregate measurements — [`properties`] (weight, degree, lightness).
//!
//! # Example
//!
//! ```
//! use spanner_graph::{GraphBuilder, mst::kruskal, dijkstra::shortest_path_distance};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 2.0);
//! b.add_edge(2, 3, 1.0);
//! b.add_edge(0, 3, 5.0);
//! let g = b.build().expect("valid graph");
//!
//! let tree = kruskal(&g);
//! assert_eq!(tree.edges.len(), 3);
//! let d = shortest_path_distance(&g, 0.into(), 3.into()).unwrap();
//! assert!((d - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod builder;
pub mod connectivity;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod girth;
pub mod graph;
pub mod metric_closure;
pub mod mst;
pub mod properties;
pub mod union_find;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Edge, EdgeId, VertexId, WeightedGraph};
pub use union_find::UnionFind;
