//! Weighted-graph substrate for the greedy-spanner reproduction.
//!
//! This crate provides everything the spanner constructions in
//! [`greedy-spanner`](https://example.org/greedy-spanner) need from a graph library:
//!
//! * [`WeightedGraph`] — an undirected, positively-weighted multigraph stored as an
//!   edge list plus adjacency lists, with O(1) edge access by [`EdgeId`].
//! * [`CsrGraph`] — the compressed-sparse-row *query substrate*: flat
//!   `offsets`/`targets`/`weights` arrays built `From<&WeightedGraph>`,
//!   incrementally appendable ([`csr::CsrGraph::append_edge`]) **and
//!   deletable** ([`csr::CsrGraph::remove_edge`]) through a
//!   [`csr::DeltaOverlay`] of pending mutations (overflow chains +
//!   tombstone bitmap, consolidated on re-pack), so a spanner can grow while
//!   being queried and a long-running one can take live updates. Every
//!   mutation bumps a monotone [`csr::CsrGraph::epoch`]; stale views are
//!   refused with a typed [`error::GraphError::StaleEpoch`]. Under
//!   unbounded insert/delete churn,
//!   [`csr::CsrGraph::rebuild_compacted`] starts a fresh dense *generation*
//!   (ids re-densified behind a bumped epoch, with an id-remap table) so the
//!   ground-truth arrays stay proportional to the live edge count, and
//!   [`csr::CsrGraph::from_parts`] reconstructs a graph bit-identically from
//!   persisted parts.
//! * [`DijkstraEngine`] — a reusable query engine over [`CsrGraph`] with an
//!   owned, generation-stamped workspace: `bounded_distance`,
//!   `shortest_path_tree` and `ball` queries perform **zero heap allocation
//!   per query** after warm-up (see [`engine`]). This is the hot path of every
//!   spanner construction; the [`dijkstra`] free functions remain as one-shot
//!   conveniences.
//! * [`EnginePool`] — the parallel execution substrate: per-worker
//!   [`DijkstraEngine`] workspaces plus a scoped `std::thread` executor that
//!   fans query batches across them against a frozen
//!   [`CsrSnapshot`](csr::CsrSnapshot). Work is partitioned by chunk index,
//!   so results are bit-identical at every worker count (see [`parallel`]).
//! * [`partition`] — deterministic seeded k-way partitioning for the
//!   sharded pipeline: [`Partition::build`](partition::Partition::build)
//!   grows `k` size-balanced regions by synchronized BFS from seed-ranked
//!   roots (`k = 1` is the identity), producing per-shard induced
//!   subgraphs ([`ShardPiece`]) with stable global↔local [`VertexPerm`]
//!   mappings plus the [`CutEdge`] list between shards — the input to
//!   `greedy-spanner`'s boundary-skeleton stitch.
//! * Shortest paths — [`dijkstra`] (full, single-pair, and distance-bounded
//!   variants; allocation-per-call, kept for one-off queries and as the
//!   reference implementation the engine is property-tested against).
//! * Minimum spanning trees — [`mst`] (Kruskal and Prim) built on [`UnionFind`].
//! * Structural queries — [`connectivity`], [`girth`], [`apsp`], [`metric_closure`].
//! * Workload generation — [`generators`] (random, geometric, grid, cage graphs, the
//!   paper's Figure 1 construction, …).
//! * Aggregate measurements — [`properties`] (weight, degree, lightness).
//!
//! # Example
//!
//! ```
//! use spanner_graph::{GraphBuilder, mst::kruskal, dijkstra::shortest_path_distance};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 2.0);
//! b.add_edge(2, 3, 1.0);
//! b.add_edge(0, 3, 5.0);
//! let g = b.build().expect("valid graph");
//!
//! let tree = kruskal(&g);
//! assert_eq!(tree.edges.len(), 3);
//! let d = shortest_path_distance(&g, 0.into(), 3.into()).unwrap();
//! assert!((d - 4.0).abs() < 1e-9);
//! ```
//!
//! For repeated queries (every spanner construction), hold a [`CsrGraph`]
//! and one [`DijkstraEngine`] instead of calling the free functions in a
//! loop:
//!
//! ```
//! use spanner_graph::{CsrGraph, DijkstraEngine, VertexId, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]).unwrap();
//! let csr = CsrGraph::from(&g);
//! let mut engine = DijkstraEngine::new();
//! for v in 1..4 {
//!     let _ = engine.bounded_distance(&csr, VertexId(0), VertexId(v), 10.0);
//! }
//! // Everything after the first query reused the workspace: zero allocations.
//! assert_eq!(engine.stats().reuse_hits, engine.stats().queries - 1);
//! ```
//!
//! # Query engine internals
//!
//! Three cooperating accelerations keep the point-query hot path fast while
//! preserving bit-identical answers:
//!
//! * **Queue selection** ([`QueuePolicy`]): under the default `Auto` policy a
//!   bounded query runs on a bucket queue ([`bucket_queue`]) whenever the
//!   bound is finite and positive and the graph's live-weight statistics
//!   yield a usable bucket width; unbounded and degenerate queries fall back
//!   to the binary heap. Both queues pop in exact `(distance, vertex)`
//!   order, so distances, paths, balls, and every tie-break are bit-identical
//!   across policies.
//! * **Cache-conscious relayout** ([`VertexPerm`],
//!   [`csr::CsrGraph::reorder`]): vertices can be renumbered (the serving
//!   layer uses descending live degree at freeze time) so hot adjacency rows
//!   cluster at the front of the CSR arrays. The permutation is kept
//!   alongside the reordered graph and external ids are translated at the
//!   API boundary — answers stay bit-identical in external-id space.
//! * **Landmark (ALT) pruning** ([`Landmarks`]): max-over-landmarks triangle
//!   lower bounds let a bounded point-to-point search skip vertices that
//!   provably cannot lie on a within-bound path to the target. Pruning never
//!   reorders the queue (keys stay plain distances), so answers are
//!   identical for *every* landmark set — including none. Tables are
//!   epoch-stamped ([`csr::CsrGraph::epoch`]) and must be rebuilt after any
//!   mutation; the engine refuses stale tables.
//! * **Batched relax kernel** ([`RelaxKernel`]): instead of one dependent
//!   random-access `dist`/`state` load per half-edge, the engine can drain a
//!   whole same-cohort group of queue entries (every entry whose key is
//!   strictly below `popped key + min live weight` — provably settleable in
//!   one pass), stage their packed adjacency rows (clean rows borrowed in
//!   place, dirty rows compacted into scratch lanes against the raw
//!   liveness bitmap), software-pipeline the commit pass — edge lines
//!   prefetched a few rows ahead, `state` lanes primed ahead of the filter —
//!   branchlessly compact the surviving candidates into a commit buffer and
//!   only then relax them. Under the default `Auto` policy the batched
//!   kernel runs when rows are long enough to amortize staging (mean degree
//!   ≥ 3) or deletions are pending (the bitmap gather beats per-edge
//!   liveness calls); every answer, settle order and counter stays
//!   bit-identical to the scalar reference path.

// `deny` rather than `forbid`: the batched relax kernel's bounds-checked
// `_mm_prefetch` helper in `engine` carries the crate's only `unsafe` block
// behind a targeted `allow` (prefetching cannot fault or write — it only
// warms the cache).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod bucket_queue;
pub mod builder;
pub mod connectivity;
pub mod csr;
pub mod dijkstra;
pub mod engine;
pub mod error;
pub mod generators;
pub mod girth;
pub mod graph;
pub mod landmarks;
pub mod metric_closure;
pub mod mst;
pub mod parallel;
pub mod partition;
pub mod properties;
pub mod union_find;

pub use builder::GraphBuilder;
pub use csr::{CompactedRebuild, CsrGraph, CsrSnapshot, DeltaOverlay, VertexPerm};
pub use engine::{
    DijkstraEngine, EngineStats, EngineTree, KernelStats, QueuePolicy, RelaxKernel, SptTree,
};
pub use error::GraphError;
pub use graph::{Edge, EdgeId, VertexId, WeightedGraph};
pub use landmarks::Landmarks;
pub use parallel::{EnginePool, PoolPermit};
pub use partition::{CutEdge, Partition, PartitionConfig, ShardPiece};
pub use union_find::UnionFind;
