//! Deterministic, seeded k-way vertex partitioning for the sharded
//! spanner pipeline.
//!
//! [`Partition::build`] cuts a [`WeightedGraph`] into `k` shards by growing
//! BFS regions from *seed-ranked roots*: every vertex is ranked by a
//! splitmix-style hash of `(seed, vertex)`, the `k` smallest ranks become
//! region roots, and the regions claim unassigned neighbors in synchronized
//! rounds (shard 0 first within each round) until a size-balance cap stops
//! them. Vertices left unreached (other components, or everything capped
//! out) are swept in ascending id order onto the currently smallest shard,
//! so the partition always covers the whole vertex set.
//!
//! The result is everything the sharded build needs:
//!
//! * per-shard **induced subgraphs** in shard-local id space, where local
//!   ids enumerate each shard's vertices in ascending *global* order — so a
//!   single-shard partition is the identity mapping and the shard-0 build
//!   is bit-identical to an unsharded build;
//! * the **cut-edge list** (edges whose endpoints land in different
//!   shards), in the input graph's edge order;
//! * a global↔local **id mapping** exposed both as per-shard lookup tables
//!   and as one [`VertexPerm`] over the concatenated shard order, so the
//!   shard mapping composes with downstream relayouts via
//!   [`VertexPerm::compose`].
//!
//! Everything is a pure function of `(graph, shards, seed, balance)`: no
//! RNG state, no iteration-order dependence on hashing, no thread count
//! anywhere. The same inputs produce the same partition on every run.

use crate::csr::VertexPerm;
use crate::error::GraphError;
use crate::graph::{VertexId, WeightedGraph};

/// Default size-balance cap multiplier: a shard may BFS-claim at most
/// `ceil(n/k) * DEFAULT_BALANCE` vertices.
pub const DEFAULT_BALANCE: f64 = 1.2;

/// Tuning knobs for [`Partition::build`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Requested shard count; clamped to `1..=n`.
    pub shards: usize,
    /// Seed for the root-ranking hash. Different seeds grow regions from
    /// different roots; the same seed always yields the same partition.
    pub seed: u64,
    /// Size-balance cap multiplier (`>= 1.0`); values below `1.0` are
    /// treated as `1.0`. The BFS growth of a shard stops once it holds
    /// `ceil(n/k) * balance` vertices.
    pub balance: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            shards: 1,
            seed: 0,
            balance: DEFAULT_BALANCE,
        }
    }
}

/// One shard of a [`Partition`]: the induced subgraph in local id space
/// plus the local→global vertex table.
#[derive(Debug, Clone)]
pub struct ShardPiece {
    graph: WeightedGraph,
    vertices: Vec<VertexId>,
    boundary: Vec<VertexId>,
}

impl ShardPiece {
    /// The induced subgraph over this shard's vertices, in local ids.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Local→global vertex table: `vertices()[local.index()]` is the global
    /// id. Always sorted in ascending global order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Local ids of this shard's boundary vertices (endpoints of at least
    /// one cut edge), ascending.
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Number of vertices in this shard.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }
}

/// An edge of the input graph whose endpoints fell into different shards.
/// Endpoints are **global** vertex ids; cut edges are listed in the input
/// graph's edge order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// One endpoint (global id).
    pub u: VertexId,
    /// The other endpoint (global id).
    pub v: VertexId,
    /// Edge weight.
    pub weight: f64,
}

/// A deterministic k-way partition of a [`WeightedGraph`]. See the
/// [module docs](self) for the construction.
#[derive(Debug, Clone)]
pub struct Partition {
    assignment: Vec<u32>,
    offsets: Vec<usize>,
    perm: VertexPerm,
    shards: Vec<ShardPiece>,
    cut_edges: Vec<CutEdge>,
    seed: u64,
    balance_cap: usize,
}

/// Splitmix64 finalizer: the per-vertex ranking hash. Chosen over an RNG so
/// root selection is a pure function of `(seed, vertex)` with no state.
fn rank_hash(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Partition {
    /// Partitions `graph` into `config.shards` BFS-grown regions.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `graph` has no vertices.
    pub fn build(graph: &WeightedGraph, config: &PartitionConfig) -> Result<Partition, GraphError> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let k = config.shards.clamp(1, n);
        let balance = if config.balance < 1.0 {
            1.0
        } else {
            config.balance
        };
        let cap = ((n.div_ceil(k) as f64) * balance).ceil() as usize;
        let cap = cap.max(1);

        // Seed-ranked roots: the k vertices with the smallest hash ranks,
        // ties broken by id. Sorting (rank, id) pairs keeps this a pure
        // function of (seed, n).
        let mut ranked: Vec<(u64, u32)> = (0..n as u32)
            .map(|v| (rank_hash(config.seed, v as u64), v))
            .collect();
        ranked.sort_unstable();

        const UNASSIGNED: u32 = u32::MAX;
        let mut assignment = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; k];
        let mut frontiers: Vec<Vec<u32>> = Vec::with_capacity(k);
        for (s, &(_, root)) in ranked.iter().take(k).enumerate() {
            assignment[root as usize] = s as u32;
            sizes[s] = 1;
            frontiers.push(vec![root]);
        }

        // Synchronized BFS rounds: within a round, shard 0 expands first.
        // Each shard claims unassigned neighbors of its current frontier
        // until it hits the balance cap.
        loop {
            let mut progressed = false;
            for (s, frontier) in frontiers.iter_mut().enumerate() {
                if frontier.is_empty() {
                    continue;
                }
                let mut next = Vec::new();
                for &u in frontier.iter() {
                    for &(nbr, _) in graph.neighbors(VertexId(u as usize)) {
                        if sizes[s] >= cap {
                            break;
                        }
                        let ni = nbr.index();
                        if assignment[ni] == UNASSIGNED {
                            assignment[ni] = s as u32;
                            sizes[s] += 1;
                            next.push(ni as u32);
                        }
                    }
                    if sizes[s] >= cap {
                        break;
                    }
                }
                progressed |= !next.is_empty();
                *frontier = next;
            }
            if !progressed {
                break;
            }
        }

        // Sweep unreached vertices (other components or capped-out growth)
        // onto the smallest shard, ascending id order so the fill is
        // deterministic and keeps sizes balanced.
        for slot in assignment.iter_mut() {
            if *slot == UNASSIGNED {
                let target = (0..k).min_by_key(|&s| (sizes[s], s)).unwrap_or(0);
                *slot = target as u32;
                sizes[target] += 1;
            }
        }

        // Shard vertex tables: ascending global order within each shard, so
        // local ids are order-preserving and k=1 is the identity mapping.
        let mut vertex_tables: Vec<Vec<VertexId>> =
            (0..k).map(|s| Vec::with_capacity(sizes[s])).collect();
        let mut local_of = vec![0u32; n];
        for v in 0..n {
            let s = assignment[v] as usize;
            local_of[v] = vertex_tables[s].len() as u32;
            vertex_tables[s].push(VertexId(v));
        }

        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        for table in &vertex_tables {
            offsets.push(offsets.last().unwrap() + table.len());
        }
        let order: Vec<VertexId> = vertex_tables
            .iter()
            .flat_map(|table| table.iter().copied())
            .collect();
        let perm = VertexPerm::from_order(&order);

        // Induced subgraphs + cut edges, both in input edge order.
        let mut shard_graphs: Vec<WeightedGraph> = vertex_tables
            .iter()
            .map(|table| WeightedGraph::new(table.len()))
            .collect();
        let mut cut_edges = Vec::new();
        let mut boundary_flags: Vec<Vec<bool>> =
            vertex_tables.iter().map(|t| vec![false; t.len()]).collect();
        for e in graph.edges() {
            let (ui, vi) = (e.u.index(), e.v.index());
            let (su, sv) = (assignment[ui] as usize, assignment[vi] as usize);
            if su == sv {
                shard_graphs[su].add_edge(
                    VertexId(local_of[ui] as usize),
                    VertexId(local_of[vi] as usize),
                    e.weight,
                );
            } else {
                boundary_flags[su][local_of[ui] as usize] = true;
                boundary_flags[sv][local_of[vi] as usize] = true;
                cut_edges.push(CutEdge {
                    u: e.u,
                    v: e.v,
                    weight: e.weight,
                });
            }
        }

        let shards = vertex_tables
            .into_iter()
            .zip(shard_graphs)
            .zip(boundary_flags)
            .map(|((vertices, graph), flags)| {
                let boundary = flags
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| VertexId(i))
                    .collect();
                ShardPiece {
                    graph,
                    vertices,
                    boundary,
                }
            })
            .collect();

        Ok(Partition {
            assignment,
            offsets,
            perm,
            shards,
            cut_edges,
            seed: config.seed,
            balance_cap: cap,
        })
    }

    /// Number of shards actually produced (the requested count clamped to
    /// the vertex count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of vertices across all shards (= the input's count).
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The shard owning global vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.assignment[v.index()] as usize
    }

    /// Per-vertex shard assignment, indexed by global id.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Translates a global id to `(shard, local id)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn to_local(&self, v: VertexId) -> (usize, VertexId) {
        let s = self.shard_of(v);
        let internal = self.perm.to_internal(v);
        (s, VertexId(internal.index() - self.offsets[s]))
    }

    /// Translates `(shard, local id)` back to the global id.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `local` is out of range.
    pub fn to_global(&self, shard: usize, local: VertexId) -> VertexId {
        self.shards[shard].vertices[local.index()]
    }

    /// All shard pieces, in shard order.
    pub fn shards(&self) -> &[ShardPiece] {
        &self.shards
    }

    /// One shard piece.
    pub fn shard(&self, s: usize) -> &ShardPiece {
        &self.shards[s]
    }

    /// Edges of the input whose endpoints fell in different shards, in
    /// input edge order.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cut_edges
    }

    /// The concatenated-shard-order permutation over global ids: internal
    /// id = shard offset + local id. Composes with downstream relayouts via
    /// [`VertexPerm::compose`].
    pub fn perm(&self) -> &VertexPerm {
        &self.perm
    }

    /// Prefix offsets of each shard inside [`Partition::perm`]'s internal
    /// order; `offsets()[s]..offsets()[s+1]` spans shard `s`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The seed the partition was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The resolved size-balance cap (vertices per shard the BFS growth
    /// would not exceed; the component sweep may exceed it when forced).
    pub fn balance_cap(&self) -> usize {
        self.balance_cap
    }

    /// `true` when the partition has a single shard (the trivial case the
    /// sharded pipeline must reproduce bit-identically).
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_graph, path_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_graph() -> WeightedGraph {
        let mut rng = SmallRng::seed_from_u64(7);
        grid_graph(8, 9, 0.5, &mut rng)
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = WeightedGraph::new(0);
        assert_eq!(
            Partition::build(&g, &PartitionConfig::default()).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn single_shard_is_identity() {
        let g = sample_graph();
        let p = Partition::build(
            &g,
            &PartitionConfig {
                shards: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(p.is_trivial());
        assert!(p.perm().is_identity());
        assert!(p.cut_edges().is_empty());
        let piece = p.shard(0);
        assert_eq!(piece.num_vertices(), g.num_vertices());
        // The induced subgraph must be the input, edge for edge, in order.
        assert_eq!(piece.graph().edges(), g.edges());
        assert!(piece.boundary().is_empty());
    }

    #[test]
    fn partition_covers_and_conserves_edges() {
        let g = sample_graph();
        for k in [2usize, 3, 4, 7] {
            let p = Partition::build(
                &g,
                &PartitionConfig {
                    shards: k,
                    seed: 11,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(p.num_shards(), k);
            let total: usize = p.shards().iter().map(|s| s.num_vertices()).sum();
            assert_eq!(total, g.num_vertices());
            // Every vertex round-trips through the id mapping.
            for v in 0..g.num_vertices() {
                let (s, local) = p.to_local(VertexId(v));
                assert_eq!(p.to_global(s, local), VertexId(v));
                assert_eq!(p.shard_of(VertexId(v)), s);
            }
            // Edge conservation: intra-shard + cut = input.
            let intra: usize = p.shards().iter().map(|s| s.graph().num_edges()).sum();
            assert_eq!(intra + p.cut_edges().len(), g.num_edges());
            // Cut edges really cross shards; induced edges really do not.
            for c in p.cut_edges() {
                assert_ne!(p.shard_of(c.u), p.shard_of(c.v));
            }
            for (s, piece) in p.shards().iter().enumerate() {
                for e in piece.graph().edges() {
                    assert_eq!(p.shard_of(piece.vertices()[e.u.index()]), s);
                    assert_eq!(p.shard_of(piece.vertices()[e.v.index()]), s);
                }
                // Boundary = exactly the local endpoints of cut edges.
                let mut expect: Vec<VertexId> = p
                    .cut_edges()
                    .iter()
                    .flat_map(|c| [c.u, c.v])
                    .filter(|&v| p.shard_of(v) == s)
                    .map(|v| p.to_local(v).1)
                    .collect();
                expect.sort_unstable_by_key(|v| v.index());
                expect.dedup();
                assert_eq!(piece.boundary(), expect.as_slice());
                // Local tables are ascending in global id.
                assert!(piece.vertices().windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = sample_graph();
        let cfg = PartitionConfig {
            shards: 4,
            seed: 3,
            ..Default::default()
        };
        let a = Partition::build(&g, &cfg).unwrap();
        let b = Partition::build(&g, &cfg).unwrap();
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.cut_edges(), b.cut_edges());
        // A different seed picks different roots on this graph.
        let c = Partition::build(&g, &PartitionConfig { seed: 4, ..cfg }).unwrap();
        assert_ne!(a.assignment(), c.assignment());
    }

    #[test]
    fn shard_count_clamps_to_vertex_count() {
        let g = path_graph(3, 1.0);
        let p = Partition::build(
            &g,
            &PartitionConfig {
                shards: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(p.num_shards(), 3);
        for s in p.shards() {
            assert_eq!(s.num_vertices(), 1);
        }
    }

    #[test]
    fn balance_cap_bounds_bfs_growth() {
        let g = sample_graph();
        let p = Partition::build(
            &g,
            &PartitionConfig {
                shards: 4,
                seed: 0,
                balance: 1.0,
            },
        )
        .unwrap();
        // With balance 1.0 on a connected graph no shard exceeds the cap.
        for s in p.shards() {
            assert!(s.num_vertices() <= p.balance_cap());
        }
    }

    #[test]
    fn disconnected_components_are_swept() {
        // Two disjoint paths; BFS from roots in one component cannot reach
        // the other, so the sweep must still cover everything.
        let mut g = WeightedGraph::new(8);
        for i in 1..4 {
            g.add_edge(VertexId(i - 1), VertexId(i), 1.0);
        }
        for i in 5..8 {
            g.add_edge(VertexId(i - 1), VertexId(i), 1.0);
        }
        let p = Partition::build(
            &g,
            &PartitionConfig {
                shards: 2,
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        let total: usize = p.shards().iter().map(|s| s.num_vertices()).sum();
        assert_eq!(total, 8);
    }
}
