//! Dijkstra shortest paths: full single-source, single-pair, and
//! distance-bounded variants.
//!
//! The greedy spanner algorithm issues a *bounded* distance query for every
//! candidate edge (`δ_H(u, v) > t·w(u,v)`?), so the bounded variant
//! [`bounded_distance`] terminates as soon as the frontier exceeds the bound
//! and never explores further — this is what makes the accelerated greedy
//! construction practical.
//!
//! These free functions allocate their workspace per call; they are the
//! one-shot conveniences and the reference implementation. Anything issuing
//! queries in a loop should hold a [`crate::engine::DijkstraEngine`] over a
//! [`crate::csr::CsrGraph`] instead, which answers the same queries with zero
//! per-query allocation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::GraphError;
use crate::graph::{VertexId, WeightedGraph};

/// A heap entry ordered by minimal distance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: VertexId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the minimum distance first.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: VertexId,
    dist: Vec<f64>,
    parent: Vec<Option<VertexId>>,
}

impl ShortestPathTree {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let d = self.dist[v.index()];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// All distances, `f64::INFINITY` for unreachable vertices.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Reconstructs the shortest path from the source to `target` as a vertex
    /// sequence (source first), or `None` if unreachable.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra from `source` over the whole graph.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn shortest_path_tree(graph: &WeightedGraph, source: VertexId) -> ShortestPathTree {
    run_dijkstra(graph, source, None, f64::INFINITY)
}

/// Distance between `source` and `target`, or an error if no path exists.
///
/// Terminates early once `target` is settled.
///
/// # Errors
///
/// Returns [`GraphError::NoPath`] if `target` is unreachable from `source`.
///
/// # Panics
///
/// Panics if either vertex is out of range.
pub fn shortest_path_distance(
    graph: &WeightedGraph,
    source: VertexId,
    target: VertexId,
) -> Result<f64, GraphError> {
    let tree = run_dijkstra(graph, source, Some(target), f64::INFINITY);
    tree.distance(target).ok_or(GraphError::NoPath {
        source: source.index(),
        target: target.index(),
    })
}

/// Shortest path (vertex sequence) between `source` and `target`.
///
/// # Errors
///
/// Returns [`GraphError::NoPath`] if `target` is unreachable from `source`.
pub fn shortest_path(
    graph: &WeightedGraph,
    source: VertexId,
    target: VertexId,
) -> Result<Vec<VertexId>, GraphError> {
    let tree = run_dijkstra(graph, source, Some(target), f64::INFINITY);
    tree.path_to(target).ok_or(GraphError::NoPath {
        source: source.index(),
        target: target.index(),
    })
}

/// Distance between `source` and `target` if it is at most `bound`,
/// otherwise `None`.
///
/// The search never settles vertices farther than `bound` from the source,
/// so the running time is proportional to the size of the ball of radius
/// `bound` around `source` — the key primitive of the accelerated greedy
/// spanner construction.
///
/// # Panics
///
/// Panics if either vertex is out of range.
pub fn bounded_distance(
    graph: &WeightedGraph,
    source: VertexId,
    target: VertexId,
    bound: f64,
) -> Option<f64> {
    bounded_distance_with_frontier(graph, source, target, bound).0
}

/// Like [`bounded_distance`], but also reports the peak size of the Dijkstra
/// frontier (priority-queue length) reached during the search.
///
/// The peak frontier is the memory high-water mark of the query; the unified
/// spanner pipeline reports it per construction so the experiments can compare
/// the working-set sizes of the distance oracles.
///
/// # Panics
///
/// Panics if either vertex is out of range.
pub fn bounded_distance_with_frontier(
    graph: &WeightedGraph,
    source: VertexId,
    target: VertexId,
    bound: f64,
) -> (Option<f64>, usize) {
    let (tree, peak, _) = run_dijkstra_tracked(graph, source, Some(target), bound);
    let d = match tree.distance(target) {
        Some(d) if d <= bound => Some(d),
        _ => None,
    };
    (d, peak)
}

/// Returns every vertex within graph distance `radius` of `source`, together
/// with its distance, in non-decreasing distance order (the source itself is
/// included with distance 0).
///
/// The search is bounded: vertices farther than `radius` are never settled,
/// so the cost is proportional to the size of the ball — the primitive the
/// approximate-greedy cluster construction relies on.
///
/// # Panics
///
/// Panics if `source` is out of range or `radius` is negative.
pub fn ball(graph: &WeightedGraph, source: VertexId, radius: f64) -> Vec<(VertexId, f64)> {
    assert!(radius >= 0.0, "ball radius must be non-negative");
    let tree = run_dijkstra(graph, source, None, radius);
    let mut members: Vec<(VertexId, f64)> = tree
        .distances()
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d <= radius)
        .map(|(i, &d)| (VertexId(i), d))
        .collect();
    members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    members
}

fn run_dijkstra(
    graph: &WeightedGraph,
    source: VertexId,
    target: Option<VertexId>,
    bound: f64,
) -> ShortestPathTree {
    run_dijkstra_tracked(graph, source, target, bound).0
}

/// Returns the tree plus the peak frontier and the number of heap pops the
/// search performed (the pop count is exposed so regression tests can pin the
/// search's work, not just its answer).
fn run_dijkstra_tracked(
    graph: &WeightedGraph,
    source: VertexId,
    target: Option<VertexId>,
    bound: f64,
) -> (ShortestPathTree, usize, usize) {
    let n = graph.num_vertices();
    assert!(source.index() < n, "source vertex out of range");
    if let Some(t) = target {
        assert!(t.index() < n, "target vertex out of range");
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    let mut peak_frontier = 1usize;
    let mut heap_pops = 0usize;

    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        heap_pops += 1;
        if settled[u.index()] {
            // Stale entry: a lighter copy of `u` was already settled.
            continue;
        }
        settled[u.index()] = true;
        if Some(u) == target {
            break;
        }
        if d > bound {
            break;
        }
        for &(v, e) in graph.neighbors(u) {
            if settled[v.index()] {
                continue;
            }
            let nd = d + graph.edge(e).weight;
            // Entries beyond the bound can never contribute to a bounded
            // answer; pushing them only bloats the heap and forces extra
            // stale pops before the `d > bound` cutoff fires.
            if nd > bound {
                continue;
            }
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: v,
                });
                peak_frontier = peak_frontier.max(heap.len());
            }
        }
    }

    (
        ShortestPathTree {
            source,
            dist,
            parent,
        },
        peak_frontier,
        heap_pops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    /// A small weighted graph with a known shortest-path structure:
    ///
    /// ```text
    ///   0 --1-- 1 --1-- 2
    ///   |               |
    ///   +------5--------+      3 isolated from {0,1,2} unless connected
    /// ```
    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    #[test]
    fn shortest_distance_prefers_two_hop_path() {
        let g = diamond();
        let d = shortest_path_distance(&g, VertexId(0), VertexId(2)).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_vertices_in_order() {
        let g = diamond();
        let p = shortest_path(&g, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(p, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn unreachable_vertex_is_error() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let err = shortest_path_distance(&g, VertexId(0), VertexId(2)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NoPath {
                source: 0,
                target: 2
            }
        );
        assert!(shortest_path(&g, VertexId(0), VertexId(2)).is_err());
    }

    #[test]
    fn tree_distances_and_paths() {
        let g = diamond();
        let t = shortest_path_tree(&g, VertexId(0));
        assert_eq!(t.source(), VertexId(0));
        assert_eq!(t.distance(VertexId(0)), Some(0.0));
        assert_eq!(t.distance(VertexId(3)), Some(4.0));
        assert_eq!(t.distances().len(), 4);
        assert_eq!(t.path_to(VertexId(0)).unwrap(), vec![VertexId(0)]);
    }

    #[test]
    fn bounded_distance_respects_bound() {
        let g = diamond();
        assert_eq!(bounded_distance(&g, VertexId(0), VertexId(2), 1.0), None);
        let d = bounded_distance(&g, VertexId(0), VertexId(2), 2.0).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
        assert_eq!(bounded_distance(&g, VertexId(0), VertexId(3), 3.9), None);
        assert!(bounded_distance(&g, VertexId(0), VertexId(3), 4.0).is_some());
    }

    #[test]
    fn ball_contains_exactly_the_close_vertices() {
        let g = diamond();
        let b = ball(&g, VertexId(0), 2.0);
        let members: Vec<usize> = b.iter().map(|&(v, _)| v.index()).collect();
        assert_eq!(members, vec![0, 1, 2]);
        assert_eq!(b[0], (VertexId(0), 0.0));
        assert!((b[2].1 - 2.0).abs() < 1e-12);
        // Radius 0 contains only the source.
        assert_eq!(ball(&g, VertexId(3), 0.0), vec![(VertexId(3), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ball_rejects_negative_radius() {
        let g = diamond();
        let _ = ball(&g, VertexId(0), -1.0);
    }

    #[test]
    fn bounded_distance_on_disconnected_pair_is_none() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        assert_eq!(bounded_distance(&g, VertexId(0), VertexId(2), 100.0), None);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let g = diamond();
        assert_eq!(
            shortest_path_distance(&g, VertexId(1), VertexId(1)).unwrap(),
            0.0
        );
    }

    #[test]
    fn bounded_search_never_pops_beyond_bound_entries() {
        // Path 0 -1- 1 -1- 2 -1- 3 with bound 1.5: only vertices 0 and 1 are
        // within the bound. Before the beyond-bound relaxation skip, vertex 2
        // (tentative distance 2) was pushed and popped just to trigger the
        // `d > bound` cutoff — a third, wasted pop.
        let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let (tree, _, pops) = run_dijkstra_tracked(&g, VertexId(0), Some(VertexId(3)), 1.5);
        assert_eq!(pops, 2, "exactly the in-bound ball {{0, 1}} is popped");
        assert_eq!(tree.distance(VertexId(1)), Some(1.0));
        assert_eq!(bounded_distance(&g, VertexId(0), VertexId(3), 1.5), None);

        // A star of heavy spokes: the source is popped, every spoke is
        // skipped at relaxation time, so the heap drains after one pop.
        let star =
            WeightedGraph::from_edges(5, [(0, 1, 10.0), (0, 2, 10.0), (0, 3, 10.0), (0, 4, 10.0)])
                .unwrap();
        let (_, peak, pops) = run_dijkstra_tracked(&star, VertexId(0), Some(VertexId(4)), 5.0);
        assert_eq!(pops, 1);
        assert_eq!(peak, 1, "no beyond-bound entry ever enters the heap");
    }

    #[test]
    fn bounded_answers_are_unchanged_by_the_relaxation_skip() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = 14;
            let mut g = WeightedGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.35) {
                        g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.2..4.0));
                    }
                }
            }
            for _ in 0..20 {
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                let bound = rng.gen_range(0.1..10.0);
                let bounded = bounded_distance(&g, s, t, bound);
                let exact = shortest_path_tree(&g, s).distance(t);
                match exact {
                    Some(d) if d <= bound => assert_eq!(bounded, Some(d)),
                    _ => assert_eq!(bounded, None),
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = 12;
            let mut g = WeightedGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.1..5.0));
                    }
                }
            }
            // Brute-force Floyd–Warshall.
            let mut d = vec![vec![f64::INFINITY; n]; n];
            for (i, row) in d.iter_mut().enumerate() {
                row[i] = 0.0;
            }
            for e in g.edges() {
                let (a, b) = (e.u.index(), e.v.index());
                if e.weight < d[a][b] {
                    d[a][b] = e.weight;
                    d[b][a] = e.weight;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        if d[i][k] + d[k][j] < d[i][j] {
                            d[i][j] = d[i][k] + d[k][j];
                        }
                    }
                }
            }
            for (s, row) in d.iter().enumerate() {
                let t = shortest_path_tree(&g, VertexId(s));
                for (v, &expected) in row.iter().enumerate() {
                    match t.distance(VertexId(v)) {
                        Some(got) => assert!((got - expected).abs() < 1e-9),
                        None => assert!(expected.is_infinite()),
                    }
                }
            }
        }
    }
}
