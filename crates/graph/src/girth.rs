//! Girth computation.
//!
//! The existential-optimality examples of the paper (Figure 1 and the general
//! lower bound) are built from high-girth graphs: a graph of girth `t + 2`
//! contains no `t`-spanner other than itself when all weights are equal, so
//! the greedy `t`-spanner keeps every edge.

use std::collections::VecDeque;

use crate::graph::{VertexId, WeightedGraph};

/// Length (number of edges) of a shortest cycle of the graph, ignoring edge
/// weights, or `None` if the graph is acyclic.
///
/// Uses a BFS from every vertex (`O(n · m)`), which is ample for the graph
/// sizes used by the experiments.
pub fn girth(graph: &WeightedGraph) -> Option<usize> {
    let n = graph.num_vertices();
    let mut best: Option<usize> = None;
    for start in 0..n {
        let mut dist = vec![usize::MAX; n];
        let mut parent_edge = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[start] = 0;
        queue.push_back(VertexId(start));
        while let Some(u) = queue.pop_front() {
            for &(v, e) in graph.neighbors(u) {
                if e.index() == parent_edge[u.index()] {
                    continue; // don't traverse the tree edge back
                }
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    parent_edge[v.index()] = e.index();
                    queue.push_back(v);
                } else {
                    // Found a cycle through `start` (or at least a cycle whose
                    // length is bounded below by this estimate).
                    let cycle_len = dist[u.index()] + dist[v.index()] + 1;
                    if best.is_none_or(|b| cycle_len < b) {
                        best = Some(cycle_len);
                    }
                }
            }
        }
    }
    best
}

/// Returns `true` if the graph contains no cycle of length strictly less than
/// `g` (i.e. its girth is at least `g`). Acyclic graphs satisfy every bound.
pub fn has_girth_at_least(graph: &WeightedGraph, g: usize) -> bool {
    match girth(graph) {
        None => true,
        Some(actual) => actual >= g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, petersen_graph};

    #[test]
    fn tree_has_no_cycle() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0)]).unwrap();
        assert_eq!(girth(&g), None);
        assert!(has_girth_at_least(&g, 100));
    }

    #[test]
    fn triangle_has_girth_three() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        assert_eq!(girth(&g), Some(3));
        assert!(has_girth_at_least(&g, 3));
        assert!(!has_girth_at_least(&g, 4));
    }

    #[test]
    fn cycle_graph_girth_is_its_length() {
        for n in [4usize, 5, 8, 13] {
            let g = cycle_graph(n, 1.0);
            assert_eq!(girth(&g), Some(n), "cycle of length {n}");
        }
    }

    #[test]
    fn petersen_has_girth_five() {
        let g = petersen_graph(1.0);
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn parallel_edges_make_girth_two() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(VertexId(0), VertexId(1), 1.0);
        g.add_edge(VertexId(0), VertexId(1), 1.0);
        assert_eq!(girth(&g), Some(2));
    }

    #[test]
    fn square_plus_diagonal_has_girth_three() {
        let g = WeightedGraph::from_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(girth(&g), Some(3));
    }
}
