//! Landmark (ALT) lower bounds for point-to-point distance queries.
//!
//! The ALT technique (Goldberg & Harrelson) precomputes shortest-path trees
//! from a small set of *landmark* vertices. For any landmark `l`, the
//! triangle inequality gives a lower bound on the remaining distance from a
//! vertex `v` to a target `t`:
//!
//! ```text
//!   d(v, t) ≥ |d(l, v) − d(l, t)|
//! ```
//!
//! and the max over landmarks is still a lower bound. The engine uses it
//! purely for **pruning** a bounded search: a vertex whose tentative
//! distance plus lower bound exceeds the query bound can never lie on a
//! within-bound path to the target, so it is never pushed. Crucially the
//! search *order* is untouched — keys stay plain distances — so answers (and
//! the settle order of every surviving vertex) are bit-identical to the
//! unpruned search; the landmarks only shrink the explored ball. That
//! invariance is what lets the serving layer pick landmarks from live demand
//! statistics without any effect on answers.
//!
//! A [`Landmarks`] table is stamped with the [`CsrGraph::epoch`] it was
//! built at and must be rebuilt after any mutation (the serving layer does
//! this lazily on epoch bumps); the engine refuses tables whose stamp does
//! not match the queried graph.

use crate::csr::CsrGraph;
use crate::engine::DijkstraEngine;
use crate::graph::VertexId;

/// Per-landmark shortest-path distances, stored vertex-major so one query's
/// target column and one relaxation's vertex row are each a single
/// contiguous read.
#[derive(Debug, Clone, PartialEq)]
pub struct Landmarks {
    /// The landmark vertices, deduplicated, in selection order.
    sources: Vec<VertexId>,
    /// Vertex count of the graph the table was built over.
    num_vertices: usize,
    /// `dist[v * k + l]` = distance from landmark `l` to vertex `v`
    /// (`f64::INFINITY` when unreachable), with `k = sources.len()`.
    dist: Vec<f64>,
    /// The [`CsrGraph::epoch`] the table was built at.
    epoch: u64,
}

impl Landmarks {
    /// Builds the distance table for `sources` over `graph`. Out-of-range
    /// and duplicate sources are dropped (first occurrence wins), so the
    /// caller may pass a raw demand ranking. Building runs one full
    /// shortest-path tree per landmark on an internal pre-sized engine —
    /// this is freeze-time work, not query-path work.
    pub fn build(graph: &CsrGraph, sources: &[VertexId]) -> Landmarks {
        let n = graph.num_vertices();
        let mut seen = vec![false; n];
        let mut kept: Vec<VertexId> = Vec::new();
        for &s in sources {
            if s.index() < n && !seen[s.index()] {
                seen[s.index()] = true;
                kept.push(s);
            }
        }
        let k = kept.len();
        let mut dist = vec![f64::INFINITY; n * k];
        let mut engine = DijkstraEngine::with_capacity_for(n, graph.num_edges());
        for (l, &s) in kept.iter().enumerate() {
            let tree = engine.shortest_path_tree(graph, s);
            for (v, row) in dist.chunks_exact_mut(k).enumerate() {
                if let Some(d) = tree.distance(VertexId(v)) {
                    row[l] = d;
                }
            }
        }
        Landmarks {
            sources: kept,
            num_vertices: n,
            dist,
            epoch: graph.epoch(),
        }
    }

    /// Builds a table from the `count` highest-degree vertices of `graph`
    /// (ties broken by smaller id) — the deterministic default when no
    /// demand statistics are available. High-degree hubs tend to lie on
    /// many shortest paths, which is exactly what makes a landmark's
    /// triangle bound tight.
    pub fn build_degree_ranked(graph: &CsrGraph, count: usize) -> Landmarks {
        let n = graph.num_vertices();
        let mut degree = vec![0u32; n];
        for (_, u, v, _) in graph.live_edges() {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(degree[v as usize]), v));
        let sources: Vec<VertexId> = order
            .into_iter()
            .take(count)
            .map(|v| VertexId(v as usize))
            .collect();
        Landmarks::build(graph, &sources)
    }

    /// Number of landmarks in the table.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the table holds no landmarks.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Vertex count of the graph the table was built over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The [`CsrGraph::epoch`] the table was built at. A table is only
    /// valid against a graph whose epoch still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The landmark vertices, in selection order.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Approximate heap footprint of the table, for capacity planning.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<f64>()
            + self.sources.len() * std::mem::size_of::<VertexId>()
    }

    /// The raw vertex-major distance table (`dist[v * k + l]`).
    pub(crate) fn table(&self) -> &[f64] {
        &self.dist
    }

    /// Copies the distances from every landmark to `t` into `out` (one slot
    /// per landmark). The engine keeps this column in a scratch buffer for
    /// the duration of one query.
    pub(crate) fn copy_target_column(&self, t: usize, out: &mut Vec<f64>) {
        out.clear();
        let k = self.sources.len();
        out.extend_from_slice(&self.dist[t * k..(t + 1) * k]);
    }

    /// The max-over-landmarks triangle lower bound on `d(v, t)`:
    /// `f64::INFINITY` when some landmark proves the pair disconnected
    /// (exactly one side unreachable), `0.0` when no landmark sees either
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn lower_bound(&self, v: VertexId, t: VertexId) -> f64 {
        let k = self.sources.len();
        let row_v = &self.dist[v.index() * k..(v.index() + 1) * k];
        let row_t = &self.dist[t.index() * k..(t.index() + 1) * k];
        let mut h = 0.0f64;
        for (&dv, &dt) in row_v.iter().zip(row_t) {
            if dv.is_finite() && dt.is_finite() {
                let diff = (dv - dt).abs();
                if diff > h {
                    h = diff;
                }
            } else if dv.is_finite() != dt.is_finite() {
                // One side reachable from the landmark, the other not: the
                // pair is disconnected, and the bound is exact.
                return f64::INFINITY;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    fn two_components() -> CsrGraph {
        // 0-1-2 chained, 3-4 chained, 5 isolated.
        let g = WeightedGraph::from_edges(6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 0.5)]).unwrap();
        CsrGraph::from(&g)
    }

    #[test]
    fn lower_bounds_are_admissible_and_detect_disconnection() {
        let csr = two_components();
        let lm = Landmarks::build(&csr, &[VertexId(0), VertexId(3)]);
        assert_eq!(lm.len(), 2);
        assert_eq!(lm.epoch(), csr.epoch());
        let mut engine = DijkstraEngine::new();
        for v in 0..6 {
            for t in 0..6 {
                let bound = lm.lower_bound(VertexId(v), VertexId(t));
                match engine.bounded_distance(&csr, VertexId(v), VertexId(t), f64::INFINITY) {
                    Some(d) => assert!(
                        bound <= d + 1e-12,
                        "bound {bound} exceeds true distance {d} for {v}->{t}"
                    ),
                    None => {
                        if v != t {
                            assert_eq!(
                                bound,
                                f64::INFINITY,
                                "a landmark in each component proves {v}->{t} disconnected"
                            );
                        }
                    }
                }
            }
        }
        // Exactness at a landmark: |d(l,v) − 0| = d(l,v).
        assert_eq!(lm.lower_bound(VertexId(2), VertexId(0)), 3.0);
    }

    #[test]
    fn duplicate_and_out_of_range_sources_are_dropped() {
        let csr = two_components();
        let lm = Landmarks::build(&csr, &[VertexId(1), VertexId(1), VertexId(99), VertexId(4)]);
        assert_eq!(lm.sources(), &[VertexId(1), VertexId(4)]);
        assert!(lm.memory_bytes() >= 6 * 2 * 8);
    }

    #[test]
    fn degree_ranked_selection_is_deterministic() {
        let csr = two_components();
        // Degrees: 1 has 2; 0, 2, 3, 4 have 1; 5 has 0. Ties by id.
        let lm = Landmarks::build_degree_ranked(&csr, 3);
        assert_eq!(lm.sources(), &[VertexId(1), VertexId(0), VertexId(2)]);
        let empty = Landmarks::build_degree_ranked(&csr, 0);
        assert!(empty.is_empty());
    }
}
