//! Workload generators: random, geometric, structured and high-girth graphs.
//!
//! Every generator is deterministic given the caller-supplied RNG, so
//! experiments are reproducible from a seed.

use std::ops::Range;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::connectivity::hop_distances;
use crate::graph::{VertexId, WeightedGraph};
use crate::union_find::UnionFind;

fn sample_weight<R: Rng + ?Sized>(rng: &mut R, range: &Range<f64>) -> f64 {
    if range.start >= range.end {
        range.start
    } else {
        rng.gen_range(range.clone())
    }
}

/// Erdős–Rényi `G(n, p)` graph with i.i.d. weights drawn from `weight_range`.
///
/// The result may be disconnected; use [`erdos_renyi_connected`] when a
/// connected instance is required.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    weight_range: Range<f64>,
    rng: &mut R,
) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(VertexId(u), VertexId(v), sample_weight(rng, &weight_range));
            }
        }
    }
    g
}

/// Erdős–Rényi graph forced to be connected by first threading a random
/// spanning tree through a shuffled vertex order.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    weight_range: Range<f64>,
    rng: &mut R,
) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    if n == 0 {
        return g;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        g.add_edge(
            VertexId(order[i]),
            VertexId(parent),
            sample_weight(rng, &weight_range),
        );
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(VertexId(u), VertexId(v)) && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(VertexId(u), VertexId(v), sample_weight(rng, &weight_range));
            }
        }
    }
    g
}

/// Complete graph on `n` vertices with i.i.d. weights from `weight_range`.
pub fn complete_graph_with_weights<R: Rng + ?Sized>(
    n: usize,
    weight_range: Range<f64>,
    rng: &mut R,
) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(VertexId(u), VertexId(v), sample_weight(rng, &weight_range));
        }
    }
    g
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between every pair at Euclidean distance at most `radius`, weighted by that
/// distance. Returns the graph and the generated points.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (WeightedGraph, Vec<[f64; 2]>) {
    let points: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let mut g = WeightedGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u][0] - points[v][0];
            let dy = points[u][1] - points[v][1];
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius && d > 0.0 {
                g.add_edge(VertexId(u), VertexId(v), d);
            }
        }
    }
    (g, points)
}

/// Random geometric graph made connected by adding, for every pair of
/// components, the shortest bridging edge (weighted by Euclidean distance).
pub fn random_geometric_connected<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (WeightedGraph, Vec<[f64; 2]>) {
    let (mut g, points) = random_geometric(n, radius, rng);
    if n == 0 {
        return (g, points);
    }
    // Kruskal-style stitching over all pairs ordered by distance.
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        uf.union(e.u.index(), e.v.index());
    }
    if uf.num_sets() > 1 {
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let dx = points[u][0] - points[v][0];
                let dy = points[u][1] - points[v][1];
                let d = (dx * dx + dy * dy).sqrt();
                pairs.push((d.max(f64::MIN_POSITIVE), u, v));
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (d, u, v) in pairs {
            if uf.union(u, v) {
                g.add_edge(VertexId(u), VertexId(v), d);
                if uf.num_sets() == 1 {
                    break;
                }
            }
        }
    }
    (g, points)
}

/// `rows × cols` grid graph with unit weights perturbed by up to `jitter`
/// (relative), modelling road-network-like instances.
pub fn grid_graph<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    jitter: f64,
    rng: &mut R,
) -> WeightedGraph {
    let n = rows * cols;
    let mut g = WeightedGraph::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    let w = |rng: &mut R| 1.0 + jitter * rng.gen::<f64>();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(VertexId(idx(r, c)), VertexId(idx(r, c + 1)), w(rng));
            }
            if r + 1 < rows {
                g.add_edge(VertexId(idx(r, c)), VertexId(idx(r + 1, c)), w(rng));
            }
        }
    }
    g
}

/// Path graph `0 - 1 - … - (n-1)` with uniform weight `weight`.
pub fn path_graph(n: usize, weight: f64) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    for i in 1..n {
        g.add_edge(VertexId(i - 1), VertexId(i), weight);
    }
    g
}

/// Cycle graph on `n >= 3` vertices with uniform weight `weight`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize, weight: f64) -> WeightedGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path_graph(n, weight);
    g.add_edge(VertexId(n - 1), VertexId(0), weight);
    g
}

/// Star graph rooted at vertex `0` with uniform weight `weight` on all spokes.
pub fn star_graph(n: usize, weight: f64) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    for i in 1..n {
        g.add_edge(VertexId(0), VertexId(i), weight);
    }
    g
}

/// The Petersen graph (10 vertices, 15 edges, girth 5) with uniform weight
/// `weight` — the graph `H` of the paper's Figure 1.
pub fn petersen_graph(weight: f64) -> WeightedGraph {
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
    let mut g = WeightedGraph::new(10);
    for i in 0..5usize {
        g.add_edge(VertexId(i), VertexId((i + 1) % 5), weight);
        g.add_edge(VertexId(5 + i), VertexId(5 + (i + 2) % 5), weight);
        g.add_edge(VertexId(i), VertexId(5 + i), weight);
    }
    g
}

/// The Heawood graph (14 vertices, 21 edges, girth 6) with uniform weight
/// `weight` — the (3,6)-cage, used to generalize Figure 1.
pub fn heawood_graph(weight: f64) -> WeightedGraph {
    let mut g = WeightedGraph::new(14);
    // Outer 14-cycle plus chords i -> i+5 for even i (standard LCF [5,-5]^7).
    for i in 0..14usize {
        g.add_edge(VertexId(i), VertexId((i + 1) % 14), weight);
    }
    for i in (0..14usize).step_by(2) {
        g.add_edge(VertexId(i), VertexId((i + 5) % 14), weight);
    }
    g
}

/// The McGee graph (24 vertices, 36 edges, girth 7) with uniform weight
/// `weight` — the (3,7)-cage.
pub fn mcgee_graph(weight: f64) -> WeightedGraph {
    // LCF notation [12, 7, -7]^8.
    let shifts = [12i64, 7, -7];
    let n = 24i64;
    let mut g = WeightedGraph::new(24);
    for i in 0..24usize {
        g.add_edge(VertexId(i), VertexId((i + 1) % 24), weight);
    }
    for i in 0..24i64 {
        let s = shifts[(i % 3) as usize];
        let j = (i + s).rem_euclid(n);
        let (a, b) = (i as usize, j as usize);
        if !g.has_edge(VertexId(a), VertexId(b)) {
            g.add_edge(VertexId(a), VertexId(b), weight);
        }
    }
    g
}

/// Random graph on `n` vertices with unit weights and girth at least
/// `min_girth`, built incrementally: candidate edges are examined in random
/// order and an edge is added only if the hop distance between its endpoints
/// is at least `min_girth - 1` in the current graph.
///
/// This yields the kind of dense-as-possible high-girth instance used by the
/// paper's lower-bound discussion (Section 1.3) without requiring explicit
/// Ramanujan-style constructions.
pub fn high_girth_graph<R: Rng + ?Sized>(
    n: usize,
    min_girth: usize,
    weight: f64,
    rng: &mut R,
) -> WeightedGraph {
    assert!(min_girth >= 3, "girth bounds below 3 are vacuous");
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    pairs.shuffle(rng);
    let mut g = WeightedGraph::new(n);
    for (u, v) in pairs {
        let d = hop_distances(&g, VertexId(u))[v];
        if d >= min_girth - 1 {
            g.add_edge(VertexId(u), VertexId(v), weight);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::girth::girth;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn erdos_renyi_edge_count_is_plausible() {
        let g = erdos_renyi(50, 0.2, 1.0..2.0, &mut rng());
        let max_edges = 50 * 49 / 2;
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() < max_edges);
        assert!(g.edges().iter().all(|e| e.weight >= 1.0 && e.weight < 2.0));
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let g0 = erdos_renyi(10, 0.0, 1.0..2.0, &mut rng());
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, 1.0..2.0, &mut rng());
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for n in [1usize, 2, 10, 60] {
            let g = erdos_renyi_connected(n, 0.05, 1.0..5.0, &mut rng());
            assert!(is_connected(&g), "n = {n}");
        }
    }

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = complete_graph_with_weights(7, 2.0..3.0, &mut rng());
        assert_eq!(g.num_edges(), 21);
    }

    #[test]
    fn degenerate_weight_range_is_constant() {
        let g = complete_graph_with_weights(4, 1.0..1.0, &mut rng());
        assert!(g.edges().iter().all(|e| e.weight == 1.0));
    }

    #[test]
    fn geometric_graph_weights_are_distances() {
        let (g, pts) = random_geometric(40, 0.3, &mut rng());
        for e in g.edges() {
            let dx = pts[e.u.index()][0] - pts[e.v.index()][0];
            let dy = pts[e.u.index()][1] - pts[e.v.index()][1];
            let d = (dx * dx + dy * dy).sqrt();
            assert!((d - e.weight).abs() < 1e-12);
            assert!(e.weight <= 0.3);
        }
    }

    #[test]
    fn geometric_connected_is_connected() {
        let (g, _) = random_geometric_connected(60, 0.05, &mut rng());
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_graph_shape() {
        let g = grid_graph(3, 4, 0.0, &mut rng());
        assert_eq!(g.num_vertices(), 12);
        // 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert!(is_connected(&g));
        assert!(g.edges().iter().all(|e| e.weight == 1.0));
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path_graph(5, 1.0).num_edges(), 4);
        assert_eq!(cycle_graph(5, 1.0).num_edges(), 5);
        let s = star_graph(6, 2.0);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(VertexId(0)), 5);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small_panics() {
        let _ = cycle_graph(2, 1.0);
    }

    #[test]
    fn petersen_is_3_regular_girth_5() {
        let g = petersen_graph(1.0);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn heawood_is_3_regular_girth_6() {
        let g = heawood_graph(1.0);
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.num_edges(), 21);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(girth(&g), Some(6));
    }

    #[test]
    fn mcgee_is_3_regular_girth_7() {
        let g = mcgee_graph(1.0);
        assert_eq!(g.num_vertices(), 24);
        assert_eq!(g.num_edges(), 36);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(girth(&g), Some(7));
    }

    #[test]
    fn high_girth_generator_respects_bound() {
        let mut r = rng();
        for min_girth in [4usize, 5, 6] {
            let g = high_girth_graph(40, min_girth, 1.0, &mut r);
            assert!(girth(&g).is_none_or(|gi| gi >= min_girth));
            assert!(
                g.num_edges() >= 39,
                "should at least contain a spanning structure"
            );
        }
    }
}
