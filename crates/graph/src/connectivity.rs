//! Connectivity queries: BFS, connected components, hop distances.

use std::collections::VecDeque;

use crate::graph::{VertexId, WeightedGraph};

/// Returns `true` if the graph is connected (every pair of vertices is joined
/// by a path). The empty graph and the one-vertex graph are connected.
pub fn is_connected(graph: &WeightedGraph) -> bool {
    let n = graph.num_vertices();
    if n <= 1 {
        return true;
    }
    let reached = bfs_reachable(graph, VertexId(0));
    reached.iter().all(|&r| r)
}

/// Returns, for each vertex, whether it is reachable from `source`.
pub fn bfs_reachable(graph: &WeightedGraph, source: VertexId) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    if source.index() >= n {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Unweighted (hop-count) distances from `source`; `usize::MAX` marks
/// unreachable vertices.
pub fn hop_distances(graph: &WeightedGraph, source: VertexId) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    if source.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Assigns each vertex a component label in `0..k` and returns `(labels, k)`.
pub fn connected_components(graph: &WeightedGraph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        label[start] = next;
        queue.push_back(VertexId(start));
        while let Some(u) = queue.pop_front() {
            for &(v, _) in graph.neighbors(u) {
                if label[v.index()] == usize::MAX {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> WeightedGraph {
        WeightedGraph::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap()
    }

    #[test]
    fn path_graph_is_connected() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&WeightedGraph::new(0)));
        assert!(is_connected(&WeightedGraph::new(1)));
        assert!(!is_connected(&WeightedGraph::new(2)));
    }

    #[test]
    fn detects_disconnection() {
        assert!(!is_connected(&two_components()));
    }

    #[test]
    fn reachability_from_source() {
        let g = two_components();
        let r = bfs_reachable(&g, VertexId(0));
        assert_eq!(r, vec![true, true, true, false, false]);
        let r = bfs_reachable(&g, VertexId(4));
        assert_eq!(r, vec![false, false, false, true, true]);
    }

    #[test]
    fn hop_distances_count_edges() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0)]).unwrap();
        let d = hop_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hop_distance_marks_unreachable() {
        let g = two_components();
        let d = hop_distances(&g, VertexId(0));
        assert_eq!(d[3], usize::MAX);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn components_are_labelled() {
        let g = two_components();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn singleton_vertices_get_their_own_component() {
        let g = WeightedGraph::new(3);
        let (_, k) = connected_components(&g);
        assert_eq!(k, 3);
    }
}
