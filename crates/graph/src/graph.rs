//! The core undirected weighted-graph type.

use std::fmt;

use crate::error::GraphError;

/// Identifier of a vertex inside a [`WeightedGraph`].
///
/// Vertices are dense indices `0..n`; the newtype prevents accidental mixing
/// with edge identifiers or raw counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub usize);

impl VertexId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for VertexId {
    fn from(value: usize) -> Self {
        VertexId(value)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge inside a [`WeightedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge `{u, v}` with a positive weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Positive, finite weight.
    pub weight: f64,
}

impl Edge {
    /// Creates a new edge; endpoints are stored as given.
    pub fn new(u: VertexId, v: VertexId, weight: f64) -> Self {
        Edge { u, v, weight }
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `x` is one of the endpoints.
    pub fn is_incident_to(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }

    /// Returns the endpoints as an ordered pair `(min, max)` of indices,
    /// useful as a canonical key for undirected edges.
    pub fn key(&self) -> (usize, usize) {
        let (a, b) = (self.u.index(), self.v.index());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// An undirected, positively-weighted graph with dense vertex indices.
///
/// The structure is an edge list plus per-vertex adjacency lists of
/// `(neighbor, edge id)` pairs. Parallel edges are permitted (some generators
/// produce them transiently) but self-loops are rejected at construction time.
///
/// Use [`crate::GraphBuilder`] or [`WeightedGraph::from_edges`] to construct
/// graphs, and [`WeightedGraph::add_edge`] to grow them (spanner algorithms add
/// edges incrementally).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedGraph {
    num_vertices: usize,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<(VertexId, EdgeId)>>,
    /// Cached maximum degree, maintained on every insert (edges are never
    /// removed — subgraphs are built fresh — so the maximum only grows).
    max_degree: usize,
}

impl WeightedGraph {
    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        WeightedGraph {
            num_vertices,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_vertices],
            max_degree: 0,
        }
    }

    /// Creates a graph with the same vertex set as `other` and no edges.
    ///
    /// This is the canonical way a spanner construction starts: `H = (V, ∅)`.
    pub fn empty_like(other: &WeightedGraph) -> Self {
        WeightedGraph::new(other.num_vertices())
    }

    /// Builds a graph from `(u, v, weight)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if any endpoint is out of range, any weight is
    /// non-positive or non-finite, or an edge is a self-loop.
    pub fn from_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, GraphError> {
        let mut g = WeightedGraph::new(num_vertices);
        for (u, v, w) in edges {
            g.try_add_edge(VertexId(u), VertexId(v), w)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over all vertex identifiers `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices).map(VertexId)
    }

    /// Slice of all edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[v.index()]
    }

    /// Degree (number of incident edges) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the weight is not positive and
    /// finite, or the edge is a self-loop. Use [`WeightedGraph::try_add_edge`]
    /// for a fallible variant.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: f64) -> EdgeId {
        self.try_add_edge(u, v, weight)
            .expect("invalid edge passed to add_edge")
    }

    /// Adds an undirected edge, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`], [`GraphError::InvalidWeight`]
    /// or [`GraphError::SelfLoop`] on invalid input.
    pub fn try_add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        if u.index() >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.index(),
                num_vertices: self.num_vertices,
            });
        }
        if v.index() >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: v.index(),
                num_vertices: self.num_vertices,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u.index() });
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge::new(u, v, weight));
        self.adjacency[u.index()].push((v, id));
        self.adjacency[v.index()].push((u, id));
        self.max_degree = self
            .max_degree
            .max(self.adjacency[u.index()].len())
            .max(self.adjacency[v.index()].len());
        Ok(id)
    }

    /// Adds a fresh isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId(self.num_vertices);
        self.num_vertices += 1;
        self.adjacency.push(Vec::new());
        id
    }

    /// Returns `true` if an edge `{u, v}` exists (any parallel copy counts).
    ///
    /// Cost: a linear scan of the *smaller* of the two adjacency lists —
    /// `O(min(deg(u), deg(v)))`, not `O(1)`. Callers doing many membership
    /// tests on a static graph should build their own set keyed by
    /// [`Edge::key`] instead.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u.index() >= self.num_vertices || v.index() >= self.num_vertices {
            return false;
        }
        let (scan, probe) = if self.adjacency[u.index()].len() <= self.adjacency[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[scan.index()]
            .iter()
            .any(|&(n, _)| n == probe)
    }

    /// Returns the minimum weight among edges `{u, v}`, if any exists.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if u.index() >= self.num_vertices {
            return None;
        }
        self.adjacency[u.index()]
            .iter()
            .filter(|&&(n, _)| n == v)
            .map(|&(_, e)| self.edges[e.index()].weight)
            .min_by(f64::total_cmp)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Maximum vertex degree; zero for an empty graph.
    ///
    /// O(1): the value is cached and updated on every insert (this used to be
    /// a linear scan over all vertices, which experiment loops called per
    /// evaluation).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Returns a new graph containing the same vertices and only the edges
    /// whose ids satisfy `keep`.
    pub fn filter_edges(&self, mut keep: impl FnMut(EdgeId, &Edge) -> bool) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.num_vertices);
        for (i, e) in self.edges.iter().enumerate() {
            if keep(EdgeId(i), e) {
                g.add_edge(e.u, e.v, e.weight);
            }
        }
        g
    }

    /// Returns the edge ids sorted by non-decreasing weight (ties broken by
    /// canonical endpoint order for determinism).
    pub fn edges_by_weight(&self) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = (0..self.edges.len()).map(EdgeId).collect();
        ids.sort_by(|&a, &b| {
            let ea = &self.edges[a.index()];
            let eb = &self.edges[b.index()];
            ea.weight
                .total_cmp(&eb.weight)
                .then_with(|| ea.key().cmp(&eb.key()))
        });
        ids
    }

    /// Returns `true` if every edge of `self` has a corresponding edge (same
    /// canonical endpoints, same weight up to `1e-12`) in `other`.
    pub fn is_edge_subgraph_of(&self, other: &WeightedGraph) -> bool {
        if self.num_vertices != other.num_vertices {
            return false;
        }
        self.edges.iter().all(|e| {
            other
                .edge_weight(e.u, e.v)
                .map(|w| (w - e.weight).abs() <= 1e-12 * w.max(1.0))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 2.5)]).unwrap()
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = WeightedGraph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.degree(VertexId(2)), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn edge_weight_returns_minimum_parallel_weight() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(VertexId(0), VertexId(1), 3.0);
        g.add_edge(VertexId(0), VertexId(1), 1.5);
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(1.5));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = WeightedGraph::new(2);
        let err = g.try_add_edge(VertexId(1), VertexId(1), 1.0).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let mut g = WeightedGraph::new(2);
        let err = g.try_add_edge(VertexId(0), VertexId(5), 1.0).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut g = WeightedGraph::new(2);
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(g.try_add_edge(VertexId(0), VertexId(1), w).is_err());
        }
    }

    #[test]
    fn total_weight_sums_all_edges() {
        let g = triangle();
        assert!((g.total_weight() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn edges_by_weight_is_sorted_and_deterministic() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 2.0), (0, 3, 0.5)])
            .unwrap();
        let order = g.edges_by_weight();
        let weights: Vec<f64> = order.iter().map(|&e| g.edge(e).weight).collect();
        assert_eq!(weights, vec![0.5, 1.0, 2.0, 2.0]);
        // Ties broken by endpoint key: (0,1) before (2,3).
        assert_eq!(g.edge(order[2]).key(), (0, 1));
        assert_eq!(g.edge(order[3]).key(), (2, 3));
    }

    #[test]
    fn empty_like_copies_vertex_count_only() {
        let g = triangle();
        let h = WeightedGraph::empty_like(&g);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn filter_edges_keeps_selected() {
        let g = triangle();
        let h = g.filter_edges(|_, e| e.weight < 2.4);
        assert_eq!(h.num_edges(), 2);
        assert!(h.is_edge_subgraph_of(&g));
        assert!(!g.is_edge_subgraph_of(&h));
    }

    #[test]
    fn edge_other_and_incidence() {
        let e = Edge::new(VertexId(3), VertexId(7), 1.0);
        assert_eq!(e.other(VertexId(3)), VertexId(7));
        assert_eq!(e.other(VertexId(7)), VertexId(3));
        assert!(e.is_incident_to(VertexId(3)));
        assert!(!e.is_incident_to(VertexId(4)));
        assert_eq!(e.key(), (3, 7));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge::new(VertexId(0), VertexId(1), 1.0);
        let _ = e.other(VertexId(2));
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = triangle();
        let v = g.add_vertex();
        assert_eq!(v, VertexId(3));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.degree(v), 0);
    }

    #[test]
    fn max_degree_cache_tracks_every_insert_path() {
        let mut g = WeightedGraph::new(5);
        assert_eq!(g.max_degree(), 0);
        g.add_edge(VertexId(0), VertexId(1), 1.0);
        assert_eq!(g.max_degree(), 1);
        g.add_edge(VertexId(0), VertexId(2), 1.0);
        assert_eq!(g.max_degree(), 2);
        g.add_edge(VertexId(3), VertexId(4), 1.0);
        assert_eq!(g.max_degree(), 2, "a new far-away edge must not regress it");
        // Parallel edges count toward the degree.
        g.add_edge(VertexId(0), VertexId(1), 2.0);
        assert_eq!(g.max_degree(), 3);
        // Adding a vertex never changes the maximum.
        g.add_vertex();
        assert_eq!(g.max_degree(), 3);
        // The cache always agrees with a full scan, on every construction path.
        let star = star_like(7);
        let scanned = star.vertices().map(|v| star.degree(v)).max().unwrap();
        assert_eq!(star.max_degree(), scanned);
        let filtered = star.filter_edges(|id, _| id.index() % 2 == 0);
        let scanned = filtered
            .vertices()
            .map(|v| filtered.degree(v))
            .max()
            .unwrap();
        assert_eq!(filtered.max_degree(), scanned);
    }

    fn star_like(n: usize) -> WeightedGraph {
        WeightedGraph::from_edges(n, (1..n).map(|v| (0, v, v as f64))).unwrap()
    }

    #[test]
    fn has_edge_scans_the_smaller_list_and_is_symmetric() {
        let g = star_like(6);
        // Hub side (degree 5) and leaf side (degree 1) must agree.
        for v in 1..6 {
            assert!(g.has_edge(VertexId(0), VertexId(v)));
            assert!(g.has_edge(VertexId(v), VertexId(0)));
        }
        assert!(!g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.has_edge(VertexId(2), VertexId(1)));
        // Out-of-range endpoints (either side) are simply absent.
        assert!(!g.has_edge(VertexId(0), VertexId(99)));
        assert!(!g.has_edge(VertexId(99), VertexId(0)));
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(VertexId(4).to_string(), "v4");
        assert_eq!(EdgeId(2).to_string(), "e2");
    }
}
