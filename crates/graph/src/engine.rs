//! A reusable, zero-allocation-per-query Dijkstra engine over [`CsrGraph`].
//!
//! The greedy spanner issues one bounded distance query per candidate edge —
//! `O(m)` queries against the growing spanner. The free functions in
//! [`crate::dijkstra`] allocate three `O(n)` vectors *per query*, so that hot
//! loop is allocation- and cache-bound. [`DijkstraEngine`] owns the workspace
//! instead:
//!
//! * `dist` / `parent` arrays are *generation-stamped*: a query bumps one
//!   counter instead of clearing `O(n)` state, so per-query cost is
//!   proportional to the explored ball, not to the graph;
//! * the priority queue is a lazy-deletion binary heap whose buffer is
//!   retained across queries; its pushes are bounded by the number of
//!   half-edge improvements (`≤ 2m + 1`), so an engine created with
//!   [`DijkstraEngine::with_capacity_for`] performs **zero heap allocation
//!   per query**, ever (an engine sized on the fly stops allocating once its
//!   buffers reach the workload's high-water mark);
//! * the engine counts queries, workspace-reuse hits (queries that ran
//!   without growing any buffer), heap pops and the peak frontier, which the
//!   spanner pipeline surfaces in its run statistics;
//! * relaxations can run through a batched **gather → filter → commit
//!   kernel** ([`RelaxKernel`]): whole same-cohort queue drains are staged
//!   into a contiguous scratch ring, the `dist`/`state` lanes are
//!   software-prefetched a fixed distance ahead, and candidates are
//!   branchlessly compacted before the exact relax step — hiding the
//!   dependent random-access load latency that dominates the scalar loop,
//!   with answers, settle order and counters bit-identical to it.
//!
//! ```
//! use spanner_graph::csr::CsrGraph;
//! use spanner_graph::engine::DijkstraEngine;
//! use spanner_graph::{VertexId, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap();
//! let csr = CsrGraph::from(&g);
//! let mut engine = DijkstraEngine::new();
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0), Some(2.0));
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 1.5), None);
//! assert_eq!(engine.stats().queries, 2);
//! assert_eq!(engine.stats().reuse_hits, 1); // only the first query allocated
//! ```

use std::collections::BinaryHeap;

use crate::bucket_queue::{bucket_delta, BucketQueue, HeapSlot};
use crate::csr::CsrGraph;
use crate::graph::VertexId;
use crate::landmarks::Landmarks;

const NO_VERTEX: u32 = u32::MAX;

/// Landmark columns the scratch buffer is pre-sized for by
/// [`DijkstraEngine::with_capacity_for`]; tables with more landmarks grow
/// the buffer once (one reuse miss) and stay.
const LANDMARK_SCRATCH_RESERVE: usize = 32;

/// Staged-edge budget of one gather cohort: a cohort stops accepting rows
/// once the scratch ring holds this many half-edges (the last row may
/// overshoot by its own length — the reservation in
/// [`DijkstraEngine::with_capacity_for`] accounts for that). Sized so the
/// staged `(target, weight)` lanes (~12 bytes/edge) stay L1/L2-resident.
const GATHER_RING_CAP: usize = 8192;

/// Row budget of one gather cohort, bounding the per-cohort row metadata.
const MAX_COHORT_ROWS: usize = 512;

/// How many staged edges ahead the batched kernel prefetches the
/// `dist`/`state` lanes during the filter pass — far enough to cover
/// DRAM latency at filter throughput, near enough to stay within the
/// already-staged (hence certainly-needed) candidates.
const PREFETCH_DISTANCE: usize = 8;

/// How many rows ahead of the committing row a borrowed row's packed
/// `(targets, weights)` head lines are prefetched. The targets hold the
/// *addresses* of the next row's `dist`/`state` prefetches, so they must
/// land a row earlier than the lanes they unlock; a few rows of lead
/// covers DRAM latency at commit throughput without outrunning L1.
const EDGE_PREFETCH_AHEAD: usize = 6;

/// [`RelaxKernel::Auto`] picks the batched kernel when the mean degree
/// (`2m / n`) reaches this value; below it, rows are too short for the
/// staging copy to pay for itself.
const AUTO_KERNEL_MEAN_DEGREE: f64 = 3.0;

/// Requests that the cache line holding `slice[index]` be pulled toward L1.
/// Bounds-checked and side-effect-free: prefetching cannot fault, cannot
/// write, and is ignored entirely on non-x86_64 targets — it only hides
/// memory latency for the load the filter pass will issue a few iterations
/// later.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn prefetch_read<T>(slice: &[T], index: usize) {
    if index < slice.len() {
        // Safety: the pointer is derived from a live slice and in bounds
        // (checked above); `_mm_prefetch` performs no memory access — it is
        // a hint with no architectural effect.
        #[allow(unsafe_code)]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(slice.as_ptr().add(index).cast());
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn prefetch_read<T>(_slice: &[T], _index: usize) {}

/// One drained cohort member awaiting its commit pass: the vertex, its
/// settled distance, where its gathered edges end in the scratch lanes
/// (scratch rows are contiguous: this row starts at the previous scratch
/// row's `end`; a *borrowed* row consumed no scratch and is re-read
/// straight from the packed CSR arrays at commit time), and its drain
/// position among the cohort's pops (stale pops included) — the lag term
/// that keeps `peak_frontier` bit-identical to the scalar path.
#[derive(Debug, Clone, Copy, Default)]
struct StagedRow {
    u: u32,
    d: f64,
    end: u32,
    pos: u32,
    borrowed: bool,
}

/// Gather phase of the batched kernel. A *clean* row — no deletions
/// pending anywhere and no overflow chain on `u` — is recorded as borrowed
/// and read straight from the packed arrays at commit time: copying it
/// would only add memory traffic. A dirty row's live half-edges — the
/// packed row filtered against the raw `liveness` bitmap when deletions
/// are pending, then the overflow chain, in exactly the scalar loop's
/// relax order — are appended to the contiguous scratch lanes. The
/// target's row is staged empty (the scalar loop breaks at its settle
/// without relaxing anything); returns whether `u` *is* the target, which
/// ends the drain. `staged_edges` accumulates the row length either way —
/// the cohort budget counts borrowed work too.
#[allow(clippy::too_many_arguments)]
fn stage_cohort_row(
    graph: &CsrGraph,
    liveness: &[u64],
    pending_deletions: bool,
    target: Option<u32>,
    gather_targets: &mut Vec<u32>,
    gather_weights: &mut Vec<f64>,
    rows: &mut Vec<StagedRow>,
    staged_edges: &mut usize,
    u: u32,
    d: f64,
    pos: u32,
) -> bool {
    let mut borrowed = false;
    if Some(u) != target {
        let (targets, weights) = graph.packed_neighbors(VertexId(u as usize));
        if !pending_deletions && !graph.has_overflow(VertexId(u as usize)) {
            *staged_edges += targets.len();
            borrowed = true;
        } else {
            let before = gather_targets.len();
            if pending_deletions {
                let ids = graph.packed_neighbor_ids(VertexId(u as usize));
                for i in 0..targets.len() {
                    let id = ids[i] as usize;
                    let dead = liveness
                        .get(id >> 6)
                        .is_some_and(|word| (word >> (id & 63)) & 1 == 1);
                    if !dead {
                        gather_targets.push(targets[i]);
                        gather_weights.push(weights[i]);
                    }
                }
            } else {
                gather_targets.extend_from_slice(targets);
                gather_weights.extend_from_slice(weights);
            }
            for (v, w) in graph.overflow_neighbors(VertexId(u as usize)) {
                gather_targets.push(v);
                gather_weights.push(w);
            }
            *staged_edges += gather_targets.len() - before;
        }
    }
    rows.push(StagedRow {
        u,
        d,
        end: gather_targets.len() as u32,
        pos,
        borrowed,
    });
    Some(u) == target
}

/// Aggregate counters of a [`DijkstraEngine`]; see [`DijkstraEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered since construction (or the last
    /// [`DijkstraEngine::reset_stats`]).
    pub queries: u64,
    /// Queries that ran entirely inside the existing workspace — no buffer
    /// grew, hence zero heap allocation. Always equal to `queries` for an
    /// engine created with [`DijkstraEngine::with_capacity_for`]; an engine
    /// sized on the fly reports the (few) growth queries as misses.
    pub reuse_hits: u64,
    /// Total heap pops across all queries, including stale lazy-deletion
    /// entries (the same accounting as the legacy free functions; bucket
    /// queue pops are counted here too).
    pub heap_pops: u64,
    /// Vertices settled (popped fresh and expanded) across all queries —
    /// always at most `heap_pops`. This is the work metric landmark (ALT)
    /// pruning shrinks: fewer settled vertices means a smaller explored
    /// ball for the same answer.
    pub settled_vertices: u64,
    /// Relaxations (and whole queries, when the source itself is pruned)
    /// discarded because the tentative distance — plus the landmark lower
    /// bound, when a [`Landmarks`] table is in play — exceeded the query
    /// bound. The visible counterpart of the bounded search's pruning
    /// power.
    pub pruned_by_bound: u64,
    /// Largest priority-queue length reached by any query (stale entries
    /// included — this is the memory high-water mark of the searches).
    pub peak_frontier: usize,
    /// Times the generation counter wrapped and the stamp workspace was
    /// explicitly reset (see [`DijkstraEngine::force_generation_wrap`]). The
    /// counter advances by 2 per query, so a wrap occurs roughly every 2³¹
    /// queries — routine for a long-running server, and harmless: the reset
    /// invalidates every stamp in `O(n)` and reuse stays sound.
    pub generation_wraps: u64,
    /// Counters of the batched gather → relax kernel (all zero while every
    /// query ran the scalar reference path); see [`RelaxKernel`].
    pub kernel: KernelStats,
}

/// Counters of the batched gather → relax kernel (see [`RelaxKernel`]):
/// how much of the relaxation work ran through the staged, prefetch-
/// pipelined path, and how sharp its branchless filter was. Purely
/// observability — the kernel never changes an answer, a settle order, or
/// any other [`EngineStats`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Adjacency rows staged and relaxed by the batched kernel (settled
    /// vertices that went through gather → filter → commit rather than the
    /// scalar loop).
    pub rows_batched: u64,
    /// Half-edges copied into the gather scratch ring across all batched
    /// rows (tombstoned half-edges are filtered out during the gather and
    /// never counted).
    pub edges_gathered: u64,
    /// Gathered candidates that survived the branchless filter and were
    /// handed to the exact relax step — `edges_gathered −
    /// candidates_committed` relaxations were discarded without a branch
    /// mispredict.
    pub candidates_committed: u64,
    /// How many staged edges ahead the kernel prefetches the `state` lane
    /// (0 until the batched kernel first runs; constant otherwise).
    pub prefetch_distance: usize,
}

impl KernelStats {
    /// Folds `other` into `self`: counters add, the prefetch distance (a
    /// configuration echo, not a count) takes the maximum. Used by pool and
    /// serving layers aggregating per-worker engines.
    pub fn merge(&mut self, other: &KernelStats) {
        self.rows_batched += other.rows_batched;
        self.edges_gathered += other.edges_gathered;
        self.candidates_committed += other.candidates_committed;
        self.prefetch_distance = self.prefetch_distance.max(other.prefetch_distance);
    }
}

/// Which priority queue a query runs on; see
/// [`DijkstraEngine::set_queue_policy`] and the [queue selection
/// rule](crate::bucket_queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Pick per query: the bucket queue for bounded queries whose
    /// `(bound, weight statistics)` pass [`crate::bucket_queue`]'s
    /// eligibility rule, the binary heap otherwise (unbounded searches,
    /// edgeless graphs, degenerate widths). Answers and settle order are
    /// bit-identical either way — this is purely a performance choice.
    #[default]
    Auto,
    /// Always the lazy-deletion binary heap (the reference queue).
    Heap,
}

/// Which relaxation kernel a query runs — the scalar reference loop (one
/// dependent `dist`/`state` load per half-edge) or the batched gather →
/// filter → commit kernel (whole same-cohort queue drains staged into a
/// scratch ring with software prefetch and branchless candidate
/// compaction). See [`DijkstraEngine::set_relax_kernel`].
///
/// Answers, settle order and every non-[`KernelStats`] counter are
/// bit-identical under every setting — like [`QueuePolicy`], this is purely
/// a performance choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxKernel {
    /// Pick per query: the batched kernel when adjacency rows are long
    /// enough to amortize the staging copy (mean degree `2m/n ≥ 3`) or when
    /// deletions are pending (the gather resolves liveness against the raw
    /// tombstone bitmap instead of per-edge calls), the scalar loop
    /// otherwise (short-row graphs, where staging overhead would exceed the
    /// memory-latency win).
    #[default]
    Auto,
    /// Always the scalar reference loop.
    Scalar,
    /// Always the batched gather → filter → commit kernel.
    Batched,
}

/// What a search loop needs from its priority queue. Implemented by the
/// lazy-deletion [`BinaryHeap`] and by [`BucketQueue`]; both pop in exactly
/// non-decreasing `(key, vertex)` order, which is why every engine answer is
/// bit-identical across queue implementations.
trait Frontier {
    fn push(&mut self, key: f64, vertex: u32);
    fn pop(&mut self) -> Option<(f64, u32)>;
    /// Pops the global minimum only when its key is strictly below
    /// `threshold` — the batched kernel's cohort drain, which collects every
    /// entry provably settleable in one pass without disturbing the exact
    /// pop order of the rest.
    fn pop_if_below(&mut self, threshold: f64) -> Option<(f64, u32)>;
    fn len(&self) -> usize;
}

impl Frontier for BinaryHeap<HeapSlot> {
    #[inline(always)]
    fn push(&mut self, key: f64, vertex: u32) {
        BinaryHeap::push(self, HeapSlot { dist: key, vertex });
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(f64, u32)> {
        BinaryHeap::pop(self).map(|slot| (slot.dist, slot.vertex))
    }

    #[inline(always)]
    fn pop_if_below(&mut self, threshold: f64) -> Option<(f64, u32)> {
        if self.peek()?.dist < threshold {
            BinaryHeap::pop(self).map(|slot| (slot.dist, slot.vertex))
        } else {
            None
        }
    }

    #[inline(always)]
    fn len(&self) -> usize {
        BinaryHeap::len(self)
    }
}

impl Frontier for BucketQueue {
    #[inline(always)]
    fn push(&mut self, key: f64, vertex: u32) {
        BucketQueue::push(self, key, vertex);
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(f64, u32)> {
        BucketQueue::pop(self)
    }

    #[inline(always)]
    fn pop_if_below(&mut self, threshold: f64) -> Option<(f64, u32)> {
        BucketQueue::pop_if_below(self, threshold)
    }

    #[inline(always)]
    fn len(&self) -> usize {
        BucketQueue::len(self)
    }
}

/// A lower bound on the remaining distance from a vertex to the query
/// target, consulted by the relaxation loop for pruning only — never for
/// ordering — so answers stay bit-identical with and without one (see
/// [`crate::landmarks`]).
trait Heuristic {
    /// Whether [`Heuristic::estimate`] can return anything but `0.0`; lets
    /// the no-heuristic search compile the pruning branch away.
    const ACTIVE: bool;
    fn estimate(&self, v: usize) -> f64;
}

/// The plain Dijkstra searches: no remaining-distance information.
struct NoHeuristic;

impl Heuristic for NoHeuristic {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn estimate(&self, _v: usize) -> f64 {
        0.0
    }
}

/// The ALT bound: max over landmarks of `|d(l, v) − d(l, target)|`, with
/// the target column pre-copied into the engine's scratch buffer.
/// `INFINITY` when some landmark proves `v` and the target disconnected.
struct LandmarkHeuristic<'a> {
    /// Vertex-major distance table, `table[v * k + l]`.
    table: &'a [f64],
    /// Distances from every landmark to the target (`k` entries).
    target_column: &'a [f64],
}

impl Heuristic for LandmarkHeuristic<'_> {
    const ACTIVE: bool = true;

    #[inline(always)]
    fn estimate(&self, v: usize) -> f64 {
        let k = self.target_column.len();
        let row = &self.table[v * k..(v + 1) * k];
        let mut h = 0.0f64;
        for (&dv, &dt) in row.iter().zip(self.target_column) {
            if dv.is_finite() && dt.is_finite() {
                let diff = (dv - dt).abs();
                if diff > h {
                    h = diff;
                }
            } else if dv.is_finite() != dt.is_finite() {
                // Exactly one side reachable from this landmark: the pair
                // is disconnected and `v` can never reach the target.
                return f64::INFINITY;
            }
        }
        h
    }
}

/// A reusable Dijkstra workspace over [`CsrGraph`]s.
///
/// One engine serves any number of graphs (buffers are sized to the largest
/// vertex count seen). All query methods take `&mut self` because they reuse
/// the workspace; results referencing the workspace ([`EngineTree`],
/// [`DijkstraEngine::ball`]) borrow the engine until the next query.
#[derive(Debug, Clone, Default)]
pub struct DijkstraEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Per-vertex query state, generation-encoded (generations advance by 2):
    /// `state[v] < generation` — untouched this query; `== generation` —
    /// touched (in the heap); `== generation + 1` — settled. One load answers
    /// both the "already settled?" and "already touched?" questions.
    state: Vec<u32>,
    /// Lazy-deletion heap: improvements push a fresh entry, superseded
    /// entries are skipped at pop time via `state`. The buffer is retained
    /// across queries.
    heap: BinaryHeap<HeapSlot>,
    /// The bounded-query bucket queue (see [`crate::bucket_queue`]); its
    /// buffers are likewise retained across queries.
    bucket: BucketQueue,
    /// Per-query landmark target column (see [`Landmarks`]); retained
    /// across queries like every other buffer.
    h_scratch: Vec<f64>,
    /// Settle order of the last collecting query (see [`DijkstraEngine::ball`]).
    ball_buf: Vec<(VertexId, f64)>,
    /// Batched-kernel gather scratch: the staged `(target, weight)` lanes of
    /// the current cohort, contiguous across rows so the filter pass can
    /// prefetch straight through row boundaries. Retained across queries
    /// like every other buffer (taken/restored around each batched search).
    gather_targets: Vec<u32>,
    gather_weights: Vec<f64>,
    /// Per-row metadata of the current cohort (see [`StagedRow`]).
    rows: Vec<StagedRow>,
    /// Candidate indices (into the gather lanes) that survived the
    /// branchless filter of one row, awaiting the exact relax step.
    commit: Vec<u32>,
    queue_policy: QueuePolicy,
    relax_kernel: RelaxKernel,
    generation: u32,
    stats: EngineStats,
    last_frontier: usize,
}

impl DijkstraEngine {
    /// Creates an engine with an empty workspace; queries size it on demand
    /// (the growth queries are reported as reuse misses).
    pub fn new() -> Self {
        DijkstraEngine::default()
    }

    /// Creates an engine pre-sized for graphs of `num_vertices` vertices
    /// when the edge count is not known, assuming a sparse, spanner-like
    /// graph with `m ≈ n` — it routes through
    /// [`DijkstraEngine::with_capacity_for`] with `num_edges =
    /// num_vertices`, reserving the `2m + 2` heap-push bound for that `m`.
    ///
    /// The earlier heuristic reserved for `m = n/2`, which underestimates
    /// every connected graph (even a spanning tree has `m = n − 1`), so the
    /// first query on tree-like graphs could reallocate mid-search. Queries
    /// on graphs with more than `num_vertices` edges may still grow the
    /// heap once; callers that know `m` should use
    /// [`DijkstraEngine::with_capacity_for`] directly for the hard
    /// zero-allocation guarantee.
    pub fn with_capacity(num_vertices: usize) -> Self {
        DijkstraEngine::with_capacity_for(num_vertices, num_vertices)
    }

    /// Creates an engine pre-sized for graphs of up to `num_vertices`
    /// vertices and `num_edges` edges: the heap buffer is reserved for
    /// `2·num_edges + 2` entries, an upper bound on the pushes of any single
    /// query (each settled vertex relaxes each incident half-edge at most
    /// once). Such an engine performs **zero heap allocations on every
    /// query** — including the first — which is the contract the greedy
    /// construction asserts through its workspace-reuse counter.
    pub fn with_capacity_for(num_vertices: usize, num_edges: usize) -> Self {
        let mut e = DijkstraEngine::new();
        e.grow(num_vertices);
        e.reserve_heap(2 * num_edges + 2);
        e.bucket.reserve(2 * num_edges + 2);
        if e.h_scratch.capacity() < LANDMARK_SCRATCH_RESERVE {
            e.h_scratch.reserve_exact(LANDMARK_SCRATCH_RESERVE);
        }
        // Batched-kernel scratch: a cohort stops accepting rows at
        // GATHER_RING_CAP staged edges but the last row may overshoot by its
        // own length, bounded by the longest adjacency row (≤ 2m half-edges).
        let lane_cap = GATHER_RING_CAP + 2 * num_edges + 2;
        if e.gather_targets.capacity() < lane_cap {
            e.gather_targets.reserve_exact(lane_cap);
        }
        if e.gather_weights.capacity() < lane_cap {
            e.gather_weights.reserve_exact(lane_cap);
        }
        if e.rows.capacity() < MAX_COHORT_ROWS + 1 {
            e.rows.reserve_exact(MAX_COHORT_ROWS + 1);
        }
        // The commit buffer holds at most one row's candidates.
        if e.commit.capacity() < 2 * num_edges + 2 {
            e.commit.reserve_exact(2 * num_edges + 2);
        }
        e
    }

    /// Sets the queue-selection policy for subsequent queries (default:
    /// [`QueuePolicy::Auto`]). Answers are bit-identical under every
    /// policy; this only trades constant factors.
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        self.queue_policy = policy;
    }

    /// The current queue-selection policy.
    pub fn queue_policy(&self) -> QueuePolicy {
        self.queue_policy
    }

    /// Sets the relaxation-kernel policy for subsequent queries (default:
    /// [`RelaxKernel::Auto`]). Answers, settle order and every
    /// non-[`KernelStats`] counter are bit-identical under every setting;
    /// this only trades constant factors.
    pub fn set_relax_kernel(&mut self, kernel: RelaxKernel) {
        self.relax_kernel = kernel;
    }

    /// The current relaxation-kernel policy.
    pub fn relax_kernel(&self) -> RelaxKernel {
        self.relax_kernel
    }

    /// Resolves [`RelaxKernel::Auto`] for one query on `graph`: batched
    /// when deletions are pending (the gather's bitmap filter beats
    /// per-edge liveness calls) or the mean degree reaches
    /// [`AUTO_KERNEL_MEAN_DEGREE`] (rows long enough to amortize staging).
    fn use_batched_kernel(&self, graph: &CsrGraph) -> bool {
        match self.relax_kernel {
            RelaxKernel::Scalar => false,
            RelaxKernel::Batched => true,
            RelaxKernel::Auto => {
                let n = graph.num_vertices();
                n > 0
                    && (graph.has_pending_deletions()
                        || 2.0 * graph.num_edges() as f64 >= AUTO_KERNEL_MEAN_DEGREE * n as f64)
            }
        }
    }

    /// The combined capacity of the batched kernel's scratch buffers —
    /// compared before and after a query for the workspace-reuse
    /// accounting, like [`BucketQueue::capacity_signature`].
    fn gather_capacity_signature(&self) -> usize {
        self.gather_targets.capacity()
            + self.gather_weights.capacity()
            + self.rows.capacity()
            + self.commit.capacity()
    }

    /// Ensures the heap buffer can hold `entries` entries without
    /// reallocating.
    pub fn reserve_heap(&mut self, entries: usize) {
        if self.heap.capacity() < entries {
            self.heap.reserve(entries - self.heap.len());
        }
    }

    /// The engine's aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the aggregate counters (the workspace is kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn grow(&mut self, n: usize) {
        self.dist.resize(n, f64::INFINITY);
        self.parent.resize(n, NO_VERTEX);
        self.state.resize(n, 0);
        if self.ball_buf.capacity() < n {
            // `reserve_exact` takes *additional* elements beyond the current
            // length, so subtract the length, not the capacity.
            self.ball_buf.reserve_exact(n - self.ball_buf.len());
        }
    }

    /// Generation values at or above this threshold trigger a stamp reset on
    /// the next query. Generations advance by 2, so the last generation a
    /// query may use before the reset is `WRAP_THRESHOLD + 1 = u32::MAX - 2`
    /// (its settled stamp), leaving `u32::MAX` itself unused.
    const WRAP_THRESHOLD: u32 = u32::MAX - 3;

    /// Explicit wrap-time workspace reset: invalidates every generation
    /// stamp (`O(n)`) and restarts the counter at zero, so the stamps of all
    /// previous queries read as "untouched". Called automatically by
    /// [`DijkstraEngine::begin_query`] when the counter approaches
    /// `u32::MAX`; a server answering billions of queries crosses that
    /// boundary routinely, and reuse must stay sound across it
    /// ([`EngineStats::generation_wraps`] counts the crossings).
    fn reset_generation_stamps(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0);
        self.generation = 0;
        self.stats.generation_wraps += 1;
    }

    /// Forces the next query to run the generation-wrap reset path, as if
    /// ~2³¹ queries had already been answered. The workspace stays valid —
    /// this only fast-forwards the stamp counter.
    ///
    /// Exposed so long-running-process tests can exercise the wrap without
    /// issuing billions of queries; harmless (but pointless) in production.
    #[doc(hidden)]
    pub fn force_generation_wrap(&mut self) {
        self.generation = Self::WRAP_THRESHOLD;
    }

    /// Returns `true` if the query had to grow the vertex-indexed buffers.
    fn begin_query(&mut self, n: usize) -> bool {
        self.stats.queries += 1;
        let grew = n > self.dist.len();
        if grew {
            self.grow(n);
        }
        // Generations advance by 2: `generation` marks touched, `generation
        // + 1` marks settled (see the `state` field).
        if self.generation >= Self::WRAP_THRESHOLD {
            self.reset_generation_stamps();
        }
        self.generation += 2;
        self.heap.clear();
        self.ball_buf.clear();
        self.last_frontier = 0;
        grew
    }

    /// Branchless filter pass of the batched kernel over one row's
    /// `(targets, weights)` candidates: resolves every candidate whose
    /// scalar outcome is already decidable from `dist`/`state` alone.
    /// Settled targets and touched-no-improvement-within-bound candidates
    /// are silent scalar skips (no counter) — dropped. Out-of-bound
    /// candidates are scalar prunes — dropped here with the exact
    /// `pruned_by_bound` increment the scalar relax would have made (`nd`
    /// is the same `d + w` both compute, so the comparison is
    /// bit-identical). Only improving-within-bound survivors land in
    /// `commit` (as indices into the row), for the exact relax to re-check
    /// and heuristic-prune. The `state` lane of the candidate
    /// [`PREFETCH_DISTANCE`] ahead is prefetched while filtering (`dist`
    /// stays behind the untouched-candidate branch — see below).
    #[inline(always)]
    fn filter_row(
        &mut self,
        targets: &[u32],
        weights: &[f64],
        d: f64,
        gen: u32,
        bound: f64,
        commit: &mut Vec<u32>,
    ) {
        commit.clear();
        commit.resize(targets.len(), 0);
        let mut kept = 0usize;
        let mut pruned = 0u64;
        for j in 0..targets.len() {
            let ahead = j + PREFETCH_DISTANCE;
            if ahead < targets.len() {
                prefetch_read(&self.state, targets[ahead] as usize);
            }
            let v = targets[j] as usize;
            let nd = d + weights[j];
            let s = self.state[v];
            let live = s != gen + 1;
            let within = nd <= bound;
            pruned += (live && !within) as u64;
            // The `dist` load must stay behind a real branch: an untouched
            // candidate (`s < gen`, the common case) improves by definition,
            // and a speculation-free `dist[v]` read for every candidate
            // doubles the kernel's random-line traffic — enough to push the
            // commit loop from latency-bound to bandwidth-bound.
            let mut keep = live && within;
            if keep && s >= gen {
                keep = nd < self.dist[v];
            }
            commit[kept] = j as u32;
            kept += keep as usize;
        }
        self.stats.pruned_by_bound += pruned;
        commit.truncate(kept);
        self.stats.kernel.edges_gathered += targets.len() as u64;
        self.stats.kernel.candidates_committed += kept as u64;
    }

    /// Relaxes the half-edge `u → v` with weight `w`, given `u`'s settled
    /// distance `d`. The single `state` load decides settled / untouched /
    /// in-queue; improvements push a fresh queue entry (lazy deletion).
    /// `TRACK_PARENTS` is off for bounded-distance and ball queries (nothing
    /// reads parents there), which removes a random store per improvement
    /// from the greedy hot loop. With an active heuristic, an improvement
    /// whose `distance + lower bound` exceeds the query bound is dropped
    /// instead of pushed — pruning only; queue keys stay plain distances,
    /// so the settle order of surviving vertices is untouched.
    ///
    /// `lag` is the number of queue entries the batched kernel has drained
    /// ahead of this row's logical position (0 on the scalar path): the
    /// scalar reference would still hold those entries when this push
    /// happens, so `peak_frontier` adds them back to stay bit-identical.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn relax<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        u: u32,
        v: usize,
        w: f64,
        d: f64,
        gen: u32,
        bound: f64,
        lag: usize,
    ) {
        let s = self.state[v];
        if s == gen + 1 {
            return; // settled
        }
        let nd = d + w;
        // Entries beyond the bound can never contribute to a bounded answer.
        if nd > bound {
            self.stats.pruned_by_bound += 1;
            return;
        }
        if s < gen || nd < self.dist[v] {
            if H::ACTIVE {
                let rem = h.estimate(v);
                if rem == f64::INFINITY || nd + rem > bound {
                    self.stats.pruned_by_bound += 1;
                    return;
                }
            }
            self.state[v] = gen;
            self.dist[v] = nd;
            if TRACK_PARENTS {
                self.parent[v] = u;
            }
            queue.push(nd, v as u32);
            self.last_frontier = self.last_frontier.max(queue.len() + lag);
        }
    }

    /// Relaxes every live half-edge of the settled vertex `u` — the packed
    /// row (tombstone-filtered only while deletions are pending) followed by
    /// the overflow chain. The scalar search's single relaxation body; the
    /// pending-deletions and fast paths share it so they cannot drift.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn relax_row<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        graph: &CsrGraph,
        u: u32,
        d: f64,
        gen: u32,
        bound: f64,
        check_live: bool,
    ) {
        // Packed half-edges: two parallel slices, no per-neighbor branch on
        // the deletion-free fast path (`ids` is `None` there and the
        // liveness test constant-folds away).
        let (targets, weights) = graph.packed_neighbors(VertexId(u as usize));
        let ids = check_live.then(|| graph.packed_neighbor_ids(VertexId(u as usize)));
        for i in 0..targets.len() {
            if let Some(ids) = ids {
                if !graph.is_edge_id_live(ids[i]) {
                    continue;
                }
            }
            self.relax::<TRACK_PARENTS, Q, H>(
                queue,
                h,
                u,
                targets[i] as usize,
                weights[i],
                d,
                gen,
                bound,
                0,
            );
        }
        // Live overflow half-edges appended since the last re-pack (short;
        // the iterator itself skips tombstoned entries).
        for (v, w) in graph.overflow_neighbors(VertexId(u as usize)) {
            self.relax::<TRACK_PARENTS, Q, H>(queue, h, u, v as usize, w, d, gen, bound, 0);
        }
    }

    /// The shared search loop, monomorphized per queue implementation and
    /// heuristic. Settles vertices in non-decreasing `(distance, vertex)`
    /// order; never pushes a vertex whose tentative distance (plus the
    /// heuristic's lower bound on the remaining distance, when active)
    /// exceeds `bound`; stops early once `target` settles. When `collect`
    /// is set, the settle order is recorded in `ball_buf`.
    ///
    /// `source_h` is the heuristic's estimate at the source: if it already
    /// exceeds the bound (or proves the pair disconnected), the search is
    /// over before it starts and the source is never touched.
    #[allow(clippy::too_many_arguments)]
    fn search<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        graph: &CsrGraph,
        source: usize,
        target: Option<u32>,
        bound: f64,
        collect: bool,
        source_h: f64,
    ) {
        if H::ACTIVE && (source_h == f64::INFINITY || source_h > bound) {
            self.stats.pruned_by_bound += 1;
            return;
        }
        // Tombstoned half-edges linger in the packed arrays until the next
        // re-pack; only then does the scan pay for the liveness check.
        let pending_deletions = graph.has_pending_deletions();
        let gen = self.generation;
        self.dist[source] = 0.0;
        if TRACK_PARENTS {
            self.parent[source] = NO_VERTEX;
        }
        self.state[source] = gen;
        queue.push(0.0, source as u32);
        self.last_frontier = self.last_frontier.max(queue.len());
        while let Some((d, u)) = queue.pop() {
            self.stats.heap_pops += 1;
            if self.state[u as usize] == gen + 1 {
                continue; // stale lazy-deletion entry
            }
            self.state[u as usize] = gen + 1;
            self.stats.settled_vertices += 1;
            if collect {
                self.ball_buf.push((VertexId(u as usize), d));
            }
            if Some(u) == target {
                break;
            }
            self.relax_row::<TRACK_PARENTS, Q, H>(
                queue,
                h,
                graph,
                u,
                d,
                gen,
                bound,
                pending_deletions,
            );
        }
    }

    /// The batched gather → filter → commit search: behaviorally identical
    /// to [`DijkstraEngine::search`] — every answer, settle order, and
    /// non-[`KernelStats`] counter is bit-identical — but restructured to
    /// hide memory latency:
    ///
    /// 1. **Drain.** Pop a *cohort*: the popped minimum plus every further
    ///    entry whose key is strictly below `key₀ + min live weight`. Any
    ///    such entry is provably settleable now — every relaxation out of a
    ///    cohort member pushes a key `≥ key₀ + min weight`, so nothing
    ///    pushed during the cohort's processing can precede (or tie) a
    ///    cohort member in the scalar pop order, and nothing can supersede
    ///    one. Stale entries are recognized in O(1) (`settled`, or key
    ///    above the vertex's current distance — within one generation every
    ///    queued key for a vertex is distinct and the freshest equals its
    ///    distance) and dropped exactly like the scalar loop would.
    /// 2. **Gather.** Record each cohort member's row. A clean row (no
    ///    pending deletions, no overflow chain) is *borrowed* — the commit
    ///    pass reads it straight from the packed arrays, copying nothing. A
    ///    dirty row's live half-edges — tombstones filtered against the raw
    ///    liveness bitmap, then the overflow neighbors — are copied into
    ///    the contiguous scratch lanes so the filter sees one dense stream.
    /// 3. **Commit.** Per row, in drain order: settle the vertex, then run
    ///    a branchless filter over its staged candidates (prefetching the
    ///    `dist`/`state` lanes [`PREFETCH_DISTANCE`] staged edges ahead,
    ///    across row boundaries), resolving every candidate whose scalar
    ///    outcome is decidable from `dist`/`state` alone — silent skips are
    ///    dropped, bound-prunes are dropped *and counted* exactly as the
    ///    scalar relax counts them — and compacting the improving
    ///    within-bound survivors into the commit buffer; then relax the
    ///    survivors through the exact scalar step (which re-checks
    ///    everything and applies the heuristic prune). Dropped candidates
    ///    are provably scalar no-ops (or exact counted prunes) and stay so
    ///    under intra-row mutation: distances only decrease, nothing
    ///    settles mid-row, and the bound comparison is static.
    #[allow(clippy::too_many_arguments)]
    fn search_batched<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        graph: &CsrGraph,
        source: usize,
        target: Option<u32>,
        bound: f64,
        collect: bool,
        source_h: f64,
    ) {
        if H::ACTIVE && (source_h == f64::INFINITY || source_h > bound) {
            self.stats.pruned_by_bound += 1;
            return;
        }
        let pending_deletions = graph.has_pending_deletions();
        let liveness = graph.edge_liveness_words();
        let gen = self.generation;
        self.dist[source] = 0.0;
        if TRACK_PARENTS {
            self.parent[source] = NO_VERTEX;
        }
        self.state[source] = gen;
        queue.push(0.0, source as u32);
        self.last_frontier = self.last_frontier.max(queue.len());
        // Cohort slack: every queued key strictly below `popped key + slack`
        // can be drained alongside the popped minimum (see the doc comment).
        // `min_live_weight` is a lower bound on every live weight between
        // re-packs, which is exactly what the proof needs; a degenerate 0
        // just degrades to single-row cohorts.
        let slack = graph.min_live_weight().unwrap_or(0.0).max(0.0);
        self.stats.kernel.prefetch_distance = PREFETCH_DISTANCE;
        let mut gather_targets = std::mem::take(&mut self.gather_targets);
        let mut gather_weights = std::mem::take(&mut self.gather_weights);
        let mut rows = std::mem::take(&mut self.rows);
        let mut commit = std::mem::take(&mut self.commit);
        'outer: while let Some((d0, u0)) = queue.pop() {
            self.stats.heap_pops += 1;
            if self.state[u0 as usize] == gen + 1 {
                continue; // stale lazy-deletion entry
            }
            // ---- drain + gather ----
            rows.clear();
            gather_targets.clear();
            gather_weights.clear();
            let threshold = d0 + slack;
            // Drain position of the most recent pop, stale pops included —
            // mirrors the scalar loop's pop sequence for lag accounting.
            let mut drained = 0u32;
            let mut staged_edges = 0usize;
            let mut hit_target = stage_cohort_row(
                graph,
                liveness,
                pending_deletions,
                target,
                &mut gather_targets,
                &mut gather_weights,
                &mut rows,
                &mut staged_edges,
                u0,
                d0,
                drained,
            );
            while !hit_target && rows.len() < MAX_COHORT_ROWS && staged_edges < GATHER_RING_CAP {
                let Some((d, u)) = queue.pop_if_below(threshold) else {
                    break;
                };
                self.stats.heap_pops += 1;
                drained += 1;
                if self.state[u as usize] == gen + 1 || d > self.dist[u as usize] {
                    continue; // stale lazy-deletion entry
                }
                hit_target = stage_cohort_row(
                    graph,
                    liveness,
                    pending_deletions,
                    target,
                    &mut gather_targets,
                    &mut gather_weights,
                    &mut rows,
                    &mut staged_edges,
                    u,
                    d,
                    drained,
                );
            }
            // ---- commit ----
            // Two-stage software pipeline over the cohort. A borrowed row's
            // packed `(targets, weights)` lines are themselves cold (staging
            // only read `row_offsets` for its length), and the next row's
            // `dist`/`state` prefetch addresses come FROM its targets — a
            // serial miss chain if fetched on demand. Knowing every cohort
            // member up front severs it: the edge lines of row
            // `r + EDGE_PREFETCH_AHEAD` are requested while row `r` commits,
            // so by the time row `r+1`'s lane priming needs its target ids
            // they are already in cache. Scratch rows skip the edge stage —
            // their lanes were written during the drain and are still hot.
            for row in rows.iter().take(EDGE_PREFETCH_AHEAD) {
                if row.borrowed {
                    let (t, w) = graph.packed_neighbors(VertexId(row.u as usize));
                    prefetch_read(t, 0);
                    prefetch_read(w, 0);
                    prefetch_read(w, 8);
                }
            }
            let mut start = 0usize;
            for r in 0..rows.len() {
                if let Some(ahead) = rows.get(r + EDGE_PREFETCH_AHEAD) {
                    if ahead.borrowed {
                        let (t, w) = graph.packed_neighbors(VertexId(ahead.u as usize));
                        prefetch_read(t, 0);
                        prefetch_read(w, 0);
                        prefetch_read(w, 8);
                    }
                }
                let StagedRow {
                    u,
                    d,
                    end,
                    pos,
                    borrowed,
                } = rows[r];
                let end = end as usize;
                self.state[u as usize] = gen + 1;
                self.stats.settled_vertices += 1;
                if collect {
                    self.ball_buf.push((VertexId(u as usize), d));
                }
                if Some(u) == target {
                    break 'outer;
                }
                self.stats.kernel.rows_batched += 1;
                // Prime the `state` lanes two rows ahead while this row is
                // filtered and relaxed: a two-row lead covers the lanes'
                // load latency even once the commit loop itself runs at
                // prefetched speed, yet stays short enough that the lines
                // are never evicted before use (staging-time prefetch with
                // cohort-scale lead measurably thrashes L1 on wide
                // frontiers). A staged target row is empty, so it primes
                // nothing.
                if let Some(next) = rows.get(r + 2) {
                    let head = if next.borrowed {
                        graph.packed_neighbors(VertexId(next.u as usize)).0
                    } else {
                        &gather_targets[rows[r + 1].end as usize..next.end as usize]
                    };
                    // `state` only: most candidates are untouched, so their
                    // `dist` lines are never read — prefetching them would
                    // waste half the kernel's memory bandwidth.
                    for &v in head.iter().take(2 * PREFETCH_DISTANCE) {
                        prefetch_read(&self.state, v as usize);
                    }
                }
                // The scalar reference has not yet popped the entries this
                // cohort drained after row `r`'s own pop; its queue is that
                // much longer when these pushes happen.
                let lag = (drained - pos) as usize;
                if borrowed {
                    let (targets, weights) = graph.packed_neighbors(VertexId(u as usize));
                    self.filter_row(targets, weights, d, gen, bound, &mut commit);
                    for &j in &commit {
                        let j = j as usize;
                        self.relax::<TRACK_PARENTS, Q, H>(
                            queue,
                            h,
                            u,
                            targets[j] as usize,
                            weights[j],
                            d,
                            gen,
                            bound,
                            lag,
                        );
                    }
                } else {
                    self.filter_row(
                        &gather_targets[start..end],
                        &gather_weights[start..end],
                        d,
                        gen,
                        bound,
                        &mut commit,
                    );
                    for &j in &commit {
                        let j = start + j as usize;
                        self.relax::<TRACK_PARENTS, Q, H>(
                            queue,
                            h,
                            u,
                            gather_targets[j] as usize,
                            gather_weights[j],
                            d,
                            gen,
                            bound,
                            lag,
                        );
                    }
                    start = end;
                }
            }
        }
        self.gather_targets = gather_targets;
        self.gather_weights = gather_weights;
        self.rows = rows;
        self.commit = commit;
    }

    /// Routes one monomorphized search through the scalar or batched
    /// kernel; `batched` is resolved once per query by
    /// [`DijkstraEngine::use_batched_kernel`].
    #[allow(clippy::too_many_arguments)]
    fn search_dispatch<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        batched: bool,
        queue: &mut Q,
        h: &H,
        graph: &CsrGraph,
        source: usize,
        target: Option<u32>,
        bound: f64,
        collect: bool,
        source_h: f64,
    ) {
        if batched {
            self.search_batched::<TRACK_PARENTS, Q, H>(
                queue, h, graph, source, target, bound, collect, source_h,
            );
        } else {
            self.search::<TRACK_PARENTS, Q, H>(
                queue, h, graph, source, target, bound, collect, source_h,
            );
        }
    }

    /// Query entry point: validates, advances the generation, resolves the
    /// queue (per [`QueuePolicy`]) and the landmark heuristic, runs the
    /// monomorphized search, and keeps the workspace-reuse accounting (a
    /// query is a reuse hit only if **no** buffer — vertex arrays, either
    /// queue, or the landmark scratch — grew).
    fn run_query<const TRACK_PARENTS: bool>(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: Option<VertexId>,
        bound: f64,
        collect: bool,
        landmarks: Option<&Landmarks>,
    ) {
        let n = graph.num_vertices();
        assert!(source.index() < n, "source vertex out of range");
        if let Some(t) = target {
            assert!(t.index() < n, "target vertex out of range");
        }
        let target = target.map(|t| t.index() as u32);
        // Resolve the heuristic first: the target column is copied into the
        // scratch buffer, whose growth counts as a reuse miss like any
        // other buffer's.
        let mut scratch = std::mem::take(&mut self.h_scratch);
        let lm = match (landmarks, target) {
            (Some(lm), Some(_)) if !lm.is_empty() => Some(lm),
            _ => None,
        };
        let mut grew = false;
        if let (Some(lm), Some(t)) = (lm, target) {
            if scratch.capacity() < lm.len() {
                grew = true;
            }
            lm.copy_target_column(t as usize, &mut scratch);
        }
        grew |= self.begin_query(n);
        let s = source.index();
        let delta = match self.queue_policy {
            QueuePolicy::Auto => bucket_delta(graph, bound),
            QueuePolicy::Heap => None,
        };
        let batched = self.use_batched_kernel(graph);
        let gather_cap = self.gather_capacity_signature();
        let reused = match (delta, lm) {
            (None, None) => {
                let mut heap = std::mem::take(&mut self.heap);
                let cap = heap.capacity();
                self.search_dispatch::<TRACK_PARENTS, _, _>(
                    batched,
                    &mut heap,
                    &NoHeuristic,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    0.0,
                );
                let ok = heap.capacity() == cap;
                self.heap = heap;
                ok
            }
            (Some(delta), None) => {
                let mut bucket = std::mem::take(&mut self.bucket);
                bucket.begin(delta, bound);
                let cap = bucket.capacity_signature();
                self.search_dispatch::<TRACK_PARENTS, _, _>(
                    batched,
                    &mut bucket,
                    &NoHeuristic,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    0.0,
                );
                let ok = bucket.capacity_signature() == cap;
                self.bucket = bucket;
                ok
            }
            (None, Some(lm)) => {
                let h = LandmarkHeuristic {
                    table: lm.table(),
                    target_column: &scratch,
                };
                let source_h = h.estimate(s);
                let mut heap = std::mem::take(&mut self.heap);
                let cap = heap.capacity();
                self.search_dispatch::<TRACK_PARENTS, _, _>(
                    batched, &mut heap, &h, graph, s, target, bound, collect, source_h,
                );
                let ok = heap.capacity() == cap;
                self.heap = heap;
                ok
            }
            (Some(delta), Some(lm)) => {
                let h = LandmarkHeuristic {
                    table: lm.table(),
                    target_column: &scratch,
                };
                let source_h = h.estimate(s);
                let mut bucket = std::mem::take(&mut self.bucket);
                bucket.begin(delta, bound);
                let cap = bucket.capacity_signature();
                self.search_dispatch::<TRACK_PARENTS, _, _>(
                    batched,
                    &mut bucket,
                    &h,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    source_h,
                );
                let ok = bucket.capacity_signature() == cap;
                self.bucket = bucket;
                ok
            }
        };
        let reused = reused && self.gather_capacity_signature() == gather_cap;
        self.h_scratch = scratch;
        self.stats.peak_frontier = self.stats.peak_frontier.max(self.last_frontier);
        if !grew && reused {
            self.stats.reuse_hits += 1;
        }
    }

    /// Distance between `source` and `target` if it is at most `bound`,
    /// otherwise `None` — the greedy spanner's per-candidate query, with
    /// search cost proportional to the ball of radius `bound`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Option<f64> {
        self.bounded_distance_with_frontier(graph, source, target, bound)
            .0
    }

    /// Like [`DijkstraEngine::bounded_distance`], additionally reporting the
    /// peak priority-queue length of this query.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance_with_frontier(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> (Option<f64>, usize) {
        self.run_query::<false>(graph, source, Some(target), bound, false, None);
        (self.extract_target(target, bound), self.last_frontier)
    }

    /// Like [`DijkstraEngine::bounded_distance`], additionally pruning the
    /// search with a [`Landmarks`] table: vertices whose tentative distance
    /// plus max-over-landmarks triangle lower bound exceeds `bound` are never
    /// pushed. The pruning is answer-invariant — the result is bit-identical
    /// to [`DijkstraEngine::bounded_distance`] for every landmark set — it
    /// only shrinks the explored ball.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range, if the table's vertex count
    /// differs from the graph's, or if the table's epoch stamp does not
    /// match the graph (stale landmark tables must be rebuilt, never
    /// consulted).
    pub fn bounded_distance_landmarked(
        &mut self,
        graph: &CsrGraph,
        landmarks: &Landmarks,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Option<f64> {
        assert_eq!(
            landmarks.num_vertices(),
            graph.num_vertices(),
            "landmark table was built over a different vertex count"
        );
        assert_eq!(
            landmarks.epoch(),
            graph.epoch(),
            "landmark table is stale; rebuild it after graph mutations"
        );
        self.run_query::<false>(graph, source, Some(target), bound, false, Some(landmarks));
        self.extract_target(target, bound)
    }

    /// Reads the bounded-distance answer for `target` out of the workspace
    /// after a query: settled this generation and within the bound.
    #[inline]
    fn extract_target(&self, target: VertexId, bound: f64) -> Option<f64> {
        let t = target.index();
        if self.state[t] == self.generation + 1 && self.dist[t] <= bound {
            Some(self.dist[t])
        } else {
            None
        }
    }

    /// Runs a full single-source search and returns a view of the resulting
    /// shortest-path tree. The view borrows the workspace — it is valid until
    /// the next query — and allocates only in
    /// [`EngineTree::path_to`] (which builds the returned path).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        source: VertexId,
    ) -> EngineTree<'a> {
        self.run_query::<true>(graph, source, None, f64::INFINITY, false, None);
        EngineTree {
            num_vertices: graph.num_vertices(),
            engine: self,
            source,
        }
    }

    /// Returns every vertex within graph distance `radius` of `source` with
    /// its distance, in non-decreasing `(distance, vertex)` order (the source
    /// itself first, at distance 0). The slice borrows the engine's settle
    /// buffer and is valid until the next query.
    ///
    /// **Tie handling.** Vertices at equal distance appear in ascending
    /// vertex-id order. This holds for *every* queue implementation the
    /// engine selects (binary heap and bucket queue alike): both pop in
    /// exact `(distance, vertex)` order, so the settle order — and therefore
    /// this slice, and any [`SptTree::k_nearest`] truncation derived from
    /// it — is identical across [`QueuePolicy`] settings.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `radius` is negative.
    pub fn ball(&mut self, graph: &CsrGraph, source: VertexId, radius: f64) -> &[(VertexId, f64)] {
        assert!(radius >= 0.0, "ball radius must be non-negative");
        self.run_query::<false>(graph, source, None, radius, true, None);
        &self.ball_buf
    }

    /// Epoch-checked [`DijkstraEngine::bounded_distance`]: the caller passes
    /// the epoch its view of `graph` was stamped at
    /// ([`CsrGraph::epoch`]), and the engine **refuses to answer against a
    /// mutated graph** — a stale stamp is a typed error, never a silent
    /// answer computed over data the caller has not seen.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch. The workspace is untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn checked_bounded_distance(
        &mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Result<Option<f64>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.bounded_distance(graph, source, target, bound))
    }

    /// Epoch-checked [`DijkstraEngine::shortest_path_tree`]; see
    /// [`DijkstraEngine::checked_bounded_distance`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn checked_shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
    ) -> Result<EngineTree<'a>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.shortest_path_tree(graph, source))
    }
}

/// A borrowed view of the last [`DijkstraEngine::shortest_path_tree`] result.
#[derive(Debug)]
pub struct EngineTree<'a> {
    engine: &'a DijkstraEngine,
    source: VertexId,
    /// Vertex count of the queried graph (the workspace may be larger).
    num_vertices: usize,
}

impl EngineTree<'_> {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let i = v.index();
        (self.engine.state[i] >= self.engine.generation).then(|| self.engine.dist[i])
    }

    /// Writes the distance of every vertex of the queried graph into the
    /// first [`EngineTree::num_vertices`] slots of `out` (`f64::INFINITY`
    /// for unreachable vertices); any extra slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the queried graph's vertex count.
    pub fn copy_distances_into(&self, out: &mut [f64]) {
        assert!(
            out.len() >= self.num_vertices,
            "output slice shorter than the graph's vertex count"
        );
        for (v, slot) in out[..self.num_vertices].iter_mut().enumerate() {
            *slot = self.distance(VertexId(v)).unwrap_or(f64::INFINITY);
        }
    }

    /// Reconstructs the shortest path from the source to `target` as a vertex
    /// sequence (source first), or `None` if unreachable. This is the only
    /// allocating accessor (it builds the returned `Vec`).
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.engine.parent[cur as usize] != NO_VERTEX {
            cur = self.engine.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Materializes this view as an owned [`SptTree`] that outlives the
    /// engine — the form a shortest-path-tree cache stores. Distances and
    /// parents are copied verbatim, so every [`SptTree`] accessor returns
    /// **bit-identical** results to the corresponding accessor on this view.
    pub fn to_owned_tree(&self) -> SptTree {
        let n = self.num_vertices;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_VERTEX; n];
        let mut members = Vec::new();
        for v in 0..n {
            if self.engine.state[v] >= self.engine.generation {
                dist[v] = self.engine.dist[v];
                parent[v] = self.engine.parent[v];
                members.push((VertexId(v), self.engine.dist[v]));
            }
        }
        // Sorted once here so every cached ball / k-nearest answer is a
        // prefix read instead of a per-query sort.
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        SptTree {
            source: self.source,
            dist,
            parent,
            members,
        }
    }
}

/// An owned shortest-path tree: the cacheable counterpart of the borrowed
/// [`EngineTree`] view, produced by [`EngineTree::to_owned_tree`].
///
/// A serving layer computes a source's tree once and then answers every
/// query about that source from the tree — distance lookups are `O(1)`,
/// path reconstruction is `O(path length)`, and ball / k-nearest answers
/// are filters over the stored distances. All accessors return bit-identical
/// results to a fresh engine query from the same source (the determinism
/// contract a query cache relies on).
#[derive(Debug, Clone, PartialEq)]
pub struct SptTree {
    source: VertexId,
    /// Distance from the source per vertex; `f64::INFINITY` = unreachable.
    dist: Vec<f64>,
    /// Predecessor per vertex on its shortest path; `NO_VERTEX` for the
    /// source and for unreachable vertices.
    parent: Vec<u32>,
    /// Every reached vertex with its distance, sorted by
    /// `(distance, vertex)` — the engine's settle order, pre-computed so
    /// ball and k-nearest answers are prefix reads.
    members: Vec<(VertexId, f64)>,
}

impl SptTree {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }

    /// Approximate heap footprint of this tree, for cache sizing.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
            + self.members.len() * std::mem::size_of::<(VertexId, f64)>()
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs the shortest path from the source to `target` (source
    /// first), or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Every vertex within distance `radius` of the source, with its
    /// distance, in non-decreasing `(distance, vertex)` order — the same
    /// order (and the same values, bit for bit) as
    /// [`DijkstraEngine::ball`] from this source. `O(log n)` to locate the
    /// prefix plus the output copy (the member list is stored sorted).
    pub fn members_within(&self, radius: f64) -> Vec<(VertexId, f64)> {
        // Distance is the primary sort key, so the within-radius members
        // are exactly a prefix of the stored list.
        let end = self.members.partition_point(|&(_, d)| d <= radius);
        self.members[..end].to_vec()
    }

    /// The `k` vertices nearest to the source (the source itself first, at
    /// distance 0), in non-decreasing `(distance, vertex)` order. Fewer than
    /// `k` entries are returned when the source's component is smaller.
    ///
    /// **Tie handling.** Equal-distance vertices are ordered by ascending
    /// vertex id, so the truncation point at a distance tie is
    /// deterministic and identical across queue implementations (see
    /// [`DijkstraEngine::ball`]).
    pub fn k_nearest(&self, k: usize) -> Vec<(VertexId, f64)> {
        self.members[..k.min(self.members.len())].to_vec()
    }

    /// The full reachable member list in non-decreasing `(distance, vertex)`
    /// order — everything [`SptTree::members_within`] /
    /// [`SptTree::k_nearest`] truncate from, without the copy.
    pub fn members(&self) -> &[(VertexId, f64)] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::WeightedGraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    #[test]
    fn bounded_distance_matches_legacy() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 1.0),
            None
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0),
            Some(2.0)
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 3.9),
            None
        );
        assert!(e
            .bounded_distance(&csr, VertexId(0), VertexId(3), 4.0)
            .is_some());
    }

    #[test]
    fn tree_view_distances_and_paths() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.source(), VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(
            tree.path_to(VertexId(3)).unwrap(),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(tree.path_to(VertexId(0)).unwrap(), vec![VertexId(0)]);
        let mut out = [0.0; 4];
        tree.copy_distances_into(&mut out);
        assert_eq!(out, [0.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 100.0),
            None
        );
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(2)), None);
        assert_eq!(tree.path_to(VertexId(2)), None);
    }

    #[test]
    fn ball_matches_legacy_order() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let legacy = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(e.ball(&csr, VertexId(0), 2.0), &legacy[..]);
        assert_eq!(
            e.ball(&csr, VertexId(3), 0.0),
            &[(VertexId(3), 0.0)],
            "radius 0 is the source alone"
        );
    }

    #[test]
    fn ball_buffer_grows_correctly_across_graph_sizes() {
        // Warm the engine with a ball that settles fewer vertices than the
        // workspace holds (len < capacity), then grow to a larger graph and
        // ball-query the whole thing. Regression: grow() used to reserve
        // `n - capacity` *additional* slots past the leftover length,
        // leaving ball_buf short and forcing a mid-query reallocation.
        let small =
            WeightedGraph::from_edges(10, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
                .unwrap();
        let mut e = DijkstraEngine::new();
        assert_eq!(e.ball(&CsrGraph::from(&small), VertexId(0), 100.0).len(), 5);
        let n = 16;
        let big = WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap();
        let csr = CsrGraph::from(&big);
        let members = e.ball(&csr, VertexId(0), n as f64);
        assert_eq!(
            members.len(),
            n,
            "the whole path graph is within the radius"
        );
        for (v, &(m, d)) in members.iter().enumerate() {
            assert_eq!(m, VertexId(v));
            assert!((d - v as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn copy_distances_fills_exactly_the_graph_prefix() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.num_vertices(), 4);
        let mut out = [f64::NAN; 6];
        tree.copy_distances_into(&mut out);
        assert_eq!(&out[..4], &[0.0, 1.0, 2.0, 4.0]);
        assert!(out[4].is_nan() && out[5].is_nan(), "extra slots untouched");
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn copy_distances_rejects_short_slices() {
        let csr = CsrGraph::from(&diamond());
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let mut out = [0.0; 2];
        tree.copy_distances_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ball_rejects_negative_radius() {
        let csr = CsrGraph::from(&diamond());
        DijkstraEngine::new().ball(&csr, VertexId(0), -1.0);
    }

    #[test]
    fn workspace_is_reused_after_the_first_query() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        for _ in 0..10 {
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        let s = e.stats();
        assert_eq!(s.queries, 10);
        assert_eq!(s.reuse_hits, 9, "only the first query may size the buffers");
        assert!(s.peak_frontier >= 1);
        assert!(s.heap_pops >= 10);
        // An engine pre-sized for the graph never allocates at all.
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        for _ in 0..5 {
            warm.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        assert_eq!(
            warm.stats().reuse_hits,
            5,
            "every query must be a reuse hit"
        );
        warm.reset_stats();
        assert_eq!(warm.stats(), EngineStats::default());
    }

    #[test]
    fn frontier_is_reported_per_query_and_bounded_by_pushes() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let (d, frontier) = e.bounded_distance_with_frontier(&csr, VertexId(0), VertexId(3), 10.0);
        assert_eq!(d, Some(4.0));
        // Lazy deletion: at most one push per half-edge improvement plus the
        // source.
        assert!(frontier >= 1 && frontier <= 2 * g.num_edges() + 1);
    }

    #[test]
    fn generation_wrap_resets_stamps_and_preserves_results() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        // Take reference answers with a fresh engine far from the wrap.
        let mut fresh = DijkstraEngine::new();
        let reference: Vec<Option<f64>> = (0..4)
            .map(|t| fresh.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0))
            .collect();
        // Seed the workspace with stale stamps, then fast-forward the
        // generation counter to the wrap threshold: the next query must run
        // the explicit stamp reset and still answer correctly from the
        // polluted workspace.
        warm.bounded_distance(&csr, VertexId(2), VertexId(3), 10.0);
        warm.force_generation_wrap();
        assert_eq!(warm.stats().generation_wraps, 0);
        for (t, want) in reference.iter().enumerate() {
            assert_eq!(
                warm.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0),
                *want,
                "target {t} across the wrap boundary"
            );
        }
        let stats = warm.stats();
        assert_eq!(stats.generation_wraps, 1, "exactly one reset at the wrap");
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "the wrap reset must not allocate"
        );
        // Trees and balls stay sound across a second forced wrap too.
        warm.force_generation_wrap();
        let legacy_ball = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(warm.ball(&csr, VertexId(0), 2.0), &legacy_ball[..]);
        let tree = warm.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(warm.stats().generation_wraps, 2);
    }

    #[test]
    fn generation_wrap_survives_a_sustained_query_stream() {
        // Cross the wrap mid-stream and keep going: every answer before,
        // at, and after the boundary must match a fresh engine.
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        engine.force_generation_wrap();
        let mut fresh = DijkstraEngine::new();
        for round in 0..64 {
            let s = VertexId(round % 4);
            let t = VertexId((round + 3) % 4);
            assert_eq!(
                engine.bounded_distance(&csr, s, t, 10.0),
                fresh.bounded_distance(&csr, s, t, 10.0),
                "round {round}"
            );
        }
        assert_eq!(engine.stats().generation_wraps, 1);
        assert_eq!(fresh.stats().generation_wraps, 0);
    }

    #[test]
    fn owned_tree_matches_the_borrowed_view_exactly() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let owned = tree.to_owned_tree();
        assert_eq!(owned.source(), VertexId(0));
        assert_eq!(owned.num_vertices(), 4);
        for v in 0..4 {
            assert_eq!(owned.distance(VertexId(v)), tree.distance(VertexId(v)));
            assert_eq!(owned.path_to(VertexId(v)), tree.path_to(VertexId(v)));
        }
        assert!(owned.memory_bytes() >= 4 * 12);
        // The owned tree outlives further engine queries.
        e.bounded_distance(&csr, VertexId(1), VertexId(3), 10.0);
        assert_eq!(owned.distance(VertexId(3)), Some(4.0));
    }

    #[test]
    fn owned_tree_ball_and_k_nearest_match_engine_queries() {
        let g = WeightedGraph::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 2.0),
                (3, 4, 0.5),
                // vertex 5 is isolated
            ],
        )
        .unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let owned = e.shortest_path_tree(&csr, VertexId(0)).to_owned_tree();
        for radius in [0.0, 1.0, 2.0, 2.5, 100.0, f64::INFINITY] {
            let expected = e.ball(&csr, VertexId(0), radius).to_vec();
            assert_eq!(owned.members_within(radius), expected, "radius {radius}");
        }
        // Unreachable vertices never appear, even at radius infinity.
        assert!(owned
            .members_within(f64::INFINITY)
            .iter()
            .all(|&(v, _)| v != VertexId(5)));
        assert_eq!(owned.distance(VertexId(5)), None);
        assert_eq!(owned.path_to(VertexId(5)), None);
        // k-nearest is the sorted prefix; oversized k returns the component.
        let all = owned.members_within(f64::INFINITY);
        assert_eq!(owned.k_nearest(3), all[..3].to_vec());
        assert_eq!(owned.k_nearest(0), vec![]);
        assert_eq!(owned.k_nearest(100), all);
        assert_eq!(owned.k_nearest(1), vec![(VertexId(0), 0.0)]);
    }

    #[test]
    fn deletions_are_invisible_to_queries_before_and_after_repack() {
        // Delete edges from a CSR graph and compare every query against a
        // fresh build of the surviving edges — with the tombstones pending
        // (lingering in the packed arrays) and again after consolidation.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 18;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.35) {
                    edges.push((u, v, rng.gen_range(0.5..4.0)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges.iter().copied()).unwrap();
        let mut csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        // Delete every third edge.
        let mut survivors = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                csr.remove_edge(crate::graph::EdgeId(i)).unwrap();
            } else {
                survivors.push(e);
            }
        }
        let reference_graph = WeightedGraph::from_edges(n, survivors).unwrap();
        let reference_csr = CsrGraph::from(&reference_graph);
        let mut reference_engine = DijkstraEngine::new();
        for phase in 0..2 {
            if phase == 1 {
                csr.compact();
                assert!(!csr.has_pending_deletions());
            } else {
                assert!(csr.has_pending_deletions());
            }
            for s in 0..n {
                for t in 0..n {
                    assert_eq!(
                        engine.bounded_distance(&csr, VertexId(s), VertexId(t), 10.0),
                        reference_engine.bounded_distance(
                            &reference_csr,
                            VertexId(s),
                            VertexId(t),
                            10.0
                        ),
                        "phase {phase}: {s} -> {t}"
                    );
                }
                let ball: Vec<_> = engine.ball(&csr, VertexId(s), 5.0).to_vec();
                assert_eq!(
                    ball,
                    reference_engine.ball(&reference_csr, VertexId(s), 5.0),
                    "phase {phase}: ball from {s}"
                );
            }
        }
    }

    #[test]
    fn checked_queries_refuse_stale_epochs() {
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let stamp = csr.epoch();
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(4.0)
        );
        assert!(e
            .checked_shortest_path_tree(&csr, stamp, VertexId(0))
            .is_ok());
        let queries_before = e.stats().queries;
        csr.append_edge(VertexId(0), VertexId(3), 0.5);
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0),
            Err(crate::GraphError::StaleEpoch {
                stamped: stamp,
                current: stamp + 1
            })
        );
        assert!(matches!(
            e.checked_shortest_path_tree(&csr, stamp, VertexId(0)),
            Err(crate::GraphError::StaleEpoch { .. })
        ));
        assert_eq!(
            e.stats().queries,
            queries_before,
            "refused queries never touch the workspace"
        );
        // A refreshed stamp answers against the mutated graph.
        assert_eq!(
            e.checked_bounded_distance(&csr, csr.epoch(), VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(0.5)
        );
    }

    #[test]
    fn matches_legacy_on_random_graphs_including_appends() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..15 {
            let n = 20;
            let mut g = WeightedGraph::new(n);
            let mut csr = CsrGraph::new(n);
            let mut engine = DijkstraEngine::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.3) {
                        let w = rng.gen_range(0.5..4.0);
                        g.add_edge(VertexId(u), VertexId(v), w);
                        csr.append_edge(VertexId(u), VertexId(v), w);
                    }
                }
                // Interleave queries with appends so overflow chains and
                // compactions are both exercised mid-growth.
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                let bound = rng.gen_range(0.1..12.0);
                assert_eq!(
                    engine.bounded_distance(&csr, s, t, bound),
                    dijkstra::bounded_distance(&g, s, t, bound)
                );
            }
            for s in 0..n {
                let legacy = dijkstra::shortest_path_tree(&g, VertexId(s));
                let tree = engine.shortest_path_tree(&csr, VertexId(s));
                for v in 0..n {
                    assert_eq!(tree.distance(VertexId(v)), legacy.distance(VertexId(v)));
                }
            }
        }
    }

    #[test]
    fn settled_and_pruned_counters_are_monotone_sane() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        for policy in [QueuePolicy::Heap, QueuePolicy::Auto] {
            let mut e = DijkstraEngine::new();
            e.set_queue_policy(policy);
            assert_eq!(e.queue_policy(), policy);
            let stats0 = e.stats();
            assert_eq!(stats0.settled_vertices, 0);
            assert_eq!(stats0.pruned_by_bound, 0);
            // Tight bound: the 0-2 edge (weight 5) and anything through
            // vertex 3 are pruned.
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0);
            let s1 = e.stats();
            assert!(s1.settled_vertices >= 1, "{policy:?}: source must settle");
            assert!(
                s1.settled_vertices <= s1.heap_pops,
                "{policy:?}: every settle consumes a pop"
            );
            assert!(
                s1.pruned_by_bound >= 1,
                "{policy:?}: the weight-5 edge must be pruned at bound 2"
            );
            // An unbounded SPT settles the whole component, prunes nothing new.
            e.shortest_path_tree(&csr, VertexId(0));
            let s2 = e.stats();
            assert_eq!(s2.settled_vertices, s1.settled_vertices + 4);
            assert_eq!(s2.pruned_by_bound, s1.pruned_by_bound);
        }
    }

    #[test]
    fn queue_policies_agree_on_bounded_queries_and_balls() {
        let mut rng = SmallRng::seed_from_u64(72_026);
        let n = 40;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.15) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.25..8.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let mut heap_engine = DijkstraEngine::new();
        heap_engine.set_queue_policy(QueuePolicy::Heap);
        let mut auto_engine = DijkstraEngine::new();
        for case in 0..60 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.1..20.0);
            assert_eq!(
                heap_engine.bounded_distance(&csr, s, t, bound),
                auto_engine.bounded_distance(&csr, s, t, bound),
                "case {case}: bounded distance differs between queue policies"
            );
            let heap_ball = heap_engine.ball(&csr, s, bound).to_vec();
            let auto_ball = auto_engine.ball(&csr, s, bound).to_vec();
            assert_eq!(
                heap_ball, auto_ball,
                "case {case}: ball membership/order differs between queue policies"
            );
        }
        // Auto actually took the bucket path: it settles the same vertices
        // but reports the same answers, so distinguish via the policy getter.
        assert_eq!(auto_engine.queue_policy(), QueuePolicy::Auto);
    }

    #[test]
    fn landmarked_distances_match_plain_distances() {
        use crate::landmarks::Landmarks;
        let mut rng = SmallRng::seed_from_u64(1607);
        let n = 32;
        let mut g = WeightedGraph::new(n);
        // Two components: vertices 0..24 and 24..32 are never joined.
        for u in 0..n {
            for v in (u + 1)..n {
                let same_side = (u < 24) == (v < 24);
                if same_side && rng.gen_bool(0.2) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..5.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 4);
        let mut plain = DijkstraEngine::new();
        let mut pruned = DijkstraEngine::new();
        for case in 0..120 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = if case % 7 == 0 {
                f64::INFINITY
            } else {
                rng.gen_range(0.1..15.0)
            };
            assert_eq!(
                plain.bounded_distance(&csr, s, t, bound),
                pruned.bounded_distance_landmarked(&csr, &lm, s, t, bound),
                "case {case}: ALT pruning changed the answer for {s:?}->{t:?} at bound {bound}"
            );
        }
        // Source == target is answered without ever consulting the graph's
        // edges (h(s, s) = 0 for identical table rows).
        assert_eq!(
            pruned.bounded_distance_landmarked(&csr, &lm, VertexId(5), VertexId(5), 0.0),
            Some(0.0)
        );
        // Cross-component pairs are pruned at the source: the disconnection
        // proof means the search never starts.
        let before = pruned.stats();
        assert_eq!(
            pruned.bounded_distance_landmarked(&csr, &lm, VertexId(0), VertexId(30), f64::INFINITY),
            None
        );
        let after = pruned.stats();
        assert_eq!(
            after.settled_vertices, before.settled_vertices,
            "a provably disconnected pair must not settle anything"
        );
        assert_eq!(after.pruned_by_bound, before.pruned_by_bound + 1);
    }

    #[test]
    fn stale_or_mismatched_landmarks_are_refused() {
        use crate::landmarks::Landmarks;
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 2);
        csr.append_edge(VertexId(0), VertexId(3), 1.0);
        let mut e = DijkstraEngine::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.bounded_distance_landmarked(&csr, &lm, VertexId(0), VertexId(3), 10.0)
        }));
        assert!(err.is_err(), "stale landmark table must be refused");
    }

    #[test]
    fn warm_engine_stays_allocation_free_under_bucket_and_landmarks() {
        use crate::landmarks::Landmarks;
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 64;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.1) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..4.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 8);
        let mut e = DijkstraEngine::with_capacity_for(n, csr.num_edges());
        for i in 0..50 {
            let s = VertexId((i * 13) % n);
            let t = VertexId((i * 29 + 7) % n);
            let bound = 2.0 + (i % 5) as f64;
            // Alternate bucket-only and bucket+ALT queries on one engine.
            if i % 2 == 0 {
                e.bounded_distance(&csr, s, t, bound);
            } else {
                e.bounded_distance_landmarked(&csr, &lm, s, t, bound);
            }
        }
        let stats = e.stats();
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "a pre-sized engine must never allocate, bucket and ALT paths included"
        );
    }

    /// Every search counter must be bit-identical between the scalar and
    /// batched kernels. The kernel block differs by definition, and
    /// `reuse_hits` differs for *size-on-demand* engines only (the batched
    /// kernel's gather scratch grows on its first use, a legitimate reuse
    /// miss — pre-sized engines hit on every query under both kernels; see
    /// `warm_engine_stays_allocation_free_under_the_batched_kernel`), so
    /// both are zeroed before comparing.
    fn stats_sans_kernel(stats: EngineStats) -> EngineStats {
        EngineStats {
            kernel: KernelStats::default(),
            reuse_hits: 0,
            ..stats
        }
    }

    #[test]
    fn relax_kernels_agree_bit_identically_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(40_817);
        for round in 0..8 {
            let n = 30;
            let mut g = WeightedGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.2) {
                        g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.25..6.0));
                    }
                }
            }
            let csr = CsrGraph::from(&g);
            for policy in [QueuePolicy::Heap, QueuePolicy::Auto] {
                let mut scalar = DijkstraEngine::new();
                scalar.set_queue_policy(policy);
                scalar.set_relax_kernel(RelaxKernel::Scalar);
                let mut batched = DijkstraEngine::new();
                batched.set_queue_policy(policy);
                batched.set_relax_kernel(RelaxKernel::Batched);
                assert_eq!(batched.relax_kernel(), RelaxKernel::Batched);
                for case in 0..40 {
                    let s = VertexId(rng.gen_range(0..n));
                    let t = VertexId(rng.gen_range(0..n));
                    let bound = rng.gen_range(0.1..18.0);
                    assert_eq!(
                        scalar.bounded_distance(&csr, s, t, bound),
                        batched.bounded_distance(&csr, s, t, bound),
                        "round {round} case {case} ({policy:?}): distance differs"
                    );
                    let sb = scalar.ball(&csr, s, bound).to_vec();
                    let bb = batched.ball(&csr, s, bound).to_vec();
                    assert_eq!(
                        sb, bb,
                        "round {round} case {case} ({policy:?}): ball settle order differs"
                    );
                }
                assert_eq!(
                    stats_sans_kernel(scalar.stats()),
                    stats_sans_kernel(batched.stats()),
                    "round {round} ({policy:?}): pops/settles/prunes/frontier must be \
                     bit-identical across kernels"
                );
                assert_eq!(scalar.stats().kernel, KernelStats::default());
                let k = batched.stats().kernel;
                assert!(k.rows_batched > 0, "batched kernel must have run");
                assert!(k.candidates_committed <= k.edges_gathered);
                assert_eq!(k.prefetch_distance, PREFETCH_DISTANCE);
            }
        }
    }

    #[test]
    fn relax_kernels_agree_on_trees_paths_and_deletions() {
        let mut rng = SmallRng::seed_from_u64(91_203);
        let n = 24;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(0.5..4.0)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges.iter().copied()).unwrap();
        let mut csr_s = CsrGraph::from(&g);
        let mut csr_b = CsrGraph::from(&g);
        // Appends (overflow chains) and deletions (tombstoned packed rows)
        // on both copies, so the gather path sees both shapes.
        for i in (0..edges.len()).step_by(4) {
            csr_s.remove_edge(crate::graph::EdgeId(i)).unwrap();
            csr_b.remove_edge(crate::graph::EdgeId(i)).unwrap();
        }
        csr_s.append_edge(VertexId(0), VertexId(n - 1), 1.25);
        csr_b.append_edge(VertexId(0), VertexId(n - 1), 1.25);
        assert!(csr_s.has_pending_deletions());
        let mut scalar = DijkstraEngine::new();
        scalar.set_relax_kernel(RelaxKernel::Scalar);
        let mut batched = DijkstraEngine::new();
        batched.set_relax_kernel(RelaxKernel::Batched);
        for s in 0..n {
            let st = scalar
                .shortest_path_tree(&csr_s, VertexId(s))
                .to_owned_tree();
            let bt = batched
                .shortest_path_tree(&csr_b, VertexId(s))
                .to_owned_tree();
            for v in 0..n {
                assert_eq!(st.distance(VertexId(v)), bt.distance(VertexId(v)));
                assert_eq!(
                    st.path_to(VertexId(v)),
                    bt.path_to(VertexId(v)),
                    "parent chains must agree from {s} to {v}"
                );
            }
        }
        assert_eq!(
            stats_sans_kernel(scalar.stats()),
            stats_sans_kernel(batched.stats())
        );
    }

    #[test]
    fn auto_kernel_stays_scalar_on_short_rows_and_flips_on_deletions() {
        // A path graph's mean degree is < 2: Auto must keep the scalar loop.
        let n = 12;
        let g = WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap();
        let mut csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(e.relax_kernel(), RelaxKernel::Auto);
        e.bounded_distance(&csr, VertexId(0), VertexId(n - 1), 100.0);
        assert_eq!(
            e.stats().kernel.rows_batched,
            0,
            "Auto must pick the scalar loop on short-row graphs"
        );
        // Pending deletions flip Auto to the batched kernel (bitmap gather).
        csr.remove_edge(crate::graph::EdgeId(0)).unwrap();
        assert!(csr.has_pending_deletions());
        e.bounded_distance(&csr, VertexId(1), VertexId(n - 1), 100.0);
        assert!(
            e.stats().kernel.rows_batched > 0,
            "Auto must pick the batched kernel while deletions are pending"
        );
    }

    #[test]
    fn warm_engine_stays_allocation_free_under_the_batched_kernel() {
        let mut rng = SmallRng::seed_from_u64(4_242);
        let n = 64;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.12) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..4.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 4);
        let mut e = DijkstraEngine::with_capacity_for(n, csr.num_edges());
        e.set_relax_kernel(RelaxKernel::Batched);
        for i in 0..50 {
            let s = VertexId((i * 13) % n);
            let t = VertexId((i * 29 + 7) % n);
            let bound = 2.0 + (i % 5) as f64;
            if i % 2 == 0 {
                e.bounded_distance(&csr, s, t, bound);
            } else {
                e.bounded_distance_landmarked(&csr, &lm, s, t, bound);
            }
        }
        let stats = e.stats();
        assert!(stats.kernel.rows_batched > 0);
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "a pre-sized engine must never allocate, gather scratch included"
        );
    }

    #[test]
    fn kernel_stats_merge_adds_counts_and_maxes_prefetch() {
        let mut a = KernelStats {
            rows_batched: 3,
            edges_gathered: 40,
            candidates_committed: 11,
            prefetch_distance: 8,
        };
        let b = KernelStats {
            rows_batched: 2,
            edges_gathered: 10,
            candidates_committed: 4,
            prefetch_distance: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            KernelStats {
                rows_batched: 5,
                edges_gathered: 50,
                candidates_committed: 15,
                prefetch_distance: 8,
            }
        );
    }
}
