//! A reusable, zero-allocation-per-query Dijkstra engine over [`CsrGraph`].
//!
//! The greedy spanner issues one bounded distance query per candidate edge —
//! `O(m)` queries against the growing spanner. The free functions in
//! [`crate::dijkstra`] allocate three `O(n)` vectors *per query*, so that hot
//! loop is allocation- and cache-bound. [`DijkstraEngine`] owns the workspace
//! instead:
//!
//! * `dist` / `parent` arrays are *generation-stamped*: a query bumps one
//!   counter instead of clearing `O(n)` state, so per-query cost is
//!   proportional to the explored ball, not to the graph;
//! * the priority queue is a lazy-deletion binary heap whose buffer is
//!   retained across queries; its pushes are bounded by the number of
//!   half-edge improvements (`≤ 2m + 1`), so an engine created with
//!   [`DijkstraEngine::with_capacity_for`] performs **zero heap allocation
//!   per query**, ever (an engine sized on the fly stops allocating once its
//!   buffers reach the workload's high-water mark);
//! * the engine counts queries, workspace-reuse hits (queries that ran
//!   without growing any buffer), heap pops and the peak frontier, which the
//!   spanner pipeline surfaces in its run statistics.
//!
//! ```
//! use spanner_graph::csr::CsrGraph;
//! use spanner_graph::engine::DijkstraEngine;
//! use spanner_graph::{VertexId, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap();
//! let csr = CsrGraph::from(&g);
//! let mut engine = DijkstraEngine::new();
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0), Some(2.0));
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 1.5), None);
//! assert_eq!(engine.stats().queries, 2);
//! assert_eq!(engine.stats().reuse_hits, 1); // only the first query allocated
//! ```

use std::collections::BinaryHeap;

use crate::csr::CsrGraph;
use crate::graph::VertexId;

const NO_VERTEX: u32 = u32::MAX;

/// Aggregate counters of a [`DijkstraEngine`]; see [`DijkstraEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered since construction (or the last
    /// [`DijkstraEngine::reset_stats`]).
    pub queries: u64,
    /// Queries that ran entirely inside the existing workspace — no buffer
    /// grew, hence zero heap allocation. Always equal to `queries` for an
    /// engine created with [`DijkstraEngine::with_capacity_for`]; an engine
    /// sized on the fly reports the (few) growth queries as misses.
    pub reuse_hits: u64,
    /// Total heap pops across all queries, including stale lazy-deletion
    /// entries (the same accounting as the legacy free functions).
    pub heap_pops: u64,
    /// Largest priority-queue length reached by any query (stale entries
    /// included — this is the memory high-water mark of the searches).
    pub peak_frontier: usize,
    /// Times the generation counter wrapped and the stamp workspace was
    /// explicitly reset (see [`DijkstraEngine::force_generation_wrap`]). The
    /// counter advances by 2 per query, so a wrap occurs roughly every 2³¹
    /// queries — routine for a long-running server, and harmless: the reset
    /// invalidates every stamp in `O(n)` and reuse stays sound.
    pub generation_wraps: u64,
}

/// One heap entry: the key is stored alongside the vertex so comparisons stay
/// inside the heap array instead of chasing `dist`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapSlot {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapSlot {}

impl Ord for HeapSlot {
    /// Reversed, so the max-heap pops the smallest distance first, ties by
    /// smaller vertex id (matching the legacy free functions, so settle
    /// order is identical).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A reusable Dijkstra workspace over [`CsrGraph`]s.
///
/// One engine serves any number of graphs (buffers are sized to the largest
/// vertex count seen). All query methods take `&mut self` because they reuse
/// the workspace; results referencing the workspace ([`EngineTree`],
/// [`DijkstraEngine::ball`]) borrow the engine until the next query.
#[derive(Debug, Clone, Default)]
pub struct DijkstraEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Per-vertex query state, generation-encoded (generations advance by 2):
    /// `state[v] < generation` — untouched this query; `== generation` —
    /// touched (in the heap); `== generation + 1` — settled. One load answers
    /// both the "already settled?" and "already touched?" questions.
    state: Vec<u32>,
    /// Lazy-deletion heap: improvements push a fresh entry, superseded
    /// entries are skipped at pop time via `state`. The buffer is retained
    /// across queries.
    heap: BinaryHeap<HeapSlot>,
    /// Settle order of the last collecting query (see [`DijkstraEngine::ball`]).
    ball_buf: Vec<(VertexId, f64)>,
    generation: u32,
    stats: EngineStats,
    last_frontier: usize,
}

impl DijkstraEngine {
    /// Creates an engine with an empty workspace; queries size it on demand
    /// (the growth queries are reported as reuse misses).
    pub fn new() -> Self {
        DijkstraEngine::default()
    }

    /// Creates an engine pre-sized for graphs of `num_vertices` vertices
    /// when the edge count is not known, assuming a sparse, spanner-like
    /// graph with `m ≈ n` — it routes through
    /// [`DijkstraEngine::with_capacity_for`] with `num_edges =
    /// num_vertices`, reserving the `2m + 2` heap-push bound for that `m`.
    ///
    /// The earlier heuristic reserved for `m = n/2`, which underestimates
    /// every connected graph (even a spanning tree has `m = n − 1`), so the
    /// first query on tree-like graphs could reallocate mid-search. Queries
    /// on graphs with more than `num_vertices` edges may still grow the
    /// heap once; callers that know `m` should use
    /// [`DijkstraEngine::with_capacity_for`] directly for the hard
    /// zero-allocation guarantee.
    pub fn with_capacity(num_vertices: usize) -> Self {
        DijkstraEngine::with_capacity_for(num_vertices, num_vertices)
    }

    /// Creates an engine pre-sized for graphs of up to `num_vertices`
    /// vertices and `num_edges` edges: the heap buffer is reserved for
    /// `2·num_edges + 2` entries, an upper bound on the pushes of any single
    /// query (each settled vertex relaxes each incident half-edge at most
    /// once). Such an engine performs **zero heap allocations on every
    /// query** — including the first — which is the contract the greedy
    /// construction asserts through its workspace-reuse counter.
    pub fn with_capacity_for(num_vertices: usize, num_edges: usize) -> Self {
        let mut e = DijkstraEngine::new();
        e.grow(num_vertices);
        e.reserve_heap(2 * num_edges + 2);
        e
    }

    /// Ensures the heap buffer can hold `entries` entries without
    /// reallocating.
    pub fn reserve_heap(&mut self, entries: usize) {
        if self.heap.capacity() < entries {
            self.heap.reserve(entries - self.heap.len());
        }
    }

    /// The engine's aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the aggregate counters (the workspace is kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn grow(&mut self, n: usize) {
        self.dist.resize(n, f64::INFINITY);
        self.parent.resize(n, NO_VERTEX);
        self.state.resize(n, 0);
        if self.ball_buf.capacity() < n {
            // `reserve_exact` takes *additional* elements beyond the current
            // length, so subtract the length, not the capacity.
            self.ball_buf.reserve_exact(n - self.ball_buf.len());
        }
    }

    /// Generation values at or above this threshold trigger a stamp reset on
    /// the next query. Generations advance by 2, so the last generation a
    /// query may use before the reset is `WRAP_THRESHOLD + 1 = u32::MAX - 2`
    /// (its settled stamp), leaving `u32::MAX` itself unused.
    const WRAP_THRESHOLD: u32 = u32::MAX - 3;

    /// Explicit wrap-time workspace reset: invalidates every generation
    /// stamp (`O(n)`) and restarts the counter at zero, so the stamps of all
    /// previous queries read as "untouched". Called automatically by
    /// [`DijkstraEngine::begin_query`] when the counter approaches
    /// `u32::MAX`; a server answering billions of queries crosses that
    /// boundary routinely, and reuse must stay sound across it
    /// ([`EngineStats::generation_wraps`] counts the crossings).
    fn reset_generation_stamps(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0);
        self.generation = 0;
        self.stats.generation_wraps += 1;
    }

    /// Forces the next query to run the generation-wrap reset path, as if
    /// ~2³¹ queries had already been answered. The workspace stays valid —
    /// this only fast-forwards the stamp counter.
    ///
    /// Exposed so long-running-process tests can exercise the wrap without
    /// issuing billions of queries; harmless (but pointless) in production.
    #[doc(hidden)]
    pub fn force_generation_wrap(&mut self) {
        self.generation = Self::WRAP_THRESHOLD;
    }

    /// Returns `true` if the query had to grow the vertex-indexed buffers.
    fn begin_query(&mut self, n: usize) -> bool {
        self.stats.queries += 1;
        let grew = n > self.dist.len();
        if grew {
            self.grow(n);
        }
        // Generations advance by 2: `generation` marks touched, `generation
        // + 1` marks settled (see the `state` field).
        if self.generation >= Self::WRAP_THRESHOLD {
            self.reset_generation_stamps();
        }
        self.generation += 2;
        self.heap.clear();
        self.ball_buf.clear();
        self.last_frontier = 0;
        grew
    }

    #[inline(always)]
    fn push(&mut self, v: u32, dist: f64) {
        self.heap.push(HeapSlot { dist, vertex: v });
        self.last_frontier = self.last_frontier.max(self.heap.len());
    }

    /// Relaxes the half-edge `u → v` with weight `w`, given `u`'s settled
    /// distance `d`. The single `state` load decides settled / untouched /
    /// in-heap; improvements push a fresh heap entry (lazy deletion).
    /// `TRACK_PARENTS` is off for bounded-distance and ball queries (nothing
    /// reads parents there), which removes a random store per improvement
    /// from the greedy hot loop.
    #[inline(always)]
    fn relax<const TRACK_PARENTS: bool>(
        &mut self,
        u: u32,
        v: usize,
        w: f64,
        d: f64,
        gen: u32,
        bound: f64,
    ) {
        let s = self.state[v];
        if s == gen + 1 {
            return; // settled
        }
        let nd = d + w;
        // Entries beyond the bound can never contribute to a bounded answer.
        if nd > bound {
            return;
        }
        if s < gen || nd < self.dist[v] {
            self.state[v] = gen;
            self.dist[v] = nd;
            if TRACK_PARENTS {
                self.parent[v] = u;
            }
            self.push(v as u32, nd);
        }
    }

    /// The shared search loop. Settles vertices in non-decreasing
    /// `(distance, vertex)` order; never pushes a vertex whose tentative
    /// distance exceeds `bound`; stops early once `target` settles. When
    /// `collect` is set, the settle order is recorded in `ball_buf`.
    fn run<const TRACK_PARENTS: bool>(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: Option<VertexId>,
        bound: f64,
        collect: bool,
    ) {
        let n = graph.num_vertices();
        assert!(source.index() < n, "source vertex out of range");
        if let Some(t) = target {
            assert!(t.index() < n, "target vertex out of range");
        }
        let target = target.map(|t| t.index() as u32);
        // Tombstoned half-edges linger in the packed arrays until the next
        // re-pack; only then does the scan pay for the liveness check.
        let pending_deletions = graph.has_pending_deletions();
        let grew = self.begin_query(n);
        let heap_capacity = self.heap.capacity();
        let gen = self.generation;
        let s = source.index();
        self.dist[s] = 0.0;
        if TRACK_PARENTS {
            self.parent[s] = NO_VERTEX;
        }
        self.state[s] = gen;
        self.push(s as u32, 0.0);
        while let Some(HeapSlot { dist: d, vertex: u }) = self.heap.pop() {
            self.stats.heap_pops += 1;
            if self.state[u as usize] == gen + 1 {
                continue; // stale lazy-deletion entry
            }
            self.state[u as usize] = gen + 1;
            if collect {
                self.ball_buf.push((VertexId(u as usize), d));
            }
            if Some(u) == target {
                break;
            }
            // Packed half-edges: two parallel slices, no per-neighbor branch
            // on the deletion-free fast path.
            let (targets, weights) = graph.packed_neighbors(VertexId(u as usize));
            if pending_deletions {
                let ids = graph.packed_neighbor_ids(VertexId(u as usize));
                for i in 0..targets.len() {
                    if !graph.is_edge_id_live(ids[i]) {
                        continue;
                    }
                    self.relax::<TRACK_PARENTS>(u, targets[i] as usize, weights[i], d, gen, bound);
                }
            } else {
                for i in 0..targets.len() {
                    self.relax::<TRACK_PARENTS>(u, targets[i] as usize, weights[i], d, gen, bound);
                }
            }
            // Live overflow half-edges appended since the last re-pack
            // (short; the iterator itself skips tombstoned entries).
            for (v, w) in graph.overflow_neighbors(VertexId(u as usize)) {
                self.relax::<TRACK_PARENTS>(u, v as usize, w, d, gen, bound);
            }
        }
        self.stats.peak_frontier = self.stats.peak_frontier.max(self.last_frontier);
        if !grew && self.heap.capacity() == heap_capacity {
            self.stats.reuse_hits += 1;
        }
    }

    /// Distance between `source` and `target` if it is at most `bound`,
    /// otherwise `None` — the greedy spanner's per-candidate query, with
    /// search cost proportional to the ball of radius `bound`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Option<f64> {
        self.bounded_distance_with_frontier(graph, source, target, bound)
            .0
    }

    /// Like [`DijkstraEngine::bounded_distance`], additionally reporting the
    /// peak priority-queue length of this query.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance_with_frontier(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> (Option<f64>, usize) {
        self.run::<false>(graph, source, Some(target), bound, false);
        let t = target.index();
        let d = if self.state[t] == self.generation + 1 && self.dist[t] <= bound {
            Some(self.dist[t])
        } else {
            None
        };
        (d, self.last_frontier)
    }

    /// Runs a full single-source search and returns a view of the resulting
    /// shortest-path tree. The view borrows the workspace — it is valid until
    /// the next query — and allocates only in
    /// [`EngineTree::path_to`] (which builds the returned path).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        source: VertexId,
    ) -> EngineTree<'a> {
        self.run::<true>(graph, source, None, f64::INFINITY, false);
        EngineTree {
            num_vertices: graph.num_vertices(),
            engine: self,
            source,
        }
    }

    /// Returns every vertex within graph distance `radius` of `source` with
    /// its distance, in non-decreasing `(distance, vertex)` order (the source
    /// itself first, at distance 0). The slice borrows the engine's settle
    /// buffer and is valid until the next query.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `radius` is negative.
    pub fn ball(&mut self, graph: &CsrGraph, source: VertexId, radius: f64) -> &[(VertexId, f64)] {
        assert!(radius >= 0.0, "ball radius must be non-negative");
        self.run::<false>(graph, source, None, radius, true);
        &self.ball_buf
    }

    /// Epoch-checked [`DijkstraEngine::bounded_distance`]: the caller passes
    /// the epoch its view of `graph` was stamped at
    /// ([`CsrGraph::epoch`]), and the engine **refuses to answer against a
    /// mutated graph** — a stale stamp is a typed error, never a silent
    /// answer computed over data the caller has not seen.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch. The workspace is untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn checked_bounded_distance(
        &mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Result<Option<f64>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.bounded_distance(graph, source, target, bound))
    }

    /// Epoch-checked [`DijkstraEngine::shortest_path_tree`]; see
    /// [`DijkstraEngine::checked_bounded_distance`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn checked_shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
    ) -> Result<EngineTree<'a>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.shortest_path_tree(graph, source))
    }
}

/// A borrowed view of the last [`DijkstraEngine::shortest_path_tree`] result.
#[derive(Debug)]
pub struct EngineTree<'a> {
    engine: &'a DijkstraEngine,
    source: VertexId,
    /// Vertex count of the queried graph (the workspace may be larger).
    num_vertices: usize,
}

impl EngineTree<'_> {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let i = v.index();
        (self.engine.state[i] >= self.engine.generation).then(|| self.engine.dist[i])
    }

    /// Writes the distance of every vertex of the queried graph into the
    /// first [`EngineTree::num_vertices`] slots of `out` (`f64::INFINITY`
    /// for unreachable vertices); any extra slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the queried graph's vertex count.
    pub fn copy_distances_into(&self, out: &mut [f64]) {
        assert!(
            out.len() >= self.num_vertices,
            "output slice shorter than the graph's vertex count"
        );
        for (v, slot) in out[..self.num_vertices].iter_mut().enumerate() {
            *slot = self.distance(VertexId(v)).unwrap_or(f64::INFINITY);
        }
    }

    /// Reconstructs the shortest path from the source to `target` as a vertex
    /// sequence (source first), or `None` if unreachable. This is the only
    /// allocating accessor (it builds the returned `Vec`).
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.engine.parent[cur as usize] != NO_VERTEX {
            cur = self.engine.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Materializes this view as an owned [`SptTree`] that outlives the
    /// engine — the form a shortest-path-tree cache stores. Distances and
    /// parents are copied verbatim, so every [`SptTree`] accessor returns
    /// **bit-identical** results to the corresponding accessor on this view.
    pub fn to_owned_tree(&self) -> SptTree {
        let n = self.num_vertices;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_VERTEX; n];
        let mut members = Vec::new();
        for v in 0..n {
            if self.engine.state[v] >= self.engine.generation {
                dist[v] = self.engine.dist[v];
                parent[v] = self.engine.parent[v];
                members.push((VertexId(v), self.engine.dist[v]));
            }
        }
        // Sorted once here so every cached ball / k-nearest answer is a
        // prefix read instead of a per-query sort.
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        SptTree {
            source: self.source,
            dist,
            parent,
            members,
        }
    }
}

/// An owned shortest-path tree: the cacheable counterpart of the borrowed
/// [`EngineTree`] view, produced by [`EngineTree::to_owned_tree`].
///
/// A serving layer computes a source's tree once and then answers every
/// query about that source from the tree — distance lookups are `O(1)`,
/// path reconstruction is `O(path length)`, and ball / k-nearest answers
/// are filters over the stored distances. All accessors return bit-identical
/// results to a fresh engine query from the same source (the determinism
/// contract a query cache relies on).
#[derive(Debug, Clone, PartialEq)]
pub struct SptTree {
    source: VertexId,
    /// Distance from the source per vertex; `f64::INFINITY` = unreachable.
    dist: Vec<f64>,
    /// Predecessor per vertex on its shortest path; `NO_VERTEX` for the
    /// source and for unreachable vertices.
    parent: Vec<u32>,
    /// Every reached vertex with its distance, sorted by
    /// `(distance, vertex)` — the engine's settle order, pre-computed so
    /// ball and k-nearest answers are prefix reads.
    members: Vec<(VertexId, f64)>,
}

impl SptTree {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }

    /// Approximate heap footprint of this tree, for cache sizing.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
            + self.members.len() * std::mem::size_of::<(VertexId, f64)>()
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs the shortest path from the source to `target` (source
    /// first), or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Every vertex within distance `radius` of the source, with its
    /// distance, in non-decreasing `(distance, vertex)` order — the same
    /// order (and the same values, bit for bit) as
    /// [`DijkstraEngine::ball`] from this source. `O(log n)` to locate the
    /// prefix plus the output copy (the member list is stored sorted).
    pub fn members_within(&self, radius: f64) -> Vec<(VertexId, f64)> {
        // Distance is the primary sort key, so the within-radius members
        // are exactly a prefix of the stored list.
        let end = self.members.partition_point(|&(_, d)| d <= radius);
        self.members[..end].to_vec()
    }

    /// The `k` vertices nearest to the source (the source itself first, at
    /// distance 0), in non-decreasing `(distance, vertex)` order. Fewer than
    /// `k` entries are returned when the source's component is smaller.
    pub fn k_nearest(&self, k: usize) -> Vec<(VertexId, f64)> {
        self.members[..k.min(self.members.len())].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::WeightedGraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    #[test]
    fn bounded_distance_matches_legacy() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 1.0),
            None
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0),
            Some(2.0)
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 3.9),
            None
        );
        assert!(e
            .bounded_distance(&csr, VertexId(0), VertexId(3), 4.0)
            .is_some());
    }

    #[test]
    fn tree_view_distances_and_paths() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.source(), VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(
            tree.path_to(VertexId(3)).unwrap(),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(tree.path_to(VertexId(0)).unwrap(), vec![VertexId(0)]);
        let mut out = [0.0; 4];
        tree.copy_distances_into(&mut out);
        assert_eq!(out, [0.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 100.0),
            None
        );
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(2)), None);
        assert_eq!(tree.path_to(VertexId(2)), None);
    }

    #[test]
    fn ball_matches_legacy_order() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let legacy = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(e.ball(&csr, VertexId(0), 2.0), &legacy[..]);
        assert_eq!(
            e.ball(&csr, VertexId(3), 0.0),
            &[(VertexId(3), 0.0)],
            "radius 0 is the source alone"
        );
    }

    #[test]
    fn ball_buffer_grows_correctly_across_graph_sizes() {
        // Warm the engine with a ball that settles fewer vertices than the
        // workspace holds (len < capacity), then grow to a larger graph and
        // ball-query the whole thing. Regression: grow() used to reserve
        // `n - capacity` *additional* slots past the leftover length,
        // leaving ball_buf short and forcing a mid-query reallocation.
        let small =
            WeightedGraph::from_edges(10, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
                .unwrap();
        let mut e = DijkstraEngine::new();
        assert_eq!(e.ball(&CsrGraph::from(&small), VertexId(0), 100.0).len(), 5);
        let n = 16;
        let big = WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap();
        let csr = CsrGraph::from(&big);
        let members = e.ball(&csr, VertexId(0), n as f64);
        assert_eq!(
            members.len(),
            n,
            "the whole path graph is within the radius"
        );
        for (v, &(m, d)) in members.iter().enumerate() {
            assert_eq!(m, VertexId(v));
            assert!((d - v as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn copy_distances_fills_exactly_the_graph_prefix() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.num_vertices(), 4);
        let mut out = [f64::NAN; 6];
        tree.copy_distances_into(&mut out);
        assert_eq!(&out[..4], &[0.0, 1.0, 2.0, 4.0]);
        assert!(out[4].is_nan() && out[5].is_nan(), "extra slots untouched");
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn copy_distances_rejects_short_slices() {
        let csr = CsrGraph::from(&diamond());
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let mut out = [0.0; 2];
        tree.copy_distances_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ball_rejects_negative_radius() {
        let csr = CsrGraph::from(&diamond());
        DijkstraEngine::new().ball(&csr, VertexId(0), -1.0);
    }

    #[test]
    fn workspace_is_reused_after_the_first_query() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        for _ in 0..10 {
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        let s = e.stats();
        assert_eq!(s.queries, 10);
        assert_eq!(s.reuse_hits, 9, "only the first query may size the buffers");
        assert!(s.peak_frontier >= 1);
        assert!(s.heap_pops >= 10);
        // An engine pre-sized for the graph never allocates at all.
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        for _ in 0..5 {
            warm.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        assert_eq!(
            warm.stats().reuse_hits,
            5,
            "every query must be a reuse hit"
        );
        warm.reset_stats();
        assert_eq!(warm.stats(), EngineStats::default());
    }

    #[test]
    fn frontier_is_reported_per_query_and_bounded_by_pushes() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let (d, frontier) = e.bounded_distance_with_frontier(&csr, VertexId(0), VertexId(3), 10.0);
        assert_eq!(d, Some(4.0));
        // Lazy deletion: at most one push per half-edge improvement plus the
        // source.
        assert!(frontier >= 1 && frontier <= 2 * g.num_edges() + 1);
    }

    #[test]
    fn generation_wrap_resets_stamps_and_preserves_results() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        // Take reference answers with a fresh engine far from the wrap.
        let mut fresh = DijkstraEngine::new();
        let reference: Vec<Option<f64>> = (0..4)
            .map(|t| fresh.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0))
            .collect();
        // Seed the workspace with stale stamps, then fast-forward the
        // generation counter to the wrap threshold: the next query must run
        // the explicit stamp reset and still answer correctly from the
        // polluted workspace.
        warm.bounded_distance(&csr, VertexId(2), VertexId(3), 10.0);
        warm.force_generation_wrap();
        assert_eq!(warm.stats().generation_wraps, 0);
        for (t, want) in reference.iter().enumerate() {
            assert_eq!(
                warm.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0),
                *want,
                "target {t} across the wrap boundary"
            );
        }
        let stats = warm.stats();
        assert_eq!(stats.generation_wraps, 1, "exactly one reset at the wrap");
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "the wrap reset must not allocate"
        );
        // Trees and balls stay sound across a second forced wrap too.
        warm.force_generation_wrap();
        let legacy_ball = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(warm.ball(&csr, VertexId(0), 2.0), &legacy_ball[..]);
        let tree = warm.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(warm.stats().generation_wraps, 2);
    }

    #[test]
    fn generation_wrap_survives_a_sustained_query_stream() {
        // Cross the wrap mid-stream and keep going: every answer before,
        // at, and after the boundary must match a fresh engine.
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        engine.force_generation_wrap();
        let mut fresh = DijkstraEngine::new();
        for round in 0..64 {
            let s = VertexId(round % 4);
            let t = VertexId((round + 3) % 4);
            assert_eq!(
                engine.bounded_distance(&csr, s, t, 10.0),
                fresh.bounded_distance(&csr, s, t, 10.0),
                "round {round}"
            );
        }
        assert_eq!(engine.stats().generation_wraps, 1);
        assert_eq!(fresh.stats().generation_wraps, 0);
    }

    #[test]
    fn owned_tree_matches_the_borrowed_view_exactly() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let owned = tree.to_owned_tree();
        assert_eq!(owned.source(), VertexId(0));
        assert_eq!(owned.num_vertices(), 4);
        for v in 0..4 {
            assert_eq!(owned.distance(VertexId(v)), tree.distance(VertexId(v)));
            assert_eq!(owned.path_to(VertexId(v)), tree.path_to(VertexId(v)));
        }
        assert!(owned.memory_bytes() >= 4 * 12);
        // The owned tree outlives further engine queries.
        e.bounded_distance(&csr, VertexId(1), VertexId(3), 10.0);
        assert_eq!(owned.distance(VertexId(3)), Some(4.0));
    }

    #[test]
    fn owned_tree_ball_and_k_nearest_match_engine_queries() {
        let g = WeightedGraph::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 2.0),
                (3, 4, 0.5),
                // vertex 5 is isolated
            ],
        )
        .unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let owned = e.shortest_path_tree(&csr, VertexId(0)).to_owned_tree();
        for radius in [0.0, 1.0, 2.0, 2.5, 100.0, f64::INFINITY] {
            let expected = e.ball(&csr, VertexId(0), radius).to_vec();
            assert_eq!(owned.members_within(radius), expected, "radius {radius}");
        }
        // Unreachable vertices never appear, even at radius infinity.
        assert!(owned
            .members_within(f64::INFINITY)
            .iter()
            .all(|&(v, _)| v != VertexId(5)));
        assert_eq!(owned.distance(VertexId(5)), None);
        assert_eq!(owned.path_to(VertexId(5)), None);
        // k-nearest is the sorted prefix; oversized k returns the component.
        let all = owned.members_within(f64::INFINITY);
        assert_eq!(owned.k_nearest(3), all[..3].to_vec());
        assert_eq!(owned.k_nearest(0), vec![]);
        assert_eq!(owned.k_nearest(100), all);
        assert_eq!(owned.k_nearest(1), vec![(VertexId(0), 0.0)]);
    }

    #[test]
    fn deletions_are_invisible_to_queries_before_and_after_repack() {
        // Delete edges from a CSR graph and compare every query against a
        // fresh build of the surviving edges — with the tombstones pending
        // (lingering in the packed arrays) and again after consolidation.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 18;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.35) {
                    edges.push((u, v, rng.gen_range(0.5..4.0)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges.iter().copied()).unwrap();
        let mut csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        // Delete every third edge.
        let mut survivors = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                csr.remove_edge(crate::graph::EdgeId(i)).unwrap();
            } else {
                survivors.push(e);
            }
        }
        let reference_graph = WeightedGraph::from_edges(n, survivors).unwrap();
        let reference_csr = CsrGraph::from(&reference_graph);
        let mut reference_engine = DijkstraEngine::new();
        for phase in 0..2 {
            if phase == 1 {
                csr.compact();
                assert!(!csr.has_pending_deletions());
            } else {
                assert!(csr.has_pending_deletions());
            }
            for s in 0..n {
                for t in 0..n {
                    assert_eq!(
                        engine.bounded_distance(&csr, VertexId(s), VertexId(t), 10.0),
                        reference_engine.bounded_distance(
                            &reference_csr,
                            VertexId(s),
                            VertexId(t),
                            10.0
                        ),
                        "phase {phase}: {s} -> {t}"
                    );
                }
                let ball: Vec<_> = engine.ball(&csr, VertexId(s), 5.0).to_vec();
                assert_eq!(
                    ball,
                    reference_engine.ball(&reference_csr, VertexId(s), 5.0),
                    "phase {phase}: ball from {s}"
                );
            }
        }
    }

    #[test]
    fn checked_queries_refuse_stale_epochs() {
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let stamp = csr.epoch();
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(4.0)
        );
        assert!(e
            .checked_shortest_path_tree(&csr, stamp, VertexId(0))
            .is_ok());
        let queries_before = e.stats().queries;
        csr.append_edge(VertexId(0), VertexId(3), 0.5);
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0),
            Err(crate::GraphError::StaleEpoch {
                stamped: stamp,
                current: stamp + 1
            })
        );
        assert!(matches!(
            e.checked_shortest_path_tree(&csr, stamp, VertexId(0)),
            Err(crate::GraphError::StaleEpoch { .. })
        ));
        assert_eq!(
            e.stats().queries,
            queries_before,
            "refused queries never touch the workspace"
        );
        // A refreshed stamp answers against the mutated graph.
        assert_eq!(
            e.checked_bounded_distance(&csr, csr.epoch(), VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(0.5)
        );
    }

    #[test]
    fn matches_legacy_on_random_graphs_including_appends() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..15 {
            let n = 20;
            let mut g = WeightedGraph::new(n);
            let mut csr = CsrGraph::new(n);
            let mut engine = DijkstraEngine::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.3) {
                        let w = rng.gen_range(0.5..4.0);
                        g.add_edge(VertexId(u), VertexId(v), w);
                        csr.append_edge(VertexId(u), VertexId(v), w);
                    }
                }
                // Interleave queries with appends so overflow chains and
                // compactions are both exercised mid-growth.
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                let bound = rng.gen_range(0.1..12.0);
                assert_eq!(
                    engine.bounded_distance(&csr, s, t, bound),
                    dijkstra::bounded_distance(&g, s, t, bound)
                );
            }
            for s in 0..n {
                let legacy = dijkstra::shortest_path_tree(&g, VertexId(s));
                let tree = engine.shortest_path_tree(&csr, VertexId(s));
                for v in 0..n {
                    assert_eq!(tree.distance(VertexId(v)), legacy.distance(VertexId(v)));
                }
            }
        }
    }
}
