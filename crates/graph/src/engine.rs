//! A reusable, zero-allocation-per-query Dijkstra engine over [`CsrGraph`].
//!
//! The greedy spanner issues one bounded distance query per candidate edge —
//! `O(m)` queries against the growing spanner. The free functions in
//! [`crate::dijkstra`] allocate three `O(n)` vectors *per query*, so that hot
//! loop is allocation- and cache-bound. [`DijkstraEngine`] owns the workspace
//! instead:
//!
//! * `dist` / `parent` arrays are *generation-stamped*: a query bumps one
//!   counter instead of clearing `O(n)` state, so per-query cost is
//!   proportional to the explored ball, not to the graph;
//! * the priority queue is a lazy-deletion binary heap whose buffer is
//!   retained across queries; its pushes are bounded by the number of
//!   half-edge improvements (`≤ 2m + 1`), so an engine created with
//!   [`DijkstraEngine::with_capacity_for`] performs **zero heap allocation
//!   per query**, ever (an engine sized on the fly stops allocating once its
//!   buffers reach the workload's high-water mark);
//! * the engine counts queries, workspace-reuse hits (queries that ran
//!   without growing any buffer), heap pops and the peak frontier, which the
//!   spanner pipeline surfaces in its run statistics.
//!
//! ```
//! use spanner_graph::csr::CsrGraph;
//! use spanner_graph::engine::DijkstraEngine;
//! use spanner_graph::{VertexId, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap();
//! let csr = CsrGraph::from(&g);
//! let mut engine = DijkstraEngine::new();
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0), Some(2.0));
//! assert_eq!(engine.bounded_distance(&csr, VertexId(0), VertexId(2), 1.5), None);
//! assert_eq!(engine.stats().queries, 2);
//! assert_eq!(engine.stats().reuse_hits, 1); // only the first query allocated
//! ```

use std::collections::BinaryHeap;

use crate::bucket_queue::{bucket_delta, BucketQueue, HeapSlot};
use crate::csr::CsrGraph;
use crate::graph::VertexId;
use crate::landmarks::Landmarks;

const NO_VERTEX: u32 = u32::MAX;

/// Landmark columns the scratch buffer is pre-sized for by
/// [`DijkstraEngine::with_capacity_for`]; tables with more landmarks grow
/// the buffer once (one reuse miss) and stay.
const LANDMARK_SCRATCH_RESERVE: usize = 32;

/// Aggregate counters of a [`DijkstraEngine`]; see [`DijkstraEngine::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered since construction (or the last
    /// [`DijkstraEngine::reset_stats`]).
    pub queries: u64,
    /// Queries that ran entirely inside the existing workspace — no buffer
    /// grew, hence zero heap allocation. Always equal to `queries` for an
    /// engine created with [`DijkstraEngine::with_capacity_for`]; an engine
    /// sized on the fly reports the (few) growth queries as misses.
    pub reuse_hits: u64,
    /// Total heap pops across all queries, including stale lazy-deletion
    /// entries (the same accounting as the legacy free functions; bucket
    /// queue pops are counted here too).
    pub heap_pops: u64,
    /// Vertices settled (popped fresh and expanded) across all queries —
    /// always at most `heap_pops`. This is the work metric landmark (ALT)
    /// pruning shrinks: fewer settled vertices means a smaller explored
    /// ball for the same answer.
    pub settled_vertices: u64,
    /// Relaxations (and whole queries, when the source itself is pruned)
    /// discarded because the tentative distance — plus the landmark lower
    /// bound, when a [`Landmarks`] table is in play — exceeded the query
    /// bound. The visible counterpart of the bounded search's pruning
    /// power.
    pub pruned_by_bound: u64,
    /// Largest priority-queue length reached by any query (stale entries
    /// included — this is the memory high-water mark of the searches).
    pub peak_frontier: usize,
    /// Times the generation counter wrapped and the stamp workspace was
    /// explicitly reset (see [`DijkstraEngine::force_generation_wrap`]). The
    /// counter advances by 2 per query, so a wrap occurs roughly every 2³¹
    /// queries — routine for a long-running server, and harmless: the reset
    /// invalidates every stamp in `O(n)` and reuse stays sound.
    pub generation_wraps: u64,
}

/// Which priority queue a query runs on; see
/// [`DijkstraEngine::set_queue_policy`] and the [queue selection
/// rule](crate::bucket_queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Pick per query: the bucket queue for bounded queries whose
    /// `(bound, weight statistics)` pass [`crate::bucket_queue`]'s
    /// eligibility rule, the binary heap otherwise (unbounded searches,
    /// edgeless graphs, degenerate widths). Answers and settle order are
    /// bit-identical either way — this is purely a performance choice.
    #[default]
    Auto,
    /// Always the lazy-deletion binary heap (the reference queue).
    Heap,
}

/// What a search loop needs from its priority queue. Implemented by the
/// lazy-deletion [`BinaryHeap`] and by [`BucketQueue`]; both pop in exactly
/// non-decreasing `(key, vertex)` order, which is why every engine answer is
/// bit-identical across queue implementations.
trait Frontier {
    fn push(&mut self, key: f64, vertex: u32);
    fn pop(&mut self) -> Option<(f64, u32)>;
    fn len(&self) -> usize;
}

impl Frontier for BinaryHeap<HeapSlot> {
    #[inline(always)]
    fn push(&mut self, key: f64, vertex: u32) {
        BinaryHeap::push(self, HeapSlot { dist: key, vertex });
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(f64, u32)> {
        BinaryHeap::pop(self).map(|slot| (slot.dist, slot.vertex))
    }

    #[inline(always)]
    fn len(&self) -> usize {
        BinaryHeap::len(self)
    }
}

impl Frontier for BucketQueue {
    #[inline(always)]
    fn push(&mut self, key: f64, vertex: u32) {
        BucketQueue::push(self, key, vertex);
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(f64, u32)> {
        BucketQueue::pop(self)
    }

    #[inline(always)]
    fn len(&self) -> usize {
        BucketQueue::len(self)
    }
}

/// A lower bound on the remaining distance from a vertex to the query
/// target, consulted by the relaxation loop for pruning only — never for
/// ordering — so answers stay bit-identical with and without one (see
/// [`crate::landmarks`]).
trait Heuristic {
    /// Whether [`Heuristic::estimate`] can return anything but `0.0`; lets
    /// the no-heuristic search compile the pruning branch away.
    const ACTIVE: bool;
    fn estimate(&self, v: usize) -> f64;
}

/// The plain Dijkstra searches: no remaining-distance information.
struct NoHeuristic;

impl Heuristic for NoHeuristic {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn estimate(&self, _v: usize) -> f64 {
        0.0
    }
}

/// The ALT bound: max over landmarks of `|d(l, v) − d(l, target)|`, with
/// the target column pre-copied into the engine's scratch buffer.
/// `INFINITY` when some landmark proves `v` and the target disconnected.
struct LandmarkHeuristic<'a> {
    /// Vertex-major distance table, `table[v * k + l]`.
    table: &'a [f64],
    /// Distances from every landmark to the target (`k` entries).
    target_column: &'a [f64],
}

impl Heuristic for LandmarkHeuristic<'_> {
    const ACTIVE: bool = true;

    #[inline(always)]
    fn estimate(&self, v: usize) -> f64 {
        let k = self.target_column.len();
        let row = &self.table[v * k..(v + 1) * k];
        let mut h = 0.0f64;
        for (&dv, &dt) in row.iter().zip(self.target_column) {
            if dv.is_finite() && dt.is_finite() {
                let diff = (dv - dt).abs();
                if diff > h {
                    h = diff;
                }
            } else if dv.is_finite() != dt.is_finite() {
                // Exactly one side reachable from this landmark: the pair
                // is disconnected and `v` can never reach the target.
                return f64::INFINITY;
            }
        }
        h
    }
}

/// A reusable Dijkstra workspace over [`CsrGraph`]s.
///
/// One engine serves any number of graphs (buffers are sized to the largest
/// vertex count seen). All query methods take `&mut self` because they reuse
/// the workspace; results referencing the workspace ([`EngineTree`],
/// [`DijkstraEngine::ball`]) borrow the engine until the next query.
#[derive(Debug, Clone, Default)]
pub struct DijkstraEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Per-vertex query state, generation-encoded (generations advance by 2):
    /// `state[v] < generation` — untouched this query; `== generation` —
    /// touched (in the heap); `== generation + 1` — settled. One load answers
    /// both the "already settled?" and "already touched?" questions.
    state: Vec<u32>,
    /// Lazy-deletion heap: improvements push a fresh entry, superseded
    /// entries are skipped at pop time via `state`. The buffer is retained
    /// across queries.
    heap: BinaryHeap<HeapSlot>,
    /// The bounded-query bucket queue (see [`crate::bucket_queue`]); its
    /// buffers are likewise retained across queries.
    bucket: BucketQueue,
    /// Per-query landmark target column (see [`Landmarks`]); retained
    /// across queries like every other buffer.
    h_scratch: Vec<f64>,
    /// Settle order of the last collecting query (see [`DijkstraEngine::ball`]).
    ball_buf: Vec<(VertexId, f64)>,
    queue_policy: QueuePolicy,
    generation: u32,
    stats: EngineStats,
    last_frontier: usize,
}

impl DijkstraEngine {
    /// Creates an engine with an empty workspace; queries size it on demand
    /// (the growth queries are reported as reuse misses).
    pub fn new() -> Self {
        DijkstraEngine::default()
    }

    /// Creates an engine pre-sized for graphs of `num_vertices` vertices
    /// when the edge count is not known, assuming a sparse, spanner-like
    /// graph with `m ≈ n` — it routes through
    /// [`DijkstraEngine::with_capacity_for`] with `num_edges =
    /// num_vertices`, reserving the `2m + 2` heap-push bound for that `m`.
    ///
    /// The earlier heuristic reserved for `m = n/2`, which underestimates
    /// every connected graph (even a spanning tree has `m = n − 1`), so the
    /// first query on tree-like graphs could reallocate mid-search. Queries
    /// on graphs with more than `num_vertices` edges may still grow the
    /// heap once; callers that know `m` should use
    /// [`DijkstraEngine::with_capacity_for`] directly for the hard
    /// zero-allocation guarantee.
    pub fn with_capacity(num_vertices: usize) -> Self {
        DijkstraEngine::with_capacity_for(num_vertices, num_vertices)
    }

    /// Creates an engine pre-sized for graphs of up to `num_vertices`
    /// vertices and `num_edges` edges: the heap buffer is reserved for
    /// `2·num_edges + 2` entries, an upper bound on the pushes of any single
    /// query (each settled vertex relaxes each incident half-edge at most
    /// once). Such an engine performs **zero heap allocations on every
    /// query** — including the first — which is the contract the greedy
    /// construction asserts through its workspace-reuse counter.
    pub fn with_capacity_for(num_vertices: usize, num_edges: usize) -> Self {
        let mut e = DijkstraEngine::new();
        e.grow(num_vertices);
        e.reserve_heap(2 * num_edges + 2);
        e.bucket.reserve(2 * num_edges + 2);
        if e.h_scratch.capacity() < LANDMARK_SCRATCH_RESERVE {
            e.h_scratch.reserve_exact(LANDMARK_SCRATCH_RESERVE);
        }
        e
    }

    /// Sets the queue-selection policy for subsequent queries (default:
    /// [`QueuePolicy::Auto`]). Answers are bit-identical under every
    /// policy; this only trades constant factors.
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        self.queue_policy = policy;
    }

    /// The current queue-selection policy.
    pub fn queue_policy(&self) -> QueuePolicy {
        self.queue_policy
    }

    /// Ensures the heap buffer can hold `entries` entries without
    /// reallocating.
    pub fn reserve_heap(&mut self, entries: usize) {
        if self.heap.capacity() < entries {
            self.heap.reserve(entries - self.heap.len());
        }
    }

    /// The engine's aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the aggregate counters (the workspace is kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn grow(&mut self, n: usize) {
        self.dist.resize(n, f64::INFINITY);
        self.parent.resize(n, NO_VERTEX);
        self.state.resize(n, 0);
        if self.ball_buf.capacity() < n {
            // `reserve_exact` takes *additional* elements beyond the current
            // length, so subtract the length, not the capacity.
            self.ball_buf.reserve_exact(n - self.ball_buf.len());
        }
    }

    /// Generation values at or above this threshold trigger a stamp reset on
    /// the next query. Generations advance by 2, so the last generation a
    /// query may use before the reset is `WRAP_THRESHOLD + 1 = u32::MAX - 2`
    /// (its settled stamp), leaving `u32::MAX` itself unused.
    const WRAP_THRESHOLD: u32 = u32::MAX - 3;

    /// Explicit wrap-time workspace reset: invalidates every generation
    /// stamp (`O(n)`) and restarts the counter at zero, so the stamps of all
    /// previous queries read as "untouched". Called automatically by
    /// [`DijkstraEngine::begin_query`] when the counter approaches
    /// `u32::MAX`; a server answering billions of queries crosses that
    /// boundary routinely, and reuse must stay sound across it
    /// ([`EngineStats::generation_wraps`] counts the crossings).
    fn reset_generation_stamps(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0);
        self.generation = 0;
        self.stats.generation_wraps += 1;
    }

    /// Forces the next query to run the generation-wrap reset path, as if
    /// ~2³¹ queries had already been answered. The workspace stays valid —
    /// this only fast-forwards the stamp counter.
    ///
    /// Exposed so long-running-process tests can exercise the wrap without
    /// issuing billions of queries; harmless (but pointless) in production.
    #[doc(hidden)]
    pub fn force_generation_wrap(&mut self) {
        self.generation = Self::WRAP_THRESHOLD;
    }

    /// Returns `true` if the query had to grow the vertex-indexed buffers.
    fn begin_query(&mut self, n: usize) -> bool {
        self.stats.queries += 1;
        let grew = n > self.dist.len();
        if grew {
            self.grow(n);
        }
        // Generations advance by 2: `generation` marks touched, `generation
        // + 1` marks settled (see the `state` field).
        if self.generation >= Self::WRAP_THRESHOLD {
            self.reset_generation_stamps();
        }
        self.generation += 2;
        self.heap.clear();
        self.ball_buf.clear();
        self.last_frontier = 0;
        grew
    }

    /// Relaxes the half-edge `u → v` with weight `w`, given `u`'s settled
    /// distance `d`. The single `state` load decides settled / untouched /
    /// in-queue; improvements push a fresh queue entry (lazy deletion).
    /// `TRACK_PARENTS` is off for bounded-distance and ball queries (nothing
    /// reads parents there), which removes a random store per improvement
    /// from the greedy hot loop. With an active heuristic, an improvement
    /// whose `distance + lower bound` exceeds the query bound is dropped
    /// instead of pushed — pruning only; queue keys stay plain distances,
    /// so the settle order of surviving vertices is untouched.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn relax<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        u: u32,
        v: usize,
        w: f64,
        d: f64,
        gen: u32,
        bound: f64,
    ) {
        let s = self.state[v];
        if s == gen + 1 {
            return; // settled
        }
        let nd = d + w;
        // Entries beyond the bound can never contribute to a bounded answer.
        if nd > bound {
            self.stats.pruned_by_bound += 1;
            return;
        }
        if s < gen || nd < self.dist[v] {
            if H::ACTIVE {
                let rem = h.estimate(v);
                if rem == f64::INFINITY || nd + rem > bound {
                    self.stats.pruned_by_bound += 1;
                    return;
                }
            }
            self.state[v] = gen;
            self.dist[v] = nd;
            if TRACK_PARENTS {
                self.parent[v] = u;
            }
            queue.push(nd, v as u32);
            self.last_frontier = self.last_frontier.max(queue.len());
        }
    }

    /// The shared search loop, monomorphized per queue implementation and
    /// heuristic. Settles vertices in non-decreasing `(distance, vertex)`
    /// order; never pushes a vertex whose tentative distance (plus the
    /// heuristic's lower bound on the remaining distance, when active)
    /// exceeds `bound`; stops early once `target` settles. When `collect`
    /// is set, the settle order is recorded in `ball_buf`.
    ///
    /// `source_h` is the heuristic's estimate at the source: if it already
    /// exceeds the bound (or proves the pair disconnected), the search is
    /// over before it starts and the source is never touched.
    #[allow(clippy::too_many_arguments)]
    fn search<const TRACK_PARENTS: bool, Q: Frontier, H: Heuristic>(
        &mut self,
        queue: &mut Q,
        h: &H,
        graph: &CsrGraph,
        source: usize,
        target: Option<u32>,
        bound: f64,
        collect: bool,
        source_h: f64,
    ) {
        if H::ACTIVE && (source_h == f64::INFINITY || source_h > bound) {
            self.stats.pruned_by_bound += 1;
            return;
        }
        // Tombstoned half-edges linger in the packed arrays until the next
        // re-pack; only then does the scan pay for the liveness check.
        let pending_deletions = graph.has_pending_deletions();
        let gen = self.generation;
        self.dist[source] = 0.0;
        if TRACK_PARENTS {
            self.parent[source] = NO_VERTEX;
        }
        self.state[source] = gen;
        queue.push(0.0, source as u32);
        self.last_frontier = self.last_frontier.max(queue.len());
        while let Some((d, u)) = queue.pop() {
            self.stats.heap_pops += 1;
            if self.state[u as usize] == gen + 1 {
                continue; // stale lazy-deletion entry
            }
            self.state[u as usize] = gen + 1;
            self.stats.settled_vertices += 1;
            if collect {
                self.ball_buf.push((VertexId(u as usize), d));
            }
            if Some(u) == target {
                break;
            }
            // Packed half-edges: two parallel slices, no per-neighbor branch
            // on the deletion-free fast path.
            let (targets, weights) = graph.packed_neighbors(VertexId(u as usize));
            if pending_deletions {
                let ids = graph.packed_neighbor_ids(VertexId(u as usize));
                for i in 0..targets.len() {
                    if !graph.is_edge_id_live(ids[i]) {
                        continue;
                    }
                    self.relax::<TRACK_PARENTS, Q, H>(
                        queue,
                        h,
                        u,
                        targets[i] as usize,
                        weights[i],
                        d,
                        gen,
                        bound,
                    );
                }
            } else {
                for i in 0..targets.len() {
                    self.relax::<TRACK_PARENTS, Q, H>(
                        queue,
                        h,
                        u,
                        targets[i] as usize,
                        weights[i],
                        d,
                        gen,
                        bound,
                    );
                }
            }
            // Live overflow half-edges appended since the last re-pack
            // (short; the iterator itself skips tombstoned entries).
            for (v, w) in graph.overflow_neighbors(VertexId(u as usize)) {
                self.relax::<TRACK_PARENTS, Q, H>(queue, h, u, v as usize, w, d, gen, bound);
            }
        }
    }

    /// Query entry point: validates, advances the generation, resolves the
    /// queue (per [`QueuePolicy`]) and the landmark heuristic, runs the
    /// monomorphized search, and keeps the workspace-reuse accounting (a
    /// query is a reuse hit only if **no** buffer — vertex arrays, either
    /// queue, or the landmark scratch — grew).
    fn run_query<const TRACK_PARENTS: bool>(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: Option<VertexId>,
        bound: f64,
        collect: bool,
        landmarks: Option<&Landmarks>,
    ) {
        let n = graph.num_vertices();
        assert!(source.index() < n, "source vertex out of range");
        if let Some(t) = target {
            assert!(t.index() < n, "target vertex out of range");
        }
        let target = target.map(|t| t.index() as u32);
        // Resolve the heuristic first: the target column is copied into the
        // scratch buffer, whose growth counts as a reuse miss like any
        // other buffer's.
        let mut scratch = std::mem::take(&mut self.h_scratch);
        let lm = match (landmarks, target) {
            (Some(lm), Some(_)) if !lm.is_empty() => Some(lm),
            _ => None,
        };
        let mut grew = false;
        if let (Some(lm), Some(t)) = (lm, target) {
            if scratch.capacity() < lm.len() {
                grew = true;
            }
            lm.copy_target_column(t as usize, &mut scratch);
        }
        grew |= self.begin_query(n);
        let s = source.index();
        let delta = match self.queue_policy {
            QueuePolicy::Auto => bucket_delta(graph, bound),
            QueuePolicy::Heap => None,
        };
        let reused = match (delta, lm) {
            (None, None) => {
                let mut heap = std::mem::take(&mut self.heap);
                let cap = heap.capacity();
                self.search::<TRACK_PARENTS, _, _>(
                    &mut heap,
                    &NoHeuristic,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    0.0,
                );
                let ok = heap.capacity() == cap;
                self.heap = heap;
                ok
            }
            (Some(delta), None) => {
                let mut bucket = std::mem::take(&mut self.bucket);
                bucket.begin(delta, bound);
                let cap = bucket.capacity_signature();
                self.search::<TRACK_PARENTS, _, _>(
                    &mut bucket,
                    &NoHeuristic,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    0.0,
                );
                let ok = bucket.capacity_signature() == cap;
                self.bucket = bucket;
                ok
            }
            (None, Some(lm)) => {
                let h = LandmarkHeuristic {
                    table: lm.table(),
                    target_column: &scratch,
                };
                let source_h = h.estimate(s);
                let mut heap = std::mem::take(&mut self.heap);
                let cap = heap.capacity();
                self.search::<TRACK_PARENTS, _, _>(
                    &mut heap, &h, graph, s, target, bound, collect, source_h,
                );
                let ok = heap.capacity() == cap;
                self.heap = heap;
                ok
            }
            (Some(delta), Some(lm)) => {
                let h = LandmarkHeuristic {
                    table: lm.table(),
                    target_column: &scratch,
                };
                let source_h = h.estimate(s);
                let mut bucket = std::mem::take(&mut self.bucket);
                bucket.begin(delta, bound);
                let cap = bucket.capacity_signature();
                self.search::<TRACK_PARENTS, _, _>(
                    &mut bucket,
                    &h,
                    graph,
                    s,
                    target,
                    bound,
                    collect,
                    source_h,
                );
                let ok = bucket.capacity_signature() == cap;
                self.bucket = bucket;
                ok
            }
        };
        self.h_scratch = scratch;
        self.stats.peak_frontier = self.stats.peak_frontier.max(self.last_frontier);
        if !grew && reused {
            self.stats.reuse_hits += 1;
        }
    }

    /// Distance between `source` and `target` if it is at most `bound`,
    /// otherwise `None` — the greedy spanner's per-candidate query, with
    /// search cost proportional to the ball of radius `bound`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Option<f64> {
        self.bounded_distance_with_frontier(graph, source, target, bound)
            .0
    }

    /// Like [`DijkstraEngine::bounded_distance`], additionally reporting the
    /// peak priority-queue length of this query.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn bounded_distance_with_frontier(
        &mut self,
        graph: &CsrGraph,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> (Option<f64>, usize) {
        self.run_query::<false>(graph, source, Some(target), bound, false, None);
        (self.extract_target(target, bound), self.last_frontier)
    }

    /// Like [`DijkstraEngine::bounded_distance`], additionally pruning the
    /// search with a [`Landmarks`] table: vertices whose tentative distance
    /// plus max-over-landmarks triangle lower bound exceeds `bound` are never
    /// pushed. The pruning is answer-invariant — the result is bit-identical
    /// to [`DijkstraEngine::bounded_distance`] for every landmark set — it
    /// only shrinks the explored ball.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range, if the table's vertex count
    /// differs from the graph's, or if the table's epoch stamp does not
    /// match the graph (stale landmark tables must be rebuilt, never
    /// consulted).
    pub fn bounded_distance_landmarked(
        &mut self,
        graph: &CsrGraph,
        landmarks: &Landmarks,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Option<f64> {
        assert_eq!(
            landmarks.num_vertices(),
            graph.num_vertices(),
            "landmark table was built over a different vertex count"
        );
        assert_eq!(
            landmarks.epoch(),
            graph.epoch(),
            "landmark table is stale; rebuild it after graph mutations"
        );
        self.run_query::<false>(graph, source, Some(target), bound, false, Some(landmarks));
        self.extract_target(target, bound)
    }

    /// Reads the bounded-distance answer for `target` out of the workspace
    /// after a query: settled this generation and within the bound.
    #[inline]
    fn extract_target(&self, target: VertexId, bound: f64) -> Option<f64> {
        let t = target.index();
        if self.state[t] == self.generation + 1 && self.dist[t] <= bound {
            Some(self.dist[t])
        } else {
            None
        }
    }

    /// Runs a full single-source search and returns a view of the resulting
    /// shortest-path tree. The view borrows the workspace — it is valid until
    /// the next query — and allocates only in
    /// [`EngineTree::path_to`] (which builds the returned path).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        source: VertexId,
    ) -> EngineTree<'a> {
        self.run_query::<true>(graph, source, None, f64::INFINITY, false, None);
        EngineTree {
            num_vertices: graph.num_vertices(),
            engine: self,
            source,
        }
    }

    /// Returns every vertex within graph distance `radius` of `source` with
    /// its distance, in non-decreasing `(distance, vertex)` order (the source
    /// itself first, at distance 0). The slice borrows the engine's settle
    /// buffer and is valid until the next query.
    ///
    /// **Tie handling.** Vertices at equal distance appear in ascending
    /// vertex-id order. This holds for *every* queue implementation the
    /// engine selects (binary heap and bucket queue alike): both pop in
    /// exact `(distance, vertex)` order, so the settle order — and therefore
    /// this slice, and any [`SptTree::k_nearest`] truncation derived from
    /// it — is identical across [`QueuePolicy`] settings.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `radius` is negative.
    pub fn ball(&mut self, graph: &CsrGraph, source: VertexId, radius: f64) -> &[(VertexId, f64)] {
        assert!(radius >= 0.0, "ball radius must be non-negative");
        self.run_query::<false>(graph, source, None, radius, true, None);
        &self.ball_buf
    }

    /// Epoch-checked [`DijkstraEngine::bounded_distance`]: the caller passes
    /// the epoch its view of `graph` was stamped at
    /// ([`CsrGraph::epoch`]), and the engine **refuses to answer against a
    /// mutated graph** — a stale stamp is a typed error, never a silent
    /// answer computed over data the caller has not seen.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch. The workspace is untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn checked_bounded_distance(
        &mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
        target: VertexId,
        bound: f64,
    ) -> Result<Option<f64>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.bounded_distance(graph, source, target, bound))
    }

    /// Epoch-checked [`DijkstraEngine::shortest_path_tree`]; see
    /// [`DijkstraEngine::checked_bounded_distance`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::StaleEpoch`] when `stamped` differs from
    /// the graph's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn checked_shortest_path_tree<'a>(
        &'a mut self,
        graph: &CsrGraph,
        stamped: u64,
        source: VertexId,
    ) -> Result<EngineTree<'a>, crate::GraphError> {
        graph.verify_epoch(stamped)?;
        Ok(self.shortest_path_tree(graph, source))
    }
}

/// A borrowed view of the last [`DijkstraEngine::shortest_path_tree`] result.
#[derive(Debug)]
pub struct EngineTree<'a> {
    engine: &'a DijkstraEngine,
    source: VertexId,
    /// Vertex count of the queried graph (the workspace may be larger).
    num_vertices: usize,
}

impl EngineTree<'_> {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let i = v.index();
        (self.engine.state[i] >= self.engine.generation).then(|| self.engine.dist[i])
    }

    /// Writes the distance of every vertex of the queried graph into the
    /// first [`EngineTree::num_vertices`] slots of `out` (`f64::INFINITY`
    /// for unreachable vertices); any extra slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the queried graph's vertex count.
    pub fn copy_distances_into(&self, out: &mut [f64]) {
        assert!(
            out.len() >= self.num_vertices,
            "output slice shorter than the graph's vertex count"
        );
        for (v, slot) in out[..self.num_vertices].iter_mut().enumerate() {
            *slot = self.distance(VertexId(v)).unwrap_or(f64::INFINITY);
        }
    }

    /// Reconstructs the shortest path from the source to `target` as a vertex
    /// sequence (source first), or `None` if unreachable. This is the only
    /// allocating accessor (it builds the returned `Vec`).
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.engine.parent[cur as usize] != NO_VERTEX {
            cur = self.engine.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Materializes this view as an owned [`SptTree`] that outlives the
    /// engine — the form a shortest-path-tree cache stores. Distances and
    /// parents are copied verbatim, so every [`SptTree`] accessor returns
    /// **bit-identical** results to the corresponding accessor on this view.
    pub fn to_owned_tree(&self) -> SptTree {
        let n = self.num_vertices;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_VERTEX; n];
        let mut members = Vec::new();
        for v in 0..n {
            if self.engine.state[v] >= self.engine.generation {
                dist[v] = self.engine.dist[v];
                parent[v] = self.engine.parent[v];
                members.push((VertexId(v), self.engine.dist[v]));
            }
        }
        // Sorted once here so every cached ball / k-nearest answer is a
        // prefix read instead of a per-query sort.
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        SptTree {
            source: self.source,
            dist,
            parent,
            members,
        }
    }
}

/// An owned shortest-path tree: the cacheable counterpart of the borrowed
/// [`EngineTree`] view, produced by [`EngineTree::to_owned_tree`].
///
/// A serving layer computes a source's tree once and then answers every
/// query about that source from the tree — distance lookups are `O(1)`,
/// path reconstruction is `O(path length)`, and ball / k-nearest answers
/// are filters over the stored distances. All accessors return bit-identical
/// results to a fresh engine query from the same source (the determinism
/// contract a query cache relies on).
#[derive(Debug, Clone, PartialEq)]
pub struct SptTree {
    source: VertexId,
    /// Distance from the source per vertex; `f64::INFINITY` = unreachable.
    dist: Vec<f64>,
    /// Predecessor per vertex on its shortest path; `NO_VERTEX` for the
    /// source and for unreachable vertices.
    parent: Vec<u32>,
    /// Every reached vertex with its distance, sorted by
    /// `(distance, vertex)` — the engine's settle order, pre-computed so
    /// ball and k-nearest answers are prefix reads.
    members: Vec<(VertexId, f64)>,
}

impl SptTree {
    /// The source vertex of this tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Vertex count of the graph this tree was computed over.
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }

    /// Approximate heap footprint of this tree, for cache sizing.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
            + self.members.len() * std::mem::size_of::<(VertexId, f64)>()
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs the shortest path from the source to `target` (source
    /// first), or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur as usize));
        }
        path.reverse();
        Some(path)
    }

    /// Every vertex within distance `radius` of the source, with its
    /// distance, in non-decreasing `(distance, vertex)` order — the same
    /// order (and the same values, bit for bit) as
    /// [`DijkstraEngine::ball`] from this source. `O(log n)` to locate the
    /// prefix plus the output copy (the member list is stored sorted).
    pub fn members_within(&self, radius: f64) -> Vec<(VertexId, f64)> {
        // Distance is the primary sort key, so the within-radius members
        // are exactly a prefix of the stored list.
        let end = self.members.partition_point(|&(_, d)| d <= radius);
        self.members[..end].to_vec()
    }

    /// The `k` vertices nearest to the source (the source itself first, at
    /// distance 0), in non-decreasing `(distance, vertex)` order. Fewer than
    /// `k` entries are returned when the source's component is smaller.
    ///
    /// **Tie handling.** Equal-distance vertices are ordered by ascending
    /// vertex id, so the truncation point at a distance tie is
    /// deterministic and identical across queue implementations (see
    /// [`DijkstraEngine::ball`]).
    pub fn k_nearest(&self, k: usize) -> Vec<(VertexId, f64)> {
        self.members[..k.min(self.members.len())].to_vec()
    }

    /// The full reachable member list in non-decreasing `(distance, vertex)`
    /// order — everything [`SptTree::members_within`] /
    /// [`SptTree::k_nearest`] truncate from, without the copy.
    pub fn members(&self) -> &[(VertexId, f64)] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::WeightedGraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    #[test]
    fn bounded_distance_matches_legacy() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 1.0),
            None
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0),
            Some(2.0)
        );
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 3.9),
            None
        );
        assert!(e
            .bounded_distance(&csr, VertexId(0), VertexId(3), 4.0)
            .is_some());
    }

    #[test]
    fn tree_view_distances_and_paths() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.source(), VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(
            tree.path_to(VertexId(3)).unwrap(),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(tree.path_to(VertexId(0)).unwrap(), vec![VertexId(0)]);
        let mut out = [0.0; 4];
        tree.copy_distances_into(&mut out);
        assert_eq!(out, [0.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 100.0),
            None
        );
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(2)), None);
        assert_eq!(tree.path_to(VertexId(2)), None);
    }

    #[test]
    fn ball_matches_legacy_order() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let legacy = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(e.ball(&csr, VertexId(0), 2.0), &legacy[..]);
        assert_eq!(
            e.ball(&csr, VertexId(3), 0.0),
            &[(VertexId(3), 0.0)],
            "radius 0 is the source alone"
        );
    }

    #[test]
    fn ball_buffer_grows_correctly_across_graph_sizes() {
        // Warm the engine with a ball that settles fewer vertices than the
        // workspace holds (len < capacity), then grow to a larger graph and
        // ball-query the whole thing. Regression: grow() used to reserve
        // `n - capacity` *additional* slots past the leftover length,
        // leaving ball_buf short and forcing a mid-query reallocation.
        let small =
            WeightedGraph::from_edges(10, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
                .unwrap();
        let mut e = DijkstraEngine::new();
        assert_eq!(e.ball(&CsrGraph::from(&small), VertexId(0), 100.0).len(), 5);
        let n = 16;
        let big = WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap();
        let csr = CsrGraph::from(&big);
        let members = e.ball(&csr, VertexId(0), n as f64);
        assert_eq!(
            members.len(),
            n,
            "the whole path graph is within the radius"
        );
        for (v, &(m, d)) in members.iter().enumerate() {
            assert_eq!(m, VertexId(v));
            assert!((d - v as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn copy_distances_fills_exactly_the_graph_prefix() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.num_vertices(), 4);
        let mut out = [f64::NAN; 6];
        tree.copy_distances_into(&mut out);
        assert_eq!(&out[..4], &[0.0, 1.0, 2.0, 4.0]);
        assert!(out[4].is_nan() && out[5].is_nan(), "extra slots untouched");
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn copy_distances_rejects_short_slices() {
        let csr = CsrGraph::from(&diamond());
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let mut out = [0.0; 2];
        tree.copy_distances_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ball_rejects_negative_radius() {
        let csr = CsrGraph::from(&diamond());
        DijkstraEngine::new().ball(&csr, VertexId(0), -1.0);
    }

    #[test]
    fn workspace_is_reused_after_the_first_query() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        for _ in 0..10 {
            e.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        let s = e.stats();
        assert_eq!(s.queries, 10);
        assert_eq!(s.reuse_hits, 9, "only the first query may size the buffers");
        assert!(s.peak_frontier >= 1);
        assert!(s.heap_pops >= 10);
        // An engine pre-sized for the graph never allocates at all.
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        for _ in 0..5 {
            warm.bounded_distance(&csr, VertexId(0), VertexId(3), 10.0);
        }
        assert_eq!(
            warm.stats().reuse_hits,
            5,
            "every query must be a reuse hit"
        );
        warm.reset_stats();
        assert_eq!(warm.stats(), EngineStats::default());
    }

    #[test]
    fn frontier_is_reported_per_query_and_bounded_by_pushes() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let (d, frontier) = e.bounded_distance_with_frontier(&csr, VertexId(0), VertexId(3), 10.0);
        assert_eq!(d, Some(4.0));
        // Lazy deletion: at most one push per half-edge improvement plus the
        // source.
        assert!(frontier >= 1 && frontier <= 2 * g.num_edges() + 1);
    }

    #[test]
    fn generation_wrap_resets_stamps_and_preserves_results() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut warm = DijkstraEngine::with_capacity_for(g.num_vertices(), g.num_edges());
        // Take reference answers with a fresh engine far from the wrap.
        let mut fresh = DijkstraEngine::new();
        let reference: Vec<Option<f64>> = (0..4)
            .map(|t| fresh.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0))
            .collect();
        // Seed the workspace with stale stamps, then fast-forward the
        // generation counter to the wrap threshold: the next query must run
        // the explicit stamp reset and still answer correctly from the
        // polluted workspace.
        warm.bounded_distance(&csr, VertexId(2), VertexId(3), 10.0);
        warm.force_generation_wrap();
        assert_eq!(warm.stats().generation_wraps, 0);
        for (t, want) in reference.iter().enumerate() {
            assert_eq!(
                warm.bounded_distance(&csr, VertexId(0), VertexId(t), 10.0),
                *want,
                "target {t} across the wrap boundary"
            );
        }
        let stats = warm.stats();
        assert_eq!(stats.generation_wraps, 1, "exactly one reset at the wrap");
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "the wrap reset must not allocate"
        );
        // Trees and balls stay sound across a second forced wrap too.
        warm.force_generation_wrap();
        let legacy_ball = dijkstra::ball(&g, VertexId(0), 2.0);
        assert_eq!(warm.ball(&csr, VertexId(0), 2.0), &legacy_ball[..]);
        let tree = warm.shortest_path_tree(&csr, VertexId(0));
        assert_eq!(tree.distance(VertexId(3)), Some(4.0));
        assert_eq!(warm.stats().generation_wraps, 2);
    }

    #[test]
    fn generation_wrap_survives_a_sustained_query_stream() {
        // Cross the wrap mid-stream and keep going: every answer before,
        // at, and after the boundary must match a fresh engine.
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        engine.force_generation_wrap();
        let mut fresh = DijkstraEngine::new();
        for round in 0..64 {
            let s = VertexId(round % 4);
            let t = VertexId((round + 3) % 4);
            assert_eq!(
                engine.bounded_distance(&csr, s, t, 10.0),
                fresh.bounded_distance(&csr, s, t, 10.0),
                "round {round}"
            );
        }
        assert_eq!(engine.stats().generation_wraps, 1);
        assert_eq!(fresh.stats().generation_wraps, 0);
    }

    #[test]
    fn owned_tree_matches_the_borrowed_view_exactly() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let tree = e.shortest_path_tree(&csr, VertexId(0));
        let owned = tree.to_owned_tree();
        assert_eq!(owned.source(), VertexId(0));
        assert_eq!(owned.num_vertices(), 4);
        for v in 0..4 {
            assert_eq!(owned.distance(VertexId(v)), tree.distance(VertexId(v)));
            assert_eq!(owned.path_to(VertexId(v)), tree.path_to(VertexId(v)));
        }
        assert!(owned.memory_bytes() >= 4 * 12);
        // The owned tree outlives further engine queries.
        e.bounded_distance(&csr, VertexId(1), VertexId(3), 10.0);
        assert_eq!(owned.distance(VertexId(3)), Some(4.0));
    }

    #[test]
    fn owned_tree_ball_and_k_nearest_match_engine_queries() {
        let g = WeightedGraph::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 2.0),
                (3, 4, 0.5),
                // vertex 5 is isolated
            ],
        )
        .unwrap();
        let csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let owned = e.shortest_path_tree(&csr, VertexId(0)).to_owned_tree();
        for radius in [0.0, 1.0, 2.0, 2.5, 100.0, f64::INFINITY] {
            let expected = e.ball(&csr, VertexId(0), radius).to_vec();
            assert_eq!(owned.members_within(radius), expected, "radius {radius}");
        }
        // Unreachable vertices never appear, even at radius infinity.
        assert!(owned
            .members_within(f64::INFINITY)
            .iter()
            .all(|&(v, _)| v != VertexId(5)));
        assert_eq!(owned.distance(VertexId(5)), None);
        assert_eq!(owned.path_to(VertexId(5)), None);
        // k-nearest is the sorted prefix; oversized k returns the component.
        let all = owned.members_within(f64::INFINITY);
        assert_eq!(owned.k_nearest(3), all[..3].to_vec());
        assert_eq!(owned.k_nearest(0), vec![]);
        assert_eq!(owned.k_nearest(100), all);
        assert_eq!(owned.k_nearest(1), vec![(VertexId(0), 0.0)]);
    }

    #[test]
    fn deletions_are_invisible_to_queries_before_and_after_repack() {
        // Delete edges from a CSR graph and compare every query against a
        // fresh build of the surviving edges — with the tombstones pending
        // (lingering in the packed arrays) and again after consolidation.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 18;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.35) {
                    edges.push((u, v, rng.gen_range(0.5..4.0)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges.iter().copied()).unwrap();
        let mut csr = CsrGraph::from(&g);
        let mut engine = DijkstraEngine::new();
        // Delete every third edge.
        let mut survivors = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                csr.remove_edge(crate::graph::EdgeId(i)).unwrap();
            } else {
                survivors.push(e);
            }
        }
        let reference_graph = WeightedGraph::from_edges(n, survivors).unwrap();
        let reference_csr = CsrGraph::from(&reference_graph);
        let mut reference_engine = DijkstraEngine::new();
        for phase in 0..2 {
            if phase == 1 {
                csr.compact();
                assert!(!csr.has_pending_deletions());
            } else {
                assert!(csr.has_pending_deletions());
            }
            for s in 0..n {
                for t in 0..n {
                    assert_eq!(
                        engine.bounded_distance(&csr, VertexId(s), VertexId(t), 10.0),
                        reference_engine.bounded_distance(
                            &reference_csr,
                            VertexId(s),
                            VertexId(t),
                            10.0
                        ),
                        "phase {phase}: {s} -> {t}"
                    );
                }
                let ball: Vec<_> = engine.ball(&csr, VertexId(s), 5.0).to_vec();
                assert_eq!(
                    ball,
                    reference_engine.ball(&reference_csr, VertexId(s), 5.0),
                    "phase {phase}: ball from {s}"
                );
            }
        }
    }

    #[test]
    fn checked_queries_refuse_stale_epochs() {
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        let mut e = DijkstraEngine::new();
        let stamp = csr.epoch();
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(4.0)
        );
        assert!(e
            .checked_shortest_path_tree(&csr, stamp, VertexId(0))
            .is_ok());
        let queries_before = e.stats().queries;
        csr.append_edge(VertexId(0), VertexId(3), 0.5);
        assert_eq!(
            e.checked_bounded_distance(&csr, stamp, VertexId(0), VertexId(3), 10.0),
            Err(crate::GraphError::StaleEpoch {
                stamped: stamp,
                current: stamp + 1
            })
        );
        assert!(matches!(
            e.checked_shortest_path_tree(&csr, stamp, VertexId(0)),
            Err(crate::GraphError::StaleEpoch { .. })
        ));
        assert_eq!(
            e.stats().queries,
            queries_before,
            "refused queries never touch the workspace"
        );
        // A refreshed stamp answers against the mutated graph.
        assert_eq!(
            e.checked_bounded_distance(&csr, csr.epoch(), VertexId(0), VertexId(3), 10.0)
                .unwrap(),
            Some(0.5)
        );
    }

    #[test]
    fn matches_legacy_on_random_graphs_including_appends() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..15 {
            let n = 20;
            let mut g = WeightedGraph::new(n);
            let mut csr = CsrGraph::new(n);
            let mut engine = DijkstraEngine::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.3) {
                        let w = rng.gen_range(0.5..4.0);
                        g.add_edge(VertexId(u), VertexId(v), w);
                        csr.append_edge(VertexId(u), VertexId(v), w);
                    }
                }
                // Interleave queries with appends so overflow chains and
                // compactions are both exercised mid-growth.
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                let bound = rng.gen_range(0.1..12.0);
                assert_eq!(
                    engine.bounded_distance(&csr, s, t, bound),
                    dijkstra::bounded_distance(&g, s, t, bound)
                );
            }
            for s in 0..n {
                let legacy = dijkstra::shortest_path_tree(&g, VertexId(s));
                let tree = engine.shortest_path_tree(&csr, VertexId(s));
                for v in 0..n {
                    assert_eq!(tree.distance(VertexId(v)), legacy.distance(VertexId(v)));
                }
            }
        }
    }

    #[test]
    fn settled_and_pruned_counters_are_monotone_sane() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        for policy in [QueuePolicy::Heap, QueuePolicy::Auto] {
            let mut e = DijkstraEngine::new();
            e.set_queue_policy(policy);
            assert_eq!(e.queue_policy(), policy);
            let stats0 = e.stats();
            assert_eq!(stats0.settled_vertices, 0);
            assert_eq!(stats0.pruned_by_bound, 0);
            // Tight bound: the 0-2 edge (weight 5) and anything through
            // vertex 3 are pruned.
            e.bounded_distance(&csr, VertexId(0), VertexId(2), 2.0);
            let s1 = e.stats();
            assert!(s1.settled_vertices >= 1, "{policy:?}: source must settle");
            assert!(
                s1.settled_vertices <= s1.heap_pops,
                "{policy:?}: every settle consumes a pop"
            );
            assert!(
                s1.pruned_by_bound >= 1,
                "{policy:?}: the weight-5 edge must be pruned at bound 2"
            );
            // An unbounded SPT settles the whole component, prunes nothing new.
            e.shortest_path_tree(&csr, VertexId(0));
            let s2 = e.stats();
            assert_eq!(s2.settled_vertices, s1.settled_vertices + 4);
            assert_eq!(s2.pruned_by_bound, s1.pruned_by_bound);
        }
    }

    #[test]
    fn queue_policies_agree_on_bounded_queries_and_balls() {
        let mut rng = SmallRng::seed_from_u64(72_026);
        let n = 40;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.15) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.25..8.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let mut heap_engine = DijkstraEngine::new();
        heap_engine.set_queue_policy(QueuePolicy::Heap);
        let mut auto_engine = DijkstraEngine::new();
        for case in 0..60 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = rng.gen_range(0.1..20.0);
            assert_eq!(
                heap_engine.bounded_distance(&csr, s, t, bound),
                auto_engine.bounded_distance(&csr, s, t, bound),
                "case {case}: bounded distance differs between queue policies"
            );
            let heap_ball = heap_engine.ball(&csr, s, bound).to_vec();
            let auto_ball = auto_engine.ball(&csr, s, bound).to_vec();
            assert_eq!(
                heap_ball, auto_ball,
                "case {case}: ball membership/order differs between queue policies"
            );
        }
        // Auto actually took the bucket path: it settles the same vertices
        // but reports the same answers, so distinguish via the policy getter.
        assert_eq!(auto_engine.queue_policy(), QueuePolicy::Auto);
    }

    #[test]
    fn landmarked_distances_match_plain_distances() {
        use crate::landmarks::Landmarks;
        let mut rng = SmallRng::seed_from_u64(1607);
        let n = 32;
        let mut g = WeightedGraph::new(n);
        // Two components: vertices 0..24 and 24..32 are never joined.
        for u in 0..n {
            for v in (u + 1)..n {
                let same_side = (u < 24) == (v < 24);
                if same_side && rng.gen_bool(0.2) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..5.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 4);
        let mut plain = DijkstraEngine::new();
        let mut pruned = DijkstraEngine::new();
        for case in 0..120 {
            let s = VertexId(rng.gen_range(0..n));
            let t = VertexId(rng.gen_range(0..n));
            let bound = if case % 7 == 0 {
                f64::INFINITY
            } else {
                rng.gen_range(0.1..15.0)
            };
            assert_eq!(
                plain.bounded_distance(&csr, s, t, bound),
                pruned.bounded_distance_landmarked(&csr, &lm, s, t, bound),
                "case {case}: ALT pruning changed the answer for {s:?}->{t:?} at bound {bound}"
            );
        }
        // Source == target is answered without ever consulting the graph's
        // edges (h(s, s) = 0 for identical table rows).
        assert_eq!(
            pruned.bounded_distance_landmarked(&csr, &lm, VertexId(5), VertexId(5), 0.0),
            Some(0.0)
        );
        // Cross-component pairs are pruned at the source: the disconnection
        // proof means the search never starts.
        let before = pruned.stats();
        assert_eq!(
            pruned.bounded_distance_landmarked(&csr, &lm, VertexId(0), VertexId(30), f64::INFINITY),
            None
        );
        let after = pruned.stats();
        assert_eq!(
            after.settled_vertices, before.settled_vertices,
            "a provably disconnected pair must not settle anything"
        );
        assert_eq!(after.pruned_by_bound, before.pruned_by_bound + 1);
    }

    #[test]
    fn stale_or_mismatched_landmarks_are_refused() {
        use crate::landmarks::Landmarks;
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 2);
        csr.append_edge(VertexId(0), VertexId(3), 1.0);
        let mut e = DijkstraEngine::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.bounded_distance_landmarked(&csr, &lm, VertexId(0), VertexId(3), 10.0)
        }));
        assert!(err.is_err(), "stale landmark table must be refused");
    }

    #[test]
    fn warm_engine_stays_allocation_free_under_bucket_and_landmarks() {
        use crate::landmarks::Landmarks;
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 64;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.1) {
                    g.add_edge(VertexId(u), VertexId(v), rng.gen_range(0.5..4.0));
                }
            }
        }
        let csr = CsrGraph::from(&g);
        let lm = Landmarks::build_degree_ranked(&csr, 8);
        let mut e = DijkstraEngine::with_capacity_for(n, csr.num_edges());
        for i in 0..50 {
            let s = VertexId((i * 13) % n);
            let t = VertexId((i * 29 + 7) % n);
            let bound = 2.0 + (i % 5) as f64;
            // Alternate bucket-only and bucket+ALT queries on one engine.
            if i % 2 == 0 {
                e.bounded_distance(&csr, s, t, bound);
            } else {
                e.bounded_distance_landmarked(&csr, &lm, s, t, bound);
            }
        }
        let stats = e.stats();
        assert_eq!(
            stats.reuse_hits, stats.queries,
            "a pre-sized engine must never allocate, bucket and ALT paths included"
        );
    }
}
