//! The metric closure `M_G` of a graph: the complete graph whose edge weights
//! are shortest-path distances.
//!
//! Section 4 of the paper works with the metric space `M_H` induced by the
//! greedy spanner `H`; Observation 6 shows `M_G` and `G` share an MST. The
//! closure produced here is the executable counterpart of that object.

use crate::apsp::all_pairs_shortest_paths;
use crate::error::GraphError;
use crate::graph::{VertexId, WeightedGraph};

/// Builds the metric closure of `graph`: a complete graph on the same vertex
/// set where the weight of `{u, v}` is `δ_G(u, v)`.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if some pair of vertices has no path
/// (the closure would need an infinite weight), or [`GraphError::EmptyGraph`]
/// if the graph has no vertices.
pub fn metric_closure(graph: &WeightedGraph) -> Result<WeightedGraph, GraphError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let m = all_pairs_shortest_paths(graph);
    let mut closure = WeightedGraph::new(n);
    for (u, v, d) in m.pairs() {
        if !d.is_finite() {
            return Err(GraphError::Disconnected);
        }
        closure.add_edge(u, v, d);
    }
    Ok(closure)
}

/// Builds a complete graph on `n` vertices from an explicit distance oracle.
///
/// The oracle is called once per unordered pair `(i, j)` with `i < j`; it must
/// return positive, finite distances.
///
/// # Errors
///
/// Returns [`GraphError::InvalidWeight`] if the oracle produces a non-positive
/// or non-finite value, or [`GraphError::EmptyGraph`] for `n == 0`.
pub fn complete_graph_from_distances(
    n: usize,
    mut distance: impl FnMut(usize, usize) -> f64,
) -> Result<WeightedGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut g = WeightedGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance(i, j);
            g.try_add_edge(VertexId(i), VertexId(j), d)?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::mst_weight;

    fn path3() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap()
    }

    #[test]
    fn closure_is_complete_with_shortest_path_weights() {
        let c = metric_closure(&path3()).unwrap();
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.edge_weight(VertexId(0), VertexId(2)), Some(3.0));
        assert_eq!(c.edge_weight(VertexId(0), VertexId(1)), Some(1.0));
    }

    #[test]
    fn closure_of_disconnected_graph_fails() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        assert_eq!(metric_closure(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn closure_of_empty_graph_fails() {
        assert_eq!(
            metric_closure(&WeightedGraph::new(0)),
            Err(GraphError::EmptyGraph)
        );
    }

    #[test]
    fn observation6_mst_weight_is_preserved_by_closure() {
        // Observation 6: the MST of the metric closure has the same weight as
        // the MST of the original graph.
        let g = WeightedGraph::from_edges(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.5),
                (3, 4, 1.0),
                (0, 4, 9.0),
            ],
        )
        .unwrap();
        let c = metric_closure(&g).unwrap();
        assert!((mst_weight(&g) - mst_weight(&c)).abs() < 1e-9);
    }

    #[test]
    fn complete_graph_from_oracle() {
        let g = complete_graph_from_distances(4, |i, j| (i + j) as f64).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(3)), Some(4.0));
    }

    #[test]
    fn oracle_with_invalid_distance_fails() {
        let r = complete_graph_from_distances(3, |_, _| -1.0);
        assert!(matches!(r, Err(GraphError::InvalidWeight { .. })));
        assert!(matches!(
            complete_graph_from_distances(0, |_, _| 1.0),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn singleton_closure_has_no_edges() {
        let g = WeightedGraph::new(1);
        let c = metric_closure(&g).unwrap();
        assert_eq!(c.num_edges(), 0);
    }
}
