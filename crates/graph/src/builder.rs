//! Incremental, validating construction of [`WeightedGraph`]s.

use crate::error::GraphError;
use crate::graph::{VertexId, WeightedGraph};

/// A builder that accumulates edges and validates them on
/// [`GraphBuilder::build`].
///
/// Unlike [`WeightedGraph::add_edge`], the builder accepts raw `usize`
/// endpoints for convenience in tests and generators, deduplicates parallel
/// edges (keeping the lightest copy) when [`GraphBuilder::dedup_parallel`] is
/// enabled, and reports the first invalid edge with a precise error.
///
/// # Example
///
/// ```
/// use spanner_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 2, 2.0);
/// let g = b.build()?;
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), spanner_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
    dedup_parallel: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            dedup_parallel: false,
        }
    }

    /// Queues an edge `{u, v}` with the given weight. Validation is deferred
    /// to [`GraphBuilder::build`].
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> &mut Self {
        self.edges.push((u, v, weight));
        self
    }

    /// Queues several edges at once.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (usize, usize, f64)>) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// When enabled, parallel edges between the same endpoints collapse into
    /// the single lightest copy at build time.
    pub fn dedup_parallel(&mut self, enabled: bool) -> &mut Self {
        self.dedup_parallel = enabled;
        self
    }

    /// Number of edges queued so far.
    pub fn queued_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates every queued edge and produces the graph.
    ///
    /// # Errors
    ///
    /// Returns the error for the first invalid edge (out-of-range endpoint,
    /// non-positive or non-finite weight, or self-loop).
    pub fn build(&self) -> Result<WeightedGraph, GraphError> {
        let mut edges = self.edges.clone();
        if self.dedup_parallel {
            use std::collections::HashMap;
            let mut best: HashMap<(usize, usize), f64> = HashMap::new();
            for &(u, v, w) in &edges {
                let key = if u <= v { (u, v) } else { (v, u) };
                best.entry(key)
                    .and_modify(|cur| {
                        if w < *cur {
                            *cur = w;
                        }
                    })
                    .or_insert(w);
            }
            edges = best.into_iter().map(|((u, v), w)| (u, v, w)).collect();
            edges.sort_by_key(|a| (a.0, a.1));
        }
        let mut g = WeightedGraph::new(self.num_vertices);
        for (u, v, w) in edges {
            g.try_add_edge(VertexId(u), VertexId(v), w)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(b.queued_edges(), 2);
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(b.build().unwrap().num_edges(), 3);
    }

    #[test]
    fn dedup_keeps_lightest_parallel_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 3.0)
            .add_edge(1, 0, 1.0)
            .add_edge(0, 1, 2.0);
        b.dedup_parallel(true);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0.into(), 1.into()), Some(1.0));
    }

    #[test]
    fn without_dedup_parallel_edges_survive() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 3.0).add_edge(1, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn build_reports_invalid_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 9, 1.0);
        assert!(matches!(
            b.build(),
            Err(GraphError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn build_reports_bad_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, f64::NAN);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })));
    }
}
