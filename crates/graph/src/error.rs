//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`crate::WeightedGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex index that is out of range.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge weight was not a positive, finite number.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop `(u, u)` was supplied; spanner graphs are simple.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// A query required a connected graph but the graph was disconnected.
    Disconnected,
    /// Two endpoints had no path between them.
    NoPath {
        /// Source vertex index.
        source: usize,
        /// Target vertex index.
        target: usize,
    },
    /// The graph was empty where at least one vertex was required.
    EmptyGraph,
    /// An edge id did not name a live edge (out of range, or deleted).
    UnknownEdge {
        /// The offending edge id.
        edge: usize,
    },
    /// No live edge connects the named pair of vertices.
    NoEdgeBetween {
        /// One endpoint index.
        u: usize,
        /// The other endpoint index.
        v: usize,
    },
    /// A query arrived with an epoch stamp older than the graph's current
    /// epoch — the caller's view of the graph is stale and answering it
    /// would silently return data from before a mutation.
    StaleEpoch {
        /// The epoch the caller's handle or snapshot was stamped with.
        stamped: u64,
        /// The graph's current epoch.
        current: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex index {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is not positive and finite")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::NoPath { source, target } => {
                write!(f, "no path between vertices {source} and {target}")
            }
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
            GraphError::UnknownEdge { edge } => {
                write!(f, "edge id {edge} does not name a live edge")
            }
            GraphError::NoEdgeBetween { u, v } => {
                write!(f, "no live edge between vertices {u} and {v}")
            }
            GraphError::StaleEpoch { stamped, current } => write!(
                f,
                "stale epoch: caller stamped {stamped} but the graph is at {current}"
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 3,
            },
            GraphError::InvalidWeight { weight: -1.0 },
            GraphError::SelfLoop { vertex: 2 },
            GraphError::Disconnected,
            GraphError::NoPath {
                source: 0,
                target: 5,
            },
            GraphError::EmptyGraph,
            GraphError::UnknownEdge { edge: 4 },
            GraphError::NoEdgeBetween { u: 1, v: 2 },
            GraphError::StaleEpoch {
                stamped: 1,
                current: 3,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase() || s.chars().next().unwrap().is_numeric()
            );
        }
    }

    #[test]
    fn errors_are_clonable_and_comparable() {
        let e = GraphError::Disconnected;
        assert_eq!(e.clone(), GraphError::Disconnected);
        assert_ne!(e, GraphError::EmptyGraph);
    }
}
