//! All-pairs shortest paths and the distance matrix used for exact stretch
//! verification.

use crate::csr::CsrGraph;
use crate::engine::DijkstraEngine;
use crate::graph::{VertexId, WeightedGraph};

/// A dense `n × n` matrix of shortest-path distances.
///
/// Unreachable pairs hold `f64::INFINITY`. Built by [`all_pairs_shortest_paths`]
/// via `n` Dijkstra runs (`O(n · m log n)`).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates a matrix of `n` vertices with all distances infinite except the
    /// zero diagonal.
    pub fn new(n: usize) -> Self {
        let mut data = vec![f64::INFINITY; n * n];
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        DistanceMatrix { n, data }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between `u` and `v` (infinite if unreachable).
    #[inline]
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        self.data[u.index() * self.n + v.index()]
    }

    /// Sets the distance between `u` and `v` (symmetrically).
    #[inline]
    pub fn set(&mut self, u: VertexId, v: VertexId, d: f64) {
        self.data[u.index() * self.n + v.index()] = d;
        self.data[v.index() * self.n + u.index()] = d;
    }

    /// Returns `true` if every off-diagonal entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|d| d.is_finite())
    }

    /// The largest finite distance in the matrix (0.0 for `n <= 1`).
    pub fn diameter(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Iterates over all unordered pairs `(u, v)` with `u < v` and their
    /// distances.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).map(move |j| (VertexId(i), VertexId(j), self.data[i * self.n + j]))
        })
    }
}

/// Computes all-pairs shortest paths by running Dijkstra from every vertex.
///
/// Internally runs on the CSR substrate with one reused
/// [`DijkstraEngine`] — the `n` searches share a single workspace, so the
/// whole matrix is built with a constant number of allocations.
pub fn all_pairs_shortest_paths(graph: &WeightedGraph) -> DistanceMatrix {
    let n = graph.num_vertices();
    let csr = CsrGraph::from(graph);
    let mut engine = DijkstraEngine::with_capacity_for(n, graph.num_edges());
    let mut m = DistanceMatrix::new(n);
    for s in 0..n {
        let tree = engine.shortest_path_tree(&csr, VertexId(s));
        tree.copy_distances_into(&mut m.data[s * n..(s + 1) * n]);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap()
    }

    #[test]
    fn distances_match_path_weights() {
        let m = all_pairs_shortest_paths(&path4());
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.distance(VertexId(0), VertexId(3)), 6.0);
        assert_eq!(m.distance(VertexId(3), VertexId(0)), 6.0);
        assert_eq!(m.distance(VertexId(1), VertexId(2)), 2.0);
        assert_eq!(m.distance(VertexId(2), VertexId(2)), 0.0);
    }

    #[test]
    fn diameter_is_longest_shortest_path() {
        let m = all_pairs_shortest_paths(&path4());
        assert_eq!(m.diameter(), 6.0);
    }

    #[test]
    fn infinite_for_disconnected_pairs() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let m = all_pairs_shortest_paths(&g);
        assert!(m.distance(VertexId(0), VertexId(2)).is_infinite());
        assert!(!m.all_finite());
    }

    #[test]
    fn all_finite_for_connected_graph() {
        let m = all_pairs_shortest_paths(&path4());
        assert!(m.all_finite());
    }

    #[test]
    fn pairs_enumerates_each_unordered_pair_once() {
        let m = all_pairs_shortest_paths(&path4());
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn manual_set_and_get() {
        let mut m = DistanceMatrix::new(3);
        m.set(VertexId(0), VertexId(2), 4.5);
        assert_eq!(m.distance(VertexId(2), VertexId(0)), 4.5);
        assert_eq!(m.distance(VertexId(0), VertexId(1)), f64::INFINITY);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.diameter(), 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = WeightedGraph::from_edges(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.5),
                (3, 4, 1.0),
                (0, 4, 9.0),
                (1, 3, 2.2),
            ],
        )
        .unwrap();
        let m = all_pairs_shortest_paths(&g);
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    let (i, j, k) = (VertexId(i), VertexId(j), VertexId(k));
                    assert!(m.distance(i, j) <= m.distance(i, k) + m.distance(k, j) + 1e-9);
                }
            }
        }
    }
}
