//! Compressed-sparse-row view of a weighted graph.
//!
//! [`WeightedGraph`] stores adjacency as one `Vec` per vertex — ideal for
//! construction and mutation, but every Dijkstra relaxation chases a pointer
//! per vertex and a second one into the edge list. [`CsrGraph`] is the
//! cache-friendly counterpart: all half-edges live in three flat arrays
//! (`offsets` / `targets` / `weights`, plus the originating edge index), so a
//! neighbor scan is a contiguous read.
//!
//! Unlike a classical CSR, this one is *appendable*: spanner constructions
//! grow their output one edge at a time while querying it, so
//! [`CsrGraph::append_edge`] adds the new half-edges to a small per-vertex
//! overflow chain and amortizes re-packing — once the overflow reaches a
//! constant fraction of the packed region the whole structure is re-packed in
//! `O(n + m)`, which keeps the total maintenance cost of a growing spanner at
//! `O((n + m) log m)` while neighbor scans stay almost entirely packed.
//!
//! The companion query type is [`crate::engine::DijkstraEngine`], which owns
//! the per-query workspace so repeated shortest-path queries against a
//! `CsrGraph` perform no per-query heap allocation.

use crate::error::GraphError;
use crate::graph::{EdgeId, VertexId, WeightedGraph};

/// Sentinel for "no entry" in the overflow chains.
const NONE: u32 = u32::MAX;

/// A neighbor record produced by [`CsrGraph::neighbors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrNeighbor {
    /// The neighboring vertex.
    pub to: VertexId,
    /// Weight of the connecting edge.
    pub weight: f64,
    /// Index of the connecting edge (dense, in append order).
    pub edge: EdgeId,
}

/// An undirected weighted graph in compressed-sparse-row form, incrementally
/// appendable.
///
/// Vertex ids are dense `0..n` and must fit in `u32`; every undirected edge
/// is stored as two half-edges. Build one with [`CsrGraph::from`] a
/// [`WeightedGraph`] (fully packed) or grow one from empty with
/// [`CsrGraph::append_edge`] (the greedy-spanner pattern: the spanner under
/// construction is queried after every append).
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    num_vertices: usize,
    /// Ground truth: `(u, v, weight)` per edge, in append order. Used for
    /// re-packing and for materializing a [`WeightedGraph`].
    edge_list: Vec<(u32, u32, f64)>,
    /// Number of edges covered by the packed arrays (prefix of `edge_list`).
    packed_edges: usize,
    /// Packed CSR: half-edges of `edge_list[..packed_edges]`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    edge_ids: Vec<u32>,
    /// Overflow: half-edges appended since the last re-pack, chained per
    /// source vertex (most recent first).
    extra_head: Vec<u32>,
    extra_next: Vec<u32>,
    extra_target: Vec<u32>,
    extra_weight: Vec<f64>,
    extra_edge: Vec<u32>,
}

impl CsrGraph {
    /// Creates an edgeless CSR graph on `num_vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` does not fit in `u32`.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices < u32::MAX as usize,
            "CsrGraph vertex count must fit in u32"
        );
        CsrGraph {
            num_vertices,
            edge_list: Vec::new(),
            packed_edges: 0,
            offsets: vec![0; num_vertices + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            edge_ids: Vec::new(),
            extra_head: vec![NONE; num_vertices],
            extra_next: Vec::new(),
            extra_target: Vec::new(),
            extra_weight: Vec::new(),
            extra_edge: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_list.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.edge_list.is_empty()
    }

    /// Endpoints and weight of the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> (VertexId, VertexId, f64) {
        let (u, v, w) = self.edge_list[id.index()];
        (VertexId(u as usize), VertexId(v as usize), w)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edge_list.iter().map(|&(_, _, w)| w).sum()
    }

    /// Returns `true` if every half-edge lives in the packed arrays (no
    /// overflow chains).
    pub fn is_compact(&self) -> bool {
        self.packed_edges == self.edge_list.len()
    }

    /// Appends an undirected edge and returns its id.
    ///
    /// The new half-edges land in the overflow chains; once the overflow
    /// grows past a constant fraction of the packed region the graph re-packs
    /// itself, so a growing spanner stays cache-friendly without the caller
    /// ever re-building.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the edge is a self-loop, or the
    /// weight is not positive and finite — the same contract as
    /// [`WeightedGraph::add_edge`]. Use [`CsrGraph::try_append_edge`] for a
    /// fallible variant (the path long-running processes should take, so a
    /// poisoned weight surfaces as an error instead of aborting).
    pub fn append_edge(&mut self, u: VertexId, v: VertexId, weight: f64) -> EdgeId {
        self.try_append_edge(u, v, weight)
            .expect("invalid edge passed to append_edge")
    }

    /// Appends an undirected edge, validating the input — the same contract
    /// as [`WeightedGraph::try_add_edge`]. In particular, non-finite weights
    /// (`NaN` / `±inf`) are rejected with [`GraphError::InvalidWeight`]
    /// *before* they can enter the structure: a single `NaN` weight breaks
    /// the greedy construction's sort order and every Dijkstra invariant
    /// downstream, so it must never be representable.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`], [`GraphError::SelfLoop`] or
    /// [`GraphError::InvalidWeight`] on invalid input; the graph is
    /// unchanged in that case.
    pub fn try_append_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        let (ui, vi) = (u.index(), v.index());
        for endpoint in [ui, vi] {
            if endpoint >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: endpoint,
                    num_vertices: self.num_vertices,
                });
            }
        }
        if ui == vi {
            return Err(GraphError::SelfLoop { vertex: ui });
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = self.edge_list.len();
        assert!(
            2 * id + 2 <= u32::MAX as usize,
            "too many edges for u32 ids"
        );
        self.edge_list.push((ui as u32, vi as u32, weight));
        for (a, b) in [(ui, vi), (vi, ui)] {
            let slot = self.extra_target.len() as u32;
            self.extra_target.push(b as u32);
            self.extra_weight.push(weight);
            self.extra_edge.push(id as u32);
            self.extra_next.push(self.extra_head[a]);
            self.extra_head[a] = slot;
        }
        // Amortized re-pack: overflow bounded by a small fraction of the
        // packed region (plus a constant), so re-packs are geometrically
        // spaced while neighbor scans stay almost entirely packed. The
        // fraction is deliberately aggressive — a re-pack is `O(n + m)` while
        // the queries between re-packs are `O(m)` heap operations each, so
        // re-packing is never the bottleneck but chain-walking can be.
        if self.extra_target.len() >= self.targets.len() / 8 + 32 {
            self.compact();
        }
        Ok(EdgeId(id))
    }

    /// Re-packs every half-edge into the flat CSR arrays (`O(n + m)`),
    /// emptying the overflow chains. Called automatically by
    /// [`CsrGraph::append_edge`]; exposed for callers that want a fully
    /// packed view before a query burst.
    pub fn compact(&mut self) {
        if self.is_compact() {
            return;
        }
        let n = self.num_vertices;
        let m = self.edge_list.len();
        let half = 2 * m;
        // Counting sort of half-edges by source vertex.
        let mut counts = std::mem::take(&mut self.offsets);
        counts.clear();
        counts.resize(n + 1, 0);
        for &(u, v, _) in &self.edge_list {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut targets = vec![0u32; half];
        let mut weights = vec![0.0f64; half];
        let mut edge_ids = vec![0u32; half];
        for (id, &(u, v, w)) in self.edge_list.iter().enumerate() {
            for (a, b) in [(u, v), (v, u)] {
                let slot = cursor[a as usize] as usize;
                cursor[a as usize] += 1;
                targets[slot] = b;
                weights[slot] = w;
                edge_ids[slot] = id as u32;
            }
        }
        self.offsets = counts;
        self.targets = targets;
        self.weights = weights;
        self.edge_ids = edge_ids;
        self.packed_edges = m;
        self.extra_head.clear();
        self.extra_head.resize(n, NONE);
        self.extra_next.clear();
        self.extra_target.clear();
        self.extra_weight.clear();
        self.extra_edge.clear();
    }

    /// Iterates over the neighbors of `u` as [`CsrNeighbor`] records: first
    /// the packed half-edges (contiguous), then any overflow appends.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> Neighbors<'_> {
        let ui = u.index();
        assert!(ui < self.num_vertices, "vertex out of range");
        Neighbors {
            graph: self,
            pos: self.offsets[ui] as usize,
            end: self.offsets[ui + 1] as usize,
            chain: self.extra_head[ui],
        }
    }

    /// Degree of `u` (number of incident half-edges).
    pub fn degree(&self, u: VertexId) -> usize {
        self.neighbors(u).count()
    }

    /// The packed portion of `u`'s neighbors as parallel `(targets, weights)`
    /// slices — the zero-overhead view the Dijkstra engine's inner loop
    /// iterates. Half-edges appended since the last re-pack are *not*
    /// included; follow up with [`CsrGraph::overflow_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn packed_neighbors(&self, u: VertexId) -> (&[u32], &[f64]) {
        let ui = u.index();
        let (a, b) = (self.offsets[ui] as usize, self.offsets[ui + 1] as usize);
        (&self.targets[a..b], &self.weights[a..b])
    }

    /// The overflow portion of `u`'s neighbors (half-edges appended since the
    /// last re-pack) as `(target, weight)` pairs. Usually empty or very
    /// short — see [`CsrGraph::append_edge`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn overflow_neighbors(&self, u: VertexId) -> OverflowNeighbors<'_> {
        OverflowNeighbors {
            graph: self,
            chain: self.extra_head[u.index()],
        }
    }

    /// A read-only snapshot view of this graph, frozen for a parallel query
    /// phase (see [`crate::parallel::EnginePool::map_batch`]).
    ///
    /// The snapshot is just a shared borrow — `CsrGraph` has no interior
    /// mutability, so the view is `Sync` and workers on other threads can
    /// query it concurrently. The borrow also *prevents* appends for the
    /// snapshot's lifetime, which is exactly the freeze the deterministic
    /// filter-then-commit loop relies on.
    pub fn snapshot(&self) -> CsrSnapshot<'_> {
        CsrSnapshot { graph: self }
    }

    /// Materializes this CSR graph as a [`WeightedGraph`] with the same edge
    /// ids (append order is preserved).
    pub fn to_weighted_graph(&self) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.num_vertices);
        for &(u, v, w) in &self.edge_list {
            g.add_edge(VertexId(u as usize), VertexId(v as usize), w);
        }
        g
    }
}

impl From<&WeightedGraph> for CsrGraph {
    /// Builds a fully packed CSR view of `graph`. Edge ids coincide with the
    /// source graph's [`EdgeId`]s.
    fn from(graph: &WeightedGraph) -> Self {
        let mut csr = CsrGraph::new(graph.num_vertices());
        csr.edge_list.reserve(graph.num_edges());
        for e in graph.edges() {
            csr.edge_list
                .push((e.u.index() as u32, e.v.index() as u32, e.weight));
        }
        assert!(
            2 * csr.edge_list.len() <= u32::MAX as usize,
            "too many edges for u32 ids"
        );
        csr.compact();
        csr
    }
}

/// A read-only, `Sync` view of a [`CsrGraph`] frozen for a parallel query
/// phase; produced by [`CsrGraph::snapshot`].
///
/// Dereferences to the underlying graph, so every query API works on it
/// unchanged. Holding a snapshot borrows the graph shared, which statically
/// rules out concurrent [`CsrGraph::append_edge`] calls — the compiler
/// enforces the filter-phase freeze.
#[derive(Debug, Clone, Copy)]
pub struct CsrSnapshot<'a> {
    graph: &'a CsrGraph,
}

impl<'a> CsrSnapshot<'a> {
    /// The frozen graph.
    pub fn graph(&self) -> &'a CsrGraph {
        self.graph
    }
}

impl std::ops::Deref for CsrSnapshot<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        self.graph
    }
}

// The whole point of the snapshot: it can be shared across worker threads.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<CsrSnapshot<'static>>();
};

/// Iterator over the overflow half-edges of one vertex; see
/// [`CsrGraph::overflow_neighbors`].
#[derive(Debug, Clone)]
pub struct OverflowNeighbors<'a> {
    graph: &'a CsrGraph,
    chain: u32,
}

impl Iterator for OverflowNeighbors<'_> {
    type Item = (u32, f64);

    #[inline]
    fn next(&mut self) -> Option<(u32, f64)> {
        if self.chain == NONE {
            return None;
        }
        let i = self.chain as usize;
        self.chain = self.graph.extra_next[i];
        Some((self.graph.extra_target[i], self.graph.extra_weight[i]))
    }
}

/// Iterator over the neighbors of one vertex; see [`CsrGraph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    graph: &'a CsrGraph,
    pos: usize,
    end: usize,
    chain: u32,
}

impl Iterator for Neighbors<'_> {
    type Item = CsrNeighbor;

    #[inline]
    fn next(&mut self) -> Option<CsrNeighbor> {
        if self.pos < self.end {
            let i = self.pos;
            self.pos += 1;
            return Some(CsrNeighbor {
                to: VertexId(self.graph.targets[i] as usize),
                weight: self.graph.weights[i],
                edge: EdgeId(self.graph.edge_ids[i] as usize),
            });
        }
        if self.chain != NONE {
            let i = self.chain as usize;
            self.chain = self.graph.extra_next[i];
            return Some(CsrNeighbor {
                to: VertexId(self.graph.extra_target[i] as usize),
                weight: self.graph.extra_weight[i],
                edge: EdgeId(self.graph.extra_edge[i] as usize),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    /// Neighbor sets (target, weight, edge id) of `u`, sorted for comparison.
    fn sorted_neighbors(csr: &CsrGraph, u: usize) -> Vec<(usize, u64, usize)> {
        let mut v: Vec<_> = csr
            .neighbors(VertexId(u))
            .map(|nb| (nb.to.index(), nb.weight.to_bits(), nb.edge.index()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn from_weighted_graph_matches_adjacency() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        assert!(csr.is_compact());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        for u in 0..4 {
            let mut expected: Vec<_> = g
                .neighbors(VertexId(u))
                .iter()
                .map(|&(v, e)| (v.index(), g.edge(e).weight.to_bits(), e.index()))
                .collect();
            expected.sort_unstable();
            assert_eq!(sorted_neighbors(&csr, u), expected, "vertex {u}");
        }
        assert!((csr.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn append_edge_then_compact_round_trips() {
        let g = diamond();
        let mut csr = CsrGraph::new(4);
        for (i, e) in g.edges().iter().enumerate() {
            let id = csr.append_edge(e.u, e.v, e.weight);
            assert_eq!(id.index(), i);
        }
        // Overflow path must already answer correctly…
        let before: Vec<_> = (0..4).map(|u| sorted_neighbors(&csr, u)).collect();
        csr.compact();
        assert!(csr.is_compact());
        // …and compaction must not change anything.
        for (u, b) in before.iter().enumerate() {
            assert_eq!(&sorted_neighbors(&csr, u), b);
        }
        let back = csr.to_weighted_graph();
        assert_eq!(back, g);
    }

    #[test]
    fn auto_compaction_keeps_many_appends_correct() {
        // Enough appends to cross the overflow threshold repeatedly.
        let n = 50usize;
        let mut csr = CsrGraph::new(n);
        let mut reference = WeightedGraph::new(n);
        let mut k = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + 2 * v) % 3 == 0 {
                    let w = 1.0 + (k % 7) as f64;
                    csr.append_edge(VertexId(u), VertexId(v), w);
                    reference.add_edge(VertexId(u), VertexId(v), w);
                    k += 1;
                }
            }
        }
        assert_eq!(csr.num_edges(), reference.num_edges());
        for u in 0..n {
            let mut expected: Vec<_> = reference
                .neighbors(VertexId(u))
                .iter()
                .map(|&(v, e)| (v.index(), reference.edge(e).weight.to_bits(), e.index()))
                .collect();
            expected.sort_unstable();
            assert_eq!(sorted_neighbors(&csr, u), expected, "vertex {u}");
        }
    }

    #[test]
    fn edge_accessor_returns_append_order() {
        let mut csr = CsrGraph::new(3);
        csr.append_edge(VertexId(2), VertexId(0), 1.5);
        csr.append_edge(VertexId(0), VertexId(1), 2.5);
        assert_eq!(csr.edge(EdgeId(0)), (VertexId(2), VertexId(0), 1.5));
        assert_eq!(csr.edge(EdgeId(1)), (VertexId(0), VertexId(1), 2.5));
        assert_eq!(csr.degree(VertexId(0)), 2);
        assert_eq!(csr.degree(VertexId(1)), 1);
        assert!(!csr.is_edgeless());
        assert!(CsrGraph::new(2).is_edgeless());
    }

    #[test]
    #[should_panic(expected = "SelfLoop")]
    fn append_rejects_self_loop() {
        CsrGraph::new(2).append_edge(VertexId(1), VertexId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "VertexOutOfRange")]
    fn append_rejects_bad_endpoint() {
        CsrGraph::new(2).append_edge(VertexId(0), VertexId(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn append_rejects_bad_weight() {
        CsrGraph::new(2).append_edge(VertexId(0), VertexId(1), f64::NAN);
    }

    #[test]
    fn try_append_rejects_invalid_edges_without_mutating() {
        let mut csr = CsrGraph::new(3);
        csr.append_edge(VertexId(0), VertexId(1), 1.0);
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            assert!(
                matches!(
                    csr.try_append_edge(VertexId(0), VertexId(2), w),
                    Err(GraphError::InvalidWeight { .. })
                ),
                "weight {w}"
            );
        }
        assert!(matches!(
            csr.try_append_edge(VertexId(0), VertexId(9), 1.0),
            Err(GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 3
            })
        ));
        assert!(matches!(
            csr.try_append_edge(VertexId(2), VertexId(2), 1.0),
            Err(GraphError::SelfLoop { vertex: 2 })
        ));
        // Nothing was appended by any of the rejected calls.
        assert_eq!(csr.num_edges(), 1);
        assert_eq!(csr.degree(VertexId(2)), 0);
        let ok = csr.try_append_edge(VertexId(1), VertexId(2), 2.0).unwrap();
        assert_eq!(ok, EdgeId(1));
    }
}
