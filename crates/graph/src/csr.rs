//! Compressed-sparse-row view of a weighted graph.
//!
//! [`WeightedGraph`] stores adjacency as one `Vec` per vertex — ideal for
//! construction and mutation, but every Dijkstra relaxation chases a pointer
//! per vertex and a second one into the edge list. [`CsrGraph`] is the
//! cache-friendly counterpart: all half-edges live in three flat arrays
//! (`offsets` / `targets` / `weights`, plus the originating edge index), so a
//! neighbor scan is a contiguous read.
//!
//! Unlike a classical CSR, this one is *mutable*: spanner constructions grow
//! their output one edge at a time while querying it, and the live-update
//! subsystem additionally deletes edges from a long-running spanner. Both
//! kinds of mutation go through a [`DeltaOverlay`] layered over the packed
//! arrays:
//!
//! * **Insertions** ([`CsrGraph::append_edge`]) land in small per-vertex
//!   overflow chains;
//! * **Deletions** ([`CsrGraph::remove_edge`]) set a bit in a tombstone
//!   bitmap — the half-edges stay physically present until the next re-pack
//!   but every scan skips them;
//! * once either delta grows past a constant fraction of the packed region
//!   (see [`REPACK_OVERFLOW_DIVISOR`] / [`REPACK_OVERFLOW_SLACK`]) the whole
//!   structure is re-packed in `O(n + m)`, consolidating the overlay: chains
//!   fold into the packed arrays and tombstoned half-edges are dropped.
//!
//! This keeps the total maintenance cost of a growing spanner at
//! `O((n + m) log m)` while neighbor scans stay almost entirely packed.
//!
//! # Epochs
//!
//! Every *logical* mutation — an append or a removal, never a re-pack —
//! bumps a monotonically increasing [`CsrGraph::epoch`] counter. Long-lived
//! readers (shortest-path-tree caches, serving handles) stamp the epoch they
//! were built at and detect staleness by comparing stamps:
//! [`CsrGraph::verify_epoch`] returns [`GraphError::StaleEpoch`] on
//! mismatch, and [`CsrSnapshot`] carries the epoch it froze at so batch
//! executors can refuse stale views with a typed error instead of silently
//! answering against old data.
//!
//! The companion query type is [`crate::engine::DijkstraEngine`], which owns
//! the per-query workspace so repeated shortest-path queries against a
//! `CsrGraph` perform no per-query heap allocation.

use crate::error::GraphError;
use crate::graph::{EdgeId, VertexId, WeightedGraph};

/// Sentinel for "no entry" in the overflow chains.
const NONE: u32 = u32::MAX;

/// Denominator of the re-pack trigger: the overlay may hold up to
/// `packed_half_edges / REPACK_OVERFLOW_DIVISOR + REPACK_OVERFLOW_SLACK`
/// pending half-edges (insertions, or deletions still lingering in the
/// packed arrays) before [`CsrGraph::compact`] runs automatically.
///
/// The fraction is deliberately aggressive — a re-pack is `O(n + m)` while
/// the queries between re-packs are `O(m)` heap operations each, so
/// re-packing is never the bottleneck but chain-walking (and
/// tombstone-skipping) can be. Keeping the overlay below ~1/8 of the packed
/// region makes re-packs geometrically spaced while neighbor scans stay
/// almost entirely packed.
pub const REPACK_OVERFLOW_DIVISOR: usize = 8;

/// Additive slack of the re-pack trigger (see [`REPACK_OVERFLOW_DIVISOR`]):
/// small graphs get a constant grace budget so the first few appends do not
/// each trigger an `O(n)` re-pack.
pub const REPACK_OVERFLOW_SLACK: usize = 32;

/// A neighbor record produced by [`CsrGraph::neighbors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrNeighbor {
    /// The neighboring vertex.
    pub to: VertexId,
    /// Weight of the connecting edge.
    pub weight: f64,
    /// Index of the connecting edge (dense, in append order).
    pub edge: EdgeId,
}

/// The pending mutations layered over the packed CSR arrays: overflow chains
/// of appended half-edges plus a tombstone bitmap of deleted edges.
///
/// Readers never consult the overlay directly — [`CsrGraph::neighbors`] and
/// the Dijkstra engine fold it in transparently — but its occupancy is
/// observable ([`DeltaOverlay::pending_insertions`] /
/// [`DeltaOverlay::pending_deletions`]) so long-running processes can reason
/// about when the next consolidation ([`CsrGraph::compact`]) will happen.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    /// Per-source chain head into the slot arrays (most recent first).
    head: Vec<u32>,
    next: Vec<u32>,
    target: Vec<u32>,
    weight: Vec<f64>,
    edge: Vec<u32>,
    /// Tombstone bitmap over edge ids; a set bit marks a deleted edge. The
    /// bitmap is never cleared — a deleted id stays dead forever — but the
    /// *pending* counter below resets when a re-pack drops the dead
    /// half-edges from the packed arrays.
    tombstone: Vec<u64>,
    /// Dead edges whose half-edges still linger in the packed arrays or in
    /// the insertion chains; consolidated (reset to 0) by re-packing.
    pending_deletions: usize,
    /// Total edges ever deleted (the difference between allocated ids and
    /// live edges).
    dead_edges: usize,
}

impl DeltaOverlay {
    fn new(num_vertices: usize) -> Self {
        DeltaOverlay {
            head: vec![NONE; num_vertices],
            ..DeltaOverlay::default()
        }
    }

    #[inline]
    fn is_dead(&self, id: usize) -> bool {
        self.tombstone
            .get(id >> 6)
            .is_some_and(|word| (word >> (id & 63)) & 1 == 1)
    }

    fn mark_dead(&mut self, id: usize) {
        let word = id >> 6;
        if word >= self.tombstone.len() {
            self.tombstone.resize(word + 1, 0);
        }
        self.tombstone[word] |= 1 << (id & 63);
        self.pending_deletions += 1;
        self.dead_edges += 1;
    }

    /// Half-edges appended since the last re-pack, as whole edges.
    pub fn pending_insertions(&self) -> usize {
        self.target.len() / 2
    }

    /// Deleted edges whose half-edges still linger in the packed arrays or
    /// the insertion chains (reset by the next re-pack).
    pub fn pending_deletions(&self) -> usize {
        self.pending_deletions
    }
}

/// An undirected weighted graph in compressed-sparse-row form, incrementally
/// appendable and deletable.
///
/// Vertex ids are dense `0..n` and must fit in `u32`; every undirected edge
/// is stored as two half-edges. Build one with [`CsrGraph::from`] a
/// [`WeightedGraph`] (fully packed) or grow one from empty with
/// [`CsrGraph::append_edge`] (the greedy-spanner pattern: the spanner under
/// construction is queried after every append). Long-running processes
/// additionally delete edges with [`CsrGraph::remove_edge`]; see the
/// [module docs](crate::csr) for the overlay/epoch model.
///
/// **Id-stability trade-off:** deleted edges keep their `edge_list` slot and
/// tombstone bit forever so ids never shift, which means the *ground-truth*
/// arrays (not the packed scan arrays — those drop dead half-edges at every
/// re-pack) grow with the total number of edges ever appended, not with the
/// live count. Under unbounded insert/delete churn, periodically start a
/// fresh **generation** with [`CsrGraph::rebuild_compacted`] — a dense
/// rebuild from [`CsrGraph::live_edges`] that re-densifies ids (returning
/// the old-id → new-id remap) and reclaims the dead slots behind a bumped
/// epoch. The dead-slot pressure is observable in `O(1)` via
/// [`CsrGraph::dead_edges`] / [`CsrGraph::tombstoned_fraction`], so
/// long-running owners can trigger the rebuild on a threshold instead of a
/// scan.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    num_vertices: usize,
    /// Ground truth: `(u, v, weight)` per edge, in append order — including
    /// deleted edges, so ids stay stable. Used for re-packing and for
    /// materializing a [`WeightedGraph`].
    edge_list: Vec<(u32, u32, f64)>,
    /// Number of edges covered by the packed arrays (prefix of `edge_list`;
    /// deleted edges of the prefix are *omitted* from the arrays once a
    /// re-pack has consolidated them).
    packed_edges: usize,
    /// Packed CSR: live half-edges of `edge_list[..packed_edges]` (plus any
    /// half-edges deleted since the last re-pack, skipped via the overlay's
    /// tombstone bitmap).
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    edge_ids: Vec<u32>,
    /// Pending insertions and deletions since the last re-pack.
    overlay: DeltaOverlay,
    /// Monotonically increasing mutation counter; see [`CsrGraph::epoch`].
    epoch: u64,
    /// Running sum of live edge weights — maintained incrementally by
    /// appends/removals, recomputed exactly at every re-pack. Backs the
    /// `O(1)` [`CsrGraph::mean_live_weight`].
    live_weight_sum: f64,
    /// Running lower bound on the minimum live edge weight
    /// (`f64::INFINITY` when edgeless); exact after every re-pack. Backs
    /// the `O(1)` [`CsrGraph::min_live_weight`].
    min_live_weight: f64,
}

impl CsrGraph {
    /// Creates an edgeless CSR graph on `num_vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` does not fit in `u32`.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices < u32::MAX as usize,
            "CsrGraph vertex count must fit in u32"
        );
        CsrGraph {
            num_vertices,
            edge_list: Vec::new(),
            packed_edges: 0,
            offsets: vec![0; num_vertices + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            edge_ids: Vec::new(),
            overlay: DeltaOverlay::new(num_vertices),
            epoch: 0,
            live_weight_sum: 0.0,
            min_live_weight: f64::INFINITY,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of live (undirected) edges — deleted edges are not counted.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_list.len() - self.overlay.dead_edges
    }

    /// Upper bound (exclusive) on edge ids ever allocated, including deleted
    /// ones. `EdgeId(i)` with `i < edge_id_bound()` names a stored record;
    /// check [`CsrGraph::is_edge_live`] before treating it as present.
    #[inline]
    pub fn edge_id_bound(&self) -> usize {
        self.edge_list.len()
    }

    /// Returns `true` if the graph has no live edges.
    pub fn is_edgeless(&self) -> bool {
        self.num_edges() == 0
    }

    /// Number of dead (tombstoned) edge slots in the ground-truth arrays —
    /// the difference between [`CsrGraph::edge_id_bound`] and
    /// [`CsrGraph::num_edges`]. `O(1)`: the counter is maintained by
    /// [`CsrGraph::remove_edge`], never recomputed by scanning.
    #[inline]
    pub fn dead_edges(&self) -> usize {
        self.overlay.dead_edges
    }

    /// Fraction of allocated edge slots that are tombstoned
    /// (`dead_edges / edge_id_bound`; `0.0` for an edgeless graph). `O(1)`,
    /// from the same maintained counters as [`CsrGraph::dead_edges`] — the
    /// threshold long-running owners watch to decide when a
    /// [`CsrGraph::rebuild_compacted`] generation swap pays off.
    #[inline]
    pub fn tombstoned_fraction(&self) -> f64 {
        if self.edge_list.is_empty() {
            0.0
        } else {
            self.overlay.dead_edges as f64 / self.edge_list.len() as f64
        }
    }

    /// The graph's epoch: a monotonically increasing counter bumped by every
    /// logical mutation ([`CsrGraph::append_edge`] /
    /// [`CsrGraph::remove_edge`]; re-packing is a representation change and
    /// does **not** bump it). Long-lived readers stamp the epoch they were
    /// built at and compare with [`CsrGraph::verify_epoch`].
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Checks a caller's epoch stamp against the current epoch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::StaleEpoch`] if the stamps differ — the
    /// caller's view predates (or, for a corrupted stamp, postdates) some
    /// mutation and must be refreshed before querying.
    pub fn verify_epoch(&self, stamped: u64) -> Result<(), GraphError> {
        if stamped == self.epoch {
            Ok(())
        } else {
            Err(GraphError::StaleEpoch {
                stamped,
                current: self.epoch,
            })
        }
    }

    /// The pending-mutation overlay (observability only; scans fold it in
    /// transparently).
    pub fn overlay(&self) -> &DeltaOverlay {
        &self.overlay
    }

    /// Returns `true` if deleted half-edges still linger in the packed
    /// arrays or chains (i.e. scans must consult the tombstone bitmap).
    #[inline]
    pub fn has_pending_deletions(&self) -> bool {
        self.overlay.pending_deletions > 0
    }

    /// Returns `true` if the id names a live (never-deleted, in-range) edge.
    #[inline]
    pub fn is_edge_live(&self, id: EdgeId) -> bool {
        id.index() < self.edge_list.len() && !self.overlay.is_dead(id.index())
    }

    /// Raw liveness check by packed edge-id word — the Dijkstra engine's
    /// inner-loop form of [`CsrGraph::is_edge_live`].
    #[inline]
    pub fn is_edge_id_live(&self, id: u32) -> bool {
        !self.overlay.is_dead(id as usize)
    }

    /// The tombstone bitmap as raw 64-bit words, one bit per edge id (a set
    /// bit marks a deleted edge; ids past the end of the slice are live).
    /// This is the batch counterpart of [`CsrGraph::is_edge_id_live`]: the
    /// engine's gather kernel fetches the slice once per row and tests bits
    /// locally instead of re-borrowing the graph per edge.
    #[inline]
    pub fn edge_liveness_words(&self) -> &[u64] {
        &self.overlay.tombstone
    }

    /// Endpoints and weight of the edge with the given id. The record is
    /// returned even for deleted ids (the ground-truth slot is kept so ids
    /// stay stable); check [`CsrGraph::is_edge_live`] for liveness.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> (VertexId, VertexId, f64) {
        let (u, v, w) = self.edge_list[id.index()];
        (VertexId(u as usize), VertexId(v as usize), w)
    }

    /// Iterates over the live edges as `(id, u, v, weight)` in append order.
    ///
    /// **Cost:** a full ground-truth scan — `O(edge_id_bound())`, which
    /// includes every dead slot ever tombstoned, not `O(num_edges())`. Keep
    /// it out of per-mutation hot paths; batch owners needing only the
    /// *counts* should read the `O(1)` [`CsrGraph::num_edges`] /
    /// [`CsrGraph::dead_edges`] counters instead, and owners facing
    /// unbounded churn should bound the scan itself via
    /// [`CsrGraph::rebuild_compacted`].
    pub fn live_edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId, f64)> + '_ {
        self.edge_list
            .iter()
            .enumerate()
            .filter(|&(id, _)| !self.overlay.is_dead(id))
            .map(|(id, &(u, v, w))| (EdgeId(id), VertexId(u as usize), VertexId(v as usize), w))
    }

    /// Total weight of all live edges.
    ///
    /// **Cost:** a [`CsrGraph::live_edges`] scan — `O(edge_id_bound())`
    /// including dead slots. Analysis-time only; nothing on the update hot
    /// path calls it.
    pub fn total_weight(&self) -> f64 {
        self.live_edges().map(|(_, _, _, w)| w).sum()
    }

    /// Smallest live edge weight, or `None` for an edgeless graph. `O(1)`
    /// from a maintained counter.
    ///
    /// Between re-packs the value is a **lower bound**: deleting the
    /// current minimum does not trigger a rescan, so a stale smaller weight
    /// may be reported until the next [`CsrGraph::compact`] makes it exact
    /// again. The consumer (the engine's bucket-width rule, see
    /// [`crate::bucket_queue`]) only needs a lower bound — a too-small
    /// width means more buckets, never a wrong answer.
    pub fn min_live_weight(&self) -> Option<f64> {
        (!self.is_edgeless()).then_some(self.min_live_weight)
    }

    /// Mean live edge weight, or `None` for an edgeless graph. `O(1)`: the
    /// weight sum is maintained incrementally by appends/removals
    /// (float-accumulated, so it can drift slightly between re-packs) and
    /// recomputed exactly at every re-pack.
    pub fn mean_live_weight(&self) -> Option<f64> {
        (!self.is_edgeless()).then(|| self.live_weight_sum / self.num_edges() as f64)
    }

    /// Returns `true` if the overlay is empty: every live half-edge lives in
    /// the packed arrays (no overflow chains, no lingering tombstoned
    /// half-edges).
    pub fn is_compact(&self) -> bool {
        self.packed_edges == self.edge_list.len() && self.overlay.pending_deletions == 0
    }

    /// Appends an undirected edge and returns its id.
    ///
    /// The new half-edges land in the overlay's overflow chains; once the
    /// overlay grows past a constant fraction of the packed region (see
    /// [`REPACK_OVERFLOW_DIVISOR`]) the graph re-packs itself, so a growing
    /// spanner stays cache-friendly without the caller ever re-building.
    /// Bumps the epoch.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the edge is a self-loop, or the
    /// weight is not positive and finite — the same contract as
    /// [`WeightedGraph::add_edge`]. Use [`CsrGraph::try_append_edge`] for a
    /// fallible variant (the path long-running processes should take, so a
    /// poisoned weight surfaces as an error instead of aborting).
    pub fn append_edge(&mut self, u: VertexId, v: VertexId, weight: f64) -> EdgeId {
        self.try_append_edge(u, v, weight)
            .expect("invalid edge passed to append_edge")
    }

    /// Appends an undirected edge, validating the input — the same contract
    /// as [`WeightedGraph::try_add_edge`]. In particular, non-finite weights
    /// (`NaN` / `±inf`) are rejected with [`GraphError::InvalidWeight`]
    /// *before* they can enter the structure: a single `NaN` weight breaks
    /// the greedy construction's sort order and every Dijkstra invariant
    /// downstream, so it must never be representable. Bumps the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`], [`GraphError::SelfLoop`] or
    /// [`GraphError::InvalidWeight`] on invalid input; the graph is
    /// unchanged in that case.
    pub fn try_append_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        let (ui, vi) = (u.index(), v.index());
        for endpoint in [ui, vi] {
            if endpoint >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: endpoint,
                    num_vertices: self.num_vertices,
                });
            }
        }
        if ui == vi {
            return Err(GraphError::SelfLoop { vertex: ui });
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = self.edge_list.len();
        assert!(
            2 * id + 2 <= u32::MAX as usize,
            "too many edges for u32 ids"
        );
        self.edge_list.push((ui as u32, vi as u32, weight));
        self.live_weight_sum += weight;
        if weight < self.min_live_weight {
            self.min_live_weight = weight;
        }
        for (a, b) in [(ui, vi), (vi, ui)] {
            let slot = self.overlay.target.len() as u32;
            self.overlay.target.push(b as u32);
            self.overlay.weight.push(weight);
            self.overlay.edge.push(id as u32);
            self.overlay.next.push(self.overlay.head[a]);
            self.overlay.head[a] = slot;
        }
        self.epoch += 1;
        self.maybe_compact();
        Ok(EdgeId(id))
    }

    /// Deletes the edge with the given id: its tombstone bit is set, every
    /// scan skips it from now on, and the next re-pack drops its half-edges
    /// physically. The id stays allocated (never reused) so other ids remain
    /// stable. Bumps the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if the id is out of range or the
    /// edge was already deleted; the graph is unchanged in that case.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<(), GraphError> {
        if !self.is_edge_live(id) {
            return Err(GraphError::UnknownEdge { edge: id.index() });
        }
        // The sum shrinks exactly; the minimum is left possibly stale-low
        // until the next re-pack (see `min_live_weight`).
        self.live_weight_sum -= self.edge_list[id.index()].2;
        self.overlay.mark_dead(id.index());
        self.epoch += 1;
        self.maybe_compact();
        Ok(())
    }

    /// The lowest live edge id connecting `u` and `v`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.neighbors(u)
            .filter(|nb| nb.to == v)
            .map(|nb| nb.edge)
            .min()
    }

    /// Deletes the lowest live edge id connecting `u` and `v` and returns
    /// it. Bumps the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for a bad endpoint and
    /// [`GraphError::NoEdgeBetween`] when no live edge connects the pair.
    pub fn remove_edge_between(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        for endpoint in [u.index(), v.index()] {
            if endpoint >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: endpoint,
                    num_vertices: self.num_vertices,
                });
            }
        }
        let id = self.find_edge(u, v).ok_or(GraphError::NoEdgeBetween {
            u: u.index(),
            v: v.index(),
        })?;
        self.remove_edge(id)?;
        Ok(id)
    }

    /// Runs the re-pack trigger shared by appends and removals: the overlay
    /// (overflow half-edges plus lingering dead half-edges) is bounded by a
    /// constant fraction of the packed region plus a constant — see
    /// [`REPACK_OVERFLOW_DIVISOR`] / [`REPACK_OVERFLOW_SLACK`].
    fn maybe_compact(&mut self) {
        let pending = self.overlay.target.len() + 2 * self.overlay.pending_deletions;
        if pending >= self.targets.len() / REPACK_OVERFLOW_DIVISOR + REPACK_OVERFLOW_SLACK {
            self.compact();
        }
    }

    /// Re-packs every live half-edge into the flat CSR arrays (`O(n + m)`),
    /// consolidating the overlay: overflow chains fold into the packed
    /// arrays and tombstoned half-edges are dropped. Called automatically by
    /// [`CsrGraph::append_edge`] / [`CsrGraph::remove_edge`]; exposed for
    /// callers that want a fully packed view before a query burst. Does
    /// **not** bump the epoch (a re-pack changes the representation, never
    /// an answer).
    pub fn compact(&mut self) {
        if self.is_compact() {
            return;
        }
        let n = self.num_vertices;
        let m = self.edge_list.len();
        let half = 2 * (m - self.overlay.dead_edges);
        // Counting sort of live half-edges by source vertex.
        let mut counts = std::mem::take(&mut self.offsets);
        counts.clear();
        counts.resize(n + 1, 0);
        // The live scan doubles as the exact resync of the incremental
        // weight statistics (every constructor that fills `edge_list`
        // directly funnels through here).
        let mut weight_sum = 0.0f64;
        let mut min_weight = f64::INFINITY;
        for (id, &(u, v, w)) in self.edge_list.iter().enumerate() {
            if self.overlay.is_dead(id) {
                continue;
            }
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
            weight_sum += w;
            if w < min_weight {
                min_weight = w;
            }
        }
        self.live_weight_sum = weight_sum;
        self.min_live_weight = min_weight;
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut targets = vec![0u32; half];
        let mut weights = vec![0.0f64; half];
        let mut edge_ids = vec![0u32; half];
        for (id, &(u, v, w)) in self.edge_list.iter().enumerate() {
            if self.overlay.is_dead(id) {
                continue;
            }
            for (a, b) in [(u, v), (v, u)] {
                let slot = cursor[a as usize] as usize;
                cursor[a as usize] += 1;
                targets[slot] = b;
                weights[slot] = w;
                edge_ids[slot] = id as u32;
            }
        }
        self.offsets = counts;
        self.targets = targets;
        self.weights = weights;
        self.edge_ids = edge_ids;
        self.packed_edges = m;
        self.overlay.head.clear();
        self.overlay.head.resize(n, NONE);
        self.overlay.next.clear();
        self.overlay.target.clear();
        self.overlay.weight.clear();
        self.overlay.edge.clear();
        self.overlay.pending_deletions = 0;
    }

    /// Iterates over the live neighbors of `u` as [`CsrNeighbor`] records:
    /// first the packed half-edges (contiguous), then any overflow appends.
    /// Half-edges of deleted edges are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> Neighbors<'_> {
        let ui = u.index();
        assert!(ui < self.num_vertices, "vertex out of range");
        Neighbors {
            graph: self,
            pos: self.offsets[ui] as usize,
            end: self.offsets[ui + 1] as usize,
            chain: self.overlay.head[ui],
        }
    }

    /// Degree of `u` (number of live incident half-edges).
    pub fn degree(&self, u: VertexId) -> usize {
        self.neighbors(u).count()
    }

    /// The packed portion of `u`'s neighbors as parallel `(targets, weights)`
    /// slices — the zero-overhead view the Dijkstra engine's inner loop
    /// iterates. Half-edges appended since the last re-pack are *not*
    /// included (follow up with [`CsrGraph::overflow_neighbors`]), and
    /// half-edges *deleted* since the last re-pack **are** still included —
    /// when [`CsrGraph::has_pending_deletions`] reports `true`, filter with
    /// [`CsrGraph::packed_neighbor_ids`] + [`CsrGraph::is_edge_id_live`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn packed_neighbors(&self, u: VertexId) -> (&[u32], &[f64]) {
        let ui = u.index();
        let (a, b) = (self.offsets[ui] as usize, self.offsets[ui + 1] as usize);
        (&self.targets[a..b], &self.weights[a..b])
    }

    /// The edge ids parallel to [`CsrGraph::packed_neighbors`], for
    /// tombstone filtering when deletions are pending.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn packed_neighbor_ids(&self, u: VertexId) -> &[u32] {
        let ui = u.index();
        let (a, b) = (self.offsets[ui] as usize, self.offsets[ui + 1] as usize);
        &self.edge_ids[a..b]
    }

    /// The overflow portion of `u`'s live neighbors (half-edges appended
    /// since the last re-pack, minus any deleted since) as
    /// `(target, weight)` pairs. Usually empty or very short — see
    /// [`CsrGraph::append_edge`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn overflow_neighbors(&self, u: VertexId) -> OverflowNeighbors<'_> {
        OverflowNeighbors {
            graph: self,
            chain: self.overlay.head[u.index()],
        }
    }

    /// Whether `u` has any overflow chain at all — an O(1) emptiness test
    /// (the chain may still be all-tombstoned; this is the cheap
    /// conservative check the batched relax kernel uses to decide whether a
    /// row can be read straight from the packed arrays).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn has_overflow(&self, u: VertexId) -> bool {
        self.overlay.head[u.index()] != NONE
    }

    /// A read-only snapshot view of this graph, frozen for a parallel query
    /// phase (see [`crate::parallel::EnginePool::map_batch`]) and stamped
    /// with the epoch it froze at ([`CsrSnapshot::epoch`]).
    ///
    /// The snapshot is just a shared borrow — `CsrGraph` has no interior
    /// mutability, so the view is `Sync` and workers on other threads can
    /// query it concurrently. The borrow also *prevents* mutations for the
    /// snapshot's lifetime, which is exactly the freeze the deterministic
    /// filter-then-commit loop relies on.
    pub fn snapshot(&self) -> CsrSnapshot<'_> {
        CsrSnapshot {
            graph: self,
            epoch: self.epoch,
        }
    }

    /// Materializes the live edges of this CSR graph as a [`WeightedGraph`].
    /// When no edge was ever deleted, edge ids coincide (append order is
    /// preserved); after deletions the ids re-densify, skipping dead slots.
    pub fn to_weighted_graph(&self) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.num_vertices);
        for (_, u, v, w) in self.live_edges() {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Starts a fresh **generation**: a fully packed graph rebuilt from the
    /// live edges only, with ids re-densified in append order, plus the
    /// old-id → new-id remap. This is the bounded-memory escape hatch for
    /// the id-stability trade-off documented on the struct: the rebuilt
    /// graph's ground-truth arrays hold exactly [`CsrGraph::num_edges`]
    /// slots, with every dead slot (and its tombstone bit) reclaimed.
    ///
    /// Unlike [`CsrGraph::compact`] — a pure representation change — a
    /// generation rebuild is *logically observable* (edge ids shift), so the
    /// new graph carries **epoch `self.epoch() + 1`**: epoch-stamped readers
    /// (shortest-path-tree caches, serving handles) see the swap as one
    /// mutation and lazily refresh, exactly like any other staleness.
    ///
    /// Because the remap preserves append order, packed scan order over live
    /// edges — and therefore every answer — is unchanged; only the ids and
    /// the epoch move.
    pub fn rebuild_compacted(&self) -> CompactedRebuild {
        let mut graph = CsrGraph::new(self.num_vertices);
        graph.edge_list.reserve(self.num_edges());
        let mut remap = vec![None; self.edge_list.len()];
        for (id, &(u, v, w)) in self.edge_list.iter().enumerate() {
            if self.overlay.is_dead(id) {
                continue;
            }
            remap[id] = Some(EdgeId(graph.edge_list.len()));
            graph.edge_list.push((u, v, w));
        }
        graph.compact();
        graph.epoch = self.epoch + 1;
        CompactedRebuild { graph, remap }
    }

    /// Reconstructs a graph from externally stored parts — the
    /// deserialization counterpart of [`CsrGraph::live_edges`] plus the
    /// tombstone bitmap, used by the persistence layer to reproduce a graph
    /// **bit-identically**: same edge ids (dead slots included, so ids stay
    /// stable across a save/load cycle), same weights, same epoch.
    ///
    /// `edges` yields `(u, v, weight, live)` records in edge-id order; a
    /// `live = false` record re-creates a tombstoned slot. Every record is
    /// validated like [`CsrGraph::try_append_edge`] (dead ones too — they
    /// passed validation when first appended, so a failure here means the
    /// stored data is corrupt). The result is fully packed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`], [`GraphError::SelfLoop`] or
    /// [`GraphError::InvalidWeight`] for a record no append could have
    /// produced.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` or twice the edge count does not fit in
    /// `u32` — the same capacity contract as [`CsrGraph::new`] /
    /// [`CsrGraph::append_edge`] (persistence callers bounds-check stored
    /// counts before calling).
    pub fn from_parts(
        num_vertices: usize,
        epoch: u64,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f64, bool)>,
    ) -> Result<CsrGraph, GraphError> {
        let mut graph = CsrGraph::new(num_vertices);
        for (u, v, weight, live) in edges {
            let (ui, vi) = (u.index(), v.index());
            for endpoint in [ui, vi] {
                if endpoint >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: endpoint,
                        num_vertices,
                    });
                }
            }
            if ui == vi {
                return Err(GraphError::SelfLoop { vertex: ui });
            }
            if !(weight.is_finite() && weight > 0.0) {
                return Err(GraphError::InvalidWeight { weight });
            }
            let id = graph.edge_list.len();
            assert!(
                2 * id + 2 <= u32::MAX as usize,
                "too many edges for u32 ids"
            );
            graph.edge_list.push((ui as u32, vi as u32, weight));
            if !live {
                graph.overlay.mark_dead(id);
            }
        }
        graph.compact();
        graph.epoch = epoch;
        Ok(graph)
    }

    /// Produces a copy of this graph with every vertex renamed through
    /// `perm` (new id = `perm.to_internal(old id)`), fully packed. Used for
    /// the cache-conscious serving relayout: renumbering vertices by
    /// descending degree clusters the hot rows of the packed arrays at the
    /// front, so point-query scans touch fewer cache lines.
    ///
    /// Everything except the vertex names is preserved **bit-identically**:
    /// edge ids (dead slots included, so [`CsrGraph::is_edge_live`] agrees
    /// per id), weights, the tombstone bitmap, and the epoch. The caller
    /// owns the id translation at its API boundary — see
    /// `spanner-core`'s serving layer, which stores the permutation on its
    /// handle and translates queries in and answers out.
    ///
    /// # Panics
    ///
    /// Panics if `perm` was built for a different vertex count.
    pub fn reorder(&self, perm: &VertexPerm) -> CsrGraph {
        assert_eq!(
            perm.len(),
            self.num_vertices,
            "permutation length must match the vertex count"
        );
        let mut g = CsrGraph::new(self.num_vertices);
        g.edge_list = self
            .edge_list
            .iter()
            .map(|&(u, v, w)| {
                (
                    perm.to_internal[u as usize],
                    perm.to_internal[v as usize],
                    w,
                )
            })
            .collect();
        g.overlay.tombstone = self.overlay.tombstone.clone();
        g.overlay.dead_edges = self.overlay.dead_edges;
        g.overlay.pending_deletions = self.overlay.dead_edges;
        g.compact();
        g.epoch = self.epoch;
        g
    }
}

/// A bijective vertex renumbering for [`CsrGraph::reorder`]: `to_internal`
/// maps an original ("external") id to its new ("internal") position and
/// `to_external` inverts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPerm {
    to_internal: Vec<u32>,
    to_external: Vec<u32>,
}

impl VertexPerm {
    /// The degree-sorted permutation of `graph`: vertices ordered by
    /// descending live degree, ties by ascending original id (so the
    /// permutation is deterministic). High-degree vertices — the ones a
    /// search touches most — end up with the smallest internal ids, packing
    /// their CSR rows and their `dist`/`state` workspace slots into the
    /// fewest cache lines.
    pub fn degree_sorted(graph: &CsrGraph) -> VertexPerm {
        let n = graph.num_vertices();
        let mut degree = vec![0u32; n];
        for (_, u, v, _) in graph.live_edges() {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut to_external: Vec<u32> = (0..n as u32).collect();
        to_external.sort_by_key(|&v| (std::cmp::Reverse(degree[v as usize]), v));
        let mut to_internal = vec![0u32; n];
        for (internal, &external) in to_external.iter().enumerate() {
            to_internal[external as usize] = internal as u32;
        }
        VertexPerm {
            to_internal,
            to_external,
        }
    }

    /// Number of vertices the permutation covers.
    pub fn len(&self) -> usize {
        self.to_internal.len()
    }

    /// Whether the permutation covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.to_internal.is_empty()
    }

    /// Returns `true` if the permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.to_external
            .iter()
            .enumerate()
            .all(|(i, &v)| v as usize == i)
    }

    /// Maps an original (external) id to its reordered (internal) id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn to_internal(&self, v: VertexId) -> VertexId {
        VertexId(self.to_internal[v.index()] as usize)
    }

    /// Maps a reordered (internal) id back to the original (external) id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn to_external(&self, v: VertexId) -> VertexId {
        VertexId(self.to_external[v.index()] as usize)
    }

    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> VertexPerm {
        let to_external: Vec<u32> = (0..n as u32).collect();
        VertexPerm {
            to_internal: to_external.clone(),
            to_external,
        }
    }

    /// Builds a permutation from an explicit internal order:
    /// `order[internal]` is the external id placed at that internal
    /// position. This is how the sharded partition expresses
    /// "concatenate the shards' vertex lists".
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a bijection over `0..order.len()`.
    pub fn from_order(order: &[VertexId]) -> VertexPerm {
        let n = order.len();
        let mut to_internal = vec![u32::MAX; n];
        for (internal, &external) in order.iter().enumerate() {
            assert!(external.index() < n, "order entry out of range");
            assert!(
                to_internal[external.index()] == u32::MAX,
                "order repeats vertex {external:?}"
            );
            to_internal[external.index()] = internal as u32;
        }
        VertexPerm {
            to_internal,
            to_external: order.iter().map(|v| v.index() as u32).collect(),
        }
    }

    /// The inverse permutation: swaps the internal and external roles, so
    /// `p.compose(&p.inverse())` is the identity.
    pub fn inverse(&self) -> VertexPerm {
        VertexPerm {
            to_internal: self.to_external.clone(),
            to_external: self.to_internal.clone(),
        }
    }

    /// Composes two renumberings into one translation table: the result
    /// maps external id `v` to `then.to_internal(self.to_internal(v))`.
    /// This is how chained mappings — a shard-local mapping, a
    /// compaction remap, a degree-sorted serving relayout — collapse into a
    /// single lookup instead of a pipeline of translations.
    ///
    /// # Panics
    ///
    /// Panics if the permutations cover different vertex counts.
    pub fn compose(&self, then: &VertexPerm) -> VertexPerm {
        assert_eq!(
            self.len(),
            then.len(),
            "composed permutations must cover the same vertex count"
        );
        let to_internal: Vec<u32> = self
            .to_internal
            .iter()
            .map(|&mid| then.to_internal[mid as usize])
            .collect();
        let to_external: Vec<u32> = then
            .to_external
            .iter()
            .map(|&mid| self.to_external[mid as usize])
            .collect();
        VertexPerm {
            to_internal,
            to_external,
        }
    }
}

/// A fresh generation produced by [`CsrGraph::rebuild_compacted`]: the dense
/// rebuilt graph plus the edge-id remap.
#[derive(Debug, Clone)]
pub struct CompactedRebuild {
    /// The rebuilt graph: live edges only, ids densified in append order,
    /// fully packed, at epoch `old + 1`.
    pub graph: CsrGraph,
    /// Old edge id → new edge id; `None` for slots that were dead (their
    /// ids have no successor in the new generation).
    pub remap: Vec<Option<EdgeId>>,
}

impl From<&WeightedGraph> for CsrGraph {
    /// Builds a fully packed CSR view of `graph` at epoch 0. Edge ids
    /// coincide with the source graph's [`EdgeId`]s.
    fn from(graph: &WeightedGraph) -> Self {
        let mut csr = CsrGraph::new(graph.num_vertices());
        csr.edge_list.reserve(graph.num_edges());
        for e in graph.edges() {
            csr.edge_list
                .push((e.u.index() as u32, e.v.index() as u32, e.weight));
        }
        assert!(
            2 * csr.edge_list.len() <= u32::MAX as usize,
            "too many edges for u32 ids"
        );
        csr.compact();
        csr
    }
}

/// A read-only, `Sync` view of a [`CsrGraph`] frozen for a parallel query
/// phase; produced by [`CsrGraph::snapshot`] and stamped with the epoch it
/// froze at.
///
/// Dereferences to the underlying graph, so every query API works on it
/// unchanged. Holding a snapshot borrows the graph shared, which statically
/// rules out concurrent mutation — the compiler enforces the filter-phase
/// freeze. The epoch stamp lets batch executors cross-check a caller's
/// expected epoch ([`crate::parallel::EnginePool::try_map_batch`]) and
/// refuse stale views with [`GraphError::StaleEpoch`].
#[derive(Debug, Clone, Copy)]
pub struct CsrSnapshot<'a> {
    graph: &'a CsrGraph,
    epoch: u64,
}

impl<'a> CsrSnapshot<'a> {
    /// The frozen graph.
    pub fn graph(&self) -> &'a CsrGraph {
        self.graph
    }

    /// The epoch the graph was at when this snapshot froze it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::ops::Deref for CsrSnapshot<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        self.graph
    }
}

// The whole point of the snapshot: it can be shared across worker threads.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<CsrSnapshot<'static>>();
};

/// Iterator over the live overflow half-edges of one vertex; see
/// [`CsrGraph::overflow_neighbors`].
#[derive(Debug, Clone)]
pub struct OverflowNeighbors<'a> {
    graph: &'a CsrGraph,
    chain: u32,
}

impl Iterator for OverflowNeighbors<'_> {
    type Item = (u32, f64);

    #[inline]
    fn next(&mut self) -> Option<(u32, f64)> {
        while self.chain != NONE {
            let i = self.chain as usize;
            self.chain = self.graph.overlay.next[i];
            if self
                .graph
                .overlay
                .is_dead(self.graph.overlay.edge[i] as usize)
            {
                continue;
            }
            return Some((self.graph.overlay.target[i], self.graph.overlay.weight[i]));
        }
        None
    }
}

/// Iterator over the live neighbors of one vertex; see
/// [`CsrGraph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    graph: &'a CsrGraph,
    pos: usize,
    end: usize,
    chain: u32,
}

impl Iterator for Neighbors<'_> {
    type Item = CsrNeighbor;

    #[inline]
    fn next(&mut self) -> Option<CsrNeighbor> {
        while self.pos < self.end {
            let i = self.pos;
            self.pos += 1;
            let id = self.graph.edge_ids[i] as usize;
            if self.graph.overlay.is_dead(id) {
                continue;
            }
            return Some(CsrNeighbor {
                to: VertexId(self.graph.targets[i] as usize),
                weight: self.graph.weights[i],
                edge: EdgeId(id),
            });
        }
        while self.chain != NONE {
            let i = self.chain as usize;
            self.chain = self.graph.overlay.next[i];
            let id = self.graph.overlay.edge[i] as usize;
            if self.graph.overlay.is_dead(id) {
                continue;
            }
            return Some(CsrNeighbor {
                to: VertexId(self.graph.overlay.target[i] as usize),
                weight: self.graph.overlay.weight[i],
                edge: EdgeId(id),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 2.0)]).unwrap()
    }

    /// Neighbor sets (target, weight, edge id) of `u`, sorted for comparison.
    fn sorted_neighbors(csr: &CsrGraph, u: usize) -> Vec<(usize, u64, usize)> {
        let mut v: Vec<_> = csr
            .neighbors(VertexId(u))
            .map(|nb| (nb.to.index(), nb.weight.to_bits(), nb.edge.index()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn from_weighted_graph_matches_adjacency() {
        let g = diamond();
        let csr = CsrGraph::from(&g);
        assert!(csr.is_compact());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.epoch(), 0, "a freshly built view starts at epoch 0");
        for u in 0..4 {
            let mut expected: Vec<_> = g
                .neighbors(VertexId(u))
                .iter()
                .map(|&(v, e)| (v.index(), g.edge(e).weight.to_bits(), e.index()))
                .collect();
            expected.sort_unstable();
            assert_eq!(sorted_neighbors(&csr, u), expected, "vertex {u}");
        }
        assert!((csr.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn append_edge_then_compact_round_trips() {
        let g = diamond();
        let mut csr = CsrGraph::new(4);
        for (i, e) in g.edges().iter().enumerate() {
            let id = csr.append_edge(e.u, e.v, e.weight);
            assert_eq!(id.index(), i);
        }
        // Overflow path must already answer correctly…
        let before: Vec<_> = (0..4).map(|u| sorted_neighbors(&csr, u)).collect();
        let epoch_before = csr.epoch();
        csr.compact();
        assert!(csr.is_compact());
        assert_eq!(csr.epoch(), epoch_before, "re-packing never bumps epochs");
        // …and compaction must not change anything.
        for (u, b) in before.iter().enumerate() {
            assert_eq!(&sorted_neighbors(&csr, u), b);
        }
        let back = csr.to_weighted_graph();
        assert_eq!(back, g);
    }

    #[test]
    fn auto_compaction_keeps_many_appends_correct() {
        // Enough appends to cross the overflow threshold repeatedly.
        let n = 50usize;
        let mut csr = CsrGraph::new(n);
        let mut reference = WeightedGraph::new(n);
        let mut k = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + 2 * v) % 3 == 0 {
                    let w = 1.0 + (k % 7) as f64;
                    csr.append_edge(VertexId(u), VertexId(v), w);
                    reference.add_edge(VertexId(u), VertexId(v), w);
                    k += 1;
                }
            }
        }
        assert_eq!(csr.num_edges(), reference.num_edges());
        assert_eq!(csr.epoch(), reference.num_edges() as u64);
        for u in 0..n {
            let mut expected: Vec<_> = reference
                .neighbors(VertexId(u))
                .iter()
                .map(|&(v, e)| (v.index(), reference.edge(e).weight.to_bits(), e.index()))
                .collect();
            expected.sort_unstable();
            assert_eq!(sorted_neighbors(&csr, u), expected, "vertex {u}");
        }
    }

    /// The documented re-pack trigger in action: force repeated
    /// append/delete/re-pack cycles and assert the packed arrays, the
    /// overlay, and the reference adjacency stay consistent throughout.
    #[test]
    fn repeated_repack_cycles_keep_packed_arrays_consistent_with_overlay() {
        let n = 24usize;
        let mut csr = CsrGraph::new(n);
        let mut live: Vec<(usize, usize, f64, usize)> = Vec::new(); // (u, v, w, id)
        let mut compactions_observed = 0usize;
        let mut was_compact = csr.is_compact();
        let mut next = 0usize;
        for round in 0..400 {
            if round % 5 == 4 && !live.is_empty() {
                // Delete a pseudo-random live edge.
                let pick = (round * 7) % live.len();
                let (_, _, _, id) = live.swap_remove(pick);
                csr.remove_edge(EdgeId(id)).unwrap();
            } else {
                let u = next % n;
                let v = (next / n + u + 1) % n;
                next += 1;
                if u == v {
                    continue;
                }
                let w = 1.0 + (round % 9) as f64;
                let id = csr.append_edge(VertexId(u), VertexId(v), w);
                live.push((u, v, w, id.index()));
            }
            // Observe re-packs via the is_compact transition.
            let compact_now = csr.is_compact();
            if compact_now && !was_compact {
                compactions_observed += 1;
            }
            was_compact = compact_now;
            // The trigger bound must hold after every mutation: the overlay
            // stays below the documented fraction of the packed region
            // (packed half-edges = 2 · (live − pending inserts + pending
            // deletes), since the packed arrays reflect the last re-pack).
            let (pi, pd) = (
                csr.overlay().pending_insertions(),
                csr.overlay().pending_deletions(),
            );
            let packed_half = 2 * (csr.num_edges() + pd - pi);
            assert!(
                2 * pi + 2 * pd < packed_half / REPACK_OVERFLOW_DIVISOR + REPACK_OVERFLOW_SLACK + 2,
                "round {round}: overlay {} outgrew the documented trigger",
                2 * pi + 2 * pd
            );
            // Full adjacency equivalence every few rounds (packed + overlay
            // vs. the live reference list).
            if round % 7 == 0 {
                assert_eq!(csr.num_edges(), live.len());
                for u in 0..n {
                    let mut expected: Vec<(usize, u64, usize)> = live
                        .iter()
                        .flat_map(|&(a, b, w, id)| {
                            let mut h = Vec::new();
                            if a == u {
                                h.push((b, w.to_bits(), id));
                            }
                            if b == u {
                                h.push((a, w.to_bits(), id));
                            }
                            h
                        })
                        .collect();
                    expected.sort_unstable();
                    assert_eq!(
                        sorted_neighbors(&csr, u),
                        expected,
                        "round {round} vertex {u}"
                    );
                }
            }
        }
        assert!(
            compactions_observed >= 3,
            "the cycle must cross the re-pack threshold repeatedly \
             (observed {compactions_observed})"
        );
    }

    #[test]
    fn edge_accessor_returns_append_order() {
        let mut csr = CsrGraph::new(3);
        csr.append_edge(VertexId(2), VertexId(0), 1.5);
        csr.append_edge(VertexId(0), VertexId(1), 2.5);
        assert_eq!(csr.edge(EdgeId(0)), (VertexId(2), VertexId(0), 1.5));
        assert_eq!(csr.edge(EdgeId(1)), (VertexId(0), VertexId(1), 2.5));
        assert_eq!(csr.degree(VertexId(0)), 2);
        assert_eq!(csr.degree(VertexId(1)), 1);
        assert!(!csr.is_edgeless());
        assert!(CsrGraph::new(2).is_edgeless());
    }

    #[test]
    fn remove_edge_tombstones_and_consolidates() {
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        assert_eq!(csr.epoch(), 0);
        // Delete the heavy (0, 2) edge: id 2 in from_edges order.
        csr.remove_edge(EdgeId(2)).unwrap();
        assert_eq!(csr.epoch(), 1);
        assert_eq!(csr.num_edges(), 3);
        assert!(!csr.is_edge_live(EdgeId(2)));
        assert!(csr.is_edge_live(EdgeId(0)));
        assert_eq!(csr.edge_id_bound(), 4, "dead ids stay allocated");
        assert!(csr.has_pending_deletions());
        assert!(sorted_neighbors(&csr, 0).iter().all(|&(to, _, _)| to != 2));
        assert_eq!(csr.degree(VertexId(0)), 1);
        assert!((csr.total_weight() - 4.0).abs() < 1e-12);
        // Double delete and out-of-range ids are typed errors.
        assert_eq!(
            csr.remove_edge(EdgeId(2)),
            Err(GraphError::UnknownEdge { edge: 2 })
        );
        assert_eq!(
            csr.remove_edge(EdgeId(99)),
            Err(GraphError::UnknownEdge { edge: 99 })
        );
        // Consolidation drops the dead half-edges physically; answers are
        // unchanged and the live edges survive a round trip.
        let before: Vec<_> = (0..4).map(|u| sorted_neighbors(&csr, u)).collect();
        csr.compact();
        assert!(!csr.has_pending_deletions());
        assert!(csr.is_compact());
        for (u, b) in before.iter().enumerate() {
            assert_eq!(&sorted_neighbors(&csr, u), b);
        }
        let back = csr.to_weighted_graph();
        assert_eq!(back.num_edges(), 3);
        assert!(!back.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn remove_edge_between_picks_the_lowest_live_id() {
        let mut csr = CsrGraph::new(3);
        csr.append_edge(VertexId(0), VertexId(1), 1.0); // id 0
        csr.append_edge(VertexId(0), VertexId(1), 2.0); // id 1 (parallel)
        assert_eq!(csr.find_edge(VertexId(0), VertexId(1)), Some(EdgeId(0)));
        assert_eq!(
            csr.remove_edge_between(VertexId(0), VertexId(1)).unwrap(),
            EdgeId(0)
        );
        assert_eq!(csr.find_edge(VertexId(0), VertexId(1)), Some(EdgeId(1)));
        assert_eq!(
            csr.remove_edge_between(VertexId(0), VertexId(1)).unwrap(),
            EdgeId(1)
        );
        assert!(matches!(
            csr.remove_edge_between(VertexId(0), VertexId(1)),
            Err(GraphError::NoEdgeBetween { u: 0, v: 1 })
        ));
        assert!(matches!(
            csr.remove_edge_between(VertexId(0), VertexId(9)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert_eq!(csr.find_edge(VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn epochs_advance_per_mutation_and_stale_stamps_are_typed_errors() {
        let mut csr = CsrGraph::new(3);
        let stamp = csr.epoch();
        assert!(csr.verify_epoch(stamp).is_ok());
        let snap_epoch = csr.snapshot().epoch();
        assert_eq!(snap_epoch, 0);
        csr.append_edge(VertexId(0), VertexId(1), 1.0);
        csr.append_edge(VertexId(1), VertexId(2), 1.0);
        assert_eq!(csr.epoch(), 2);
        assert_eq!(
            csr.verify_epoch(stamp),
            Err(GraphError::StaleEpoch {
                stamped: 0,
                current: 2
            })
        );
        csr.remove_edge(EdgeId(0)).unwrap();
        assert_eq!(csr.epoch(), 3);
        assert_eq!(csr.snapshot().epoch(), 3);
        // Rejected mutations leave the epoch untouched.
        assert!(csr.try_append_edge(VertexId(0), VertexId(0), 1.0).is_err());
        assert!(csr.remove_edge(EdgeId(0)).is_err());
        assert_eq!(csr.epoch(), 3);
    }

    #[test]
    fn live_edges_skips_dead_slots() {
        let g = diamond();
        let mut csr = CsrGraph::from(&g);
        csr.remove_edge(EdgeId(1)).unwrap();
        let ids: Vec<usize> = csr.live_edges().map(|(id, _, _, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(csr.live_edges().count(), csr.num_edges());
    }

    /// The `O(1)` dead-slot counters must agree with a full ground-truth
    /// scan at every point of a mixed append/delete history — the cached
    /// resolution for the `live_edges()` cost audit: hot paths read these
    /// counters, never the scan.
    #[test]
    fn dead_edge_counters_match_a_full_scan() {
        let mut csr = CsrGraph::new(10);
        assert_eq!(csr.dead_edges(), 0);
        assert_eq!(csr.tombstoned_fraction(), 0.0, "edgeless graph");
        let mut ids = Vec::new();
        for i in 0..30usize {
            let (u, v) = (i % 10, (i + 1 + i / 10) % 10);
            if u == v {
                continue;
            }
            ids.push(csr.append_edge(VertexId(u), VertexId(v), 1.0 + i as f64));
        }
        for (k, id) in ids.iter().enumerate() {
            if k % 3 == 0 {
                csr.remove_edge(*id).unwrap();
            }
            let scanned_live = csr.live_edges().count();
            assert_eq!(csr.num_edges(), scanned_live);
            assert_eq!(csr.dead_edges(), csr.edge_id_bound() - scanned_live);
            let expected = csr.dead_edges() as f64 / csr.edge_id_bound() as f64;
            assert_eq!(csr.tombstoned_fraction().to_bits(), expected.to_bits());
        }
        assert!(csr.dead_edges() > 0, "the loop must delete something");
    }

    /// The `O(1)` live-weight statistics decline (`None`) instead of
    /// dividing by a zero edge count — on a fresh edgeless graph and on one
    /// re-emptied by tombstoning every edge.
    #[test]
    fn live_weight_stats_decline_on_edgeless_graphs() {
        let mut csr = CsrGraph::new(4);
        assert!(csr.is_edgeless());
        assert_eq!(csr.min_live_weight(), None);
        assert_eq!(csr.mean_live_weight(), None);
        assert_eq!(csr.tombstoned_fraction(), 0.0);
        let a = csr.append_edge(VertexId(0), VertexId(1), 2.0);
        let b = csr.append_edge(VertexId(1), VertexId(2), 4.0);
        assert_eq!(csr.min_live_weight(), Some(2.0));
        assert_eq!(csr.mean_live_weight(), Some(3.0));
        csr.remove_edge(a).unwrap();
        csr.remove_edge(b).unwrap();
        // Zero live edges again: the divisors are zero and the maintained
        // min/sum are stale — both stats must refuse, not report NaN or a
        // ghost weight.
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.is_edgeless());
        assert_eq!(csr.min_live_weight(), None);
        assert_eq!(csr.mean_live_weight(), None);
    }

    #[test]
    fn rebuild_compacted_densifies_ids_preserves_answers_and_bumps_epoch() {
        let mut csr = CsrGraph::new(6);
        let mut live = Vec::new(); // (old id, u, v, w)
        for (k, &(u, v, w)) in [
            (0usize, 1usize, 1.5f64),
            (1, 2, 2.5),
            (2, 3, 3.5),
            (3, 4, 4.5),
            (4, 5, 5.5),
            (0, 5, 6.5),
            (1, 4, 7.5),
        ]
        .iter()
        .enumerate()
        {
            let id = csr.append_edge(VertexId(u), VertexId(v), w);
            if k % 2 == 1 {
                csr.remove_edge(id).unwrap();
            } else {
                live.push((id, u, v, w));
            }
        }
        let epoch_before = csr.epoch();
        let rebuild = csr.rebuild_compacted();
        let fresh = &rebuild.graph;
        // Dense: every slot live, dead bookkeeping reclaimed.
        assert_eq!(fresh.num_edges(), csr.num_edges());
        assert_eq!(fresh.edge_id_bound(), fresh.num_edges());
        assert_eq!(fresh.dead_edges(), 0);
        assert_eq!(fresh.tombstoned_fraction(), 0.0);
        assert!(fresh.is_compact());
        // One logical mutation: the id shift is observable, so epoch-stamped
        // readers must see the swap.
        assert_eq!(fresh.epoch(), epoch_before + 1);
        // The remap sends live ids to densified ids in append order and dead
        // ids nowhere.
        assert_eq!(rebuild.remap.len(), csr.edge_id_bound());
        let mut expected_new = 0usize;
        for (id, entry) in rebuild.remap.iter().enumerate() {
            if csr.is_edge_live(EdgeId(id)) {
                assert_eq!(*entry, Some(EdgeId(expected_new)), "old id {id}");
                expected_new += 1;
            } else {
                assert_eq!(*entry, None, "dead id {id}");
            }
        }
        // Records survive bit-identically under the remap.
        for &(old_id, u, v, w) in &live {
            let new_id = rebuild.remap[old_id.index()].unwrap();
            let (nu, nv, nw) = fresh.edge(new_id);
            assert_eq!((nu.index(), nv.index()), (u, v));
            assert_eq!(nw.to_bits(), w.to_bits());
        }
        // Adjacency (and thus every answer) is unchanged modulo ids.
        for u in 0..6 {
            let before: Vec<(usize, u64)> = {
                let mut v: Vec<_> = csr
                    .neighbors(VertexId(u))
                    .map(|nb| (nb.to.index(), nb.weight.to_bits()))
                    .collect();
                v.sort_unstable();
                v
            };
            let after: Vec<(usize, u64)> = {
                let mut v: Vec<_> = fresh
                    .neighbors(VertexId(u))
                    .map(|nb| (nb.to.index(), nb.weight.to_bits()))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(before, after, "vertex {u}");
        }
        // A rebuild of an already dense graph is an identity remap.
        let again = fresh.rebuild_compacted();
        assert!(again
            .remap
            .iter()
            .enumerate()
            .all(|(i, r)| *r == Some(EdgeId(i))));
    }

    #[test]
    fn from_parts_round_trips_bit_identically() {
        let mut csr = CsrGraph::new(5);
        for (u, v, w) in [(0, 1, 0.125), (1, 2, 2.0), (2, 3, 3.75), (3, 4, 1.0e-3)] {
            csr.append_edge(VertexId(u), VertexId(v), w);
        }
        csr.remove_edge(EdgeId(1)).unwrap();
        csr.remove_edge(EdgeId(3)).unwrap();
        let parts: Vec<(VertexId, VertexId, f64, bool)> = (0..csr.edge_id_bound())
            .map(|id| {
                let (u, v, w) = csr.edge(EdgeId(id));
                (u, v, w, csr.is_edge_live(EdgeId(id)))
            })
            .collect();
        let restored = CsrGraph::from_parts(csr.num_vertices(), csr.epoch(), parts).unwrap();
        assert_eq!(restored.epoch(), csr.epoch());
        assert_eq!(restored.num_vertices(), csr.num_vertices());
        assert_eq!(restored.edge_id_bound(), csr.edge_id_bound());
        assert_eq!(restored.num_edges(), csr.num_edges());
        assert_eq!(restored.dead_edges(), csr.dead_edges());
        assert!(restored.is_compact(), "from_parts packs fully");
        for id in 0..csr.edge_id_bound() {
            let id = EdgeId(id);
            assert_eq!(restored.is_edge_live(id), csr.is_edge_live(id));
            let (u, v, w) = csr.edge(id);
            let (ru, rv, rw) = restored.edge(id);
            assert_eq!((ru, rv), (u, v));
            assert_eq!(rw.to_bits(), w.to_bits());
        }
        for u in 0..5 {
            assert_eq!(sorted_neighbors(&restored, u), sorted_neighbors(&csr, u));
        }
    }

    #[test]
    fn from_parts_rejects_records_no_append_could_have_produced() {
        let bad_vertex = CsrGraph::from_parts(3, 0, [(VertexId(0), VertexId(7), 1.0, true)]);
        assert!(matches!(
            bad_vertex,
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
        let self_loop = CsrGraph::from_parts(3, 0, [(VertexId(1), VertexId(1), 1.0, true)]);
        assert!(matches!(self_loop, Err(GraphError::SelfLoop { vertex: 1 })));
        // Dead records are validated too: they were valid when first
        // appended, so an invalid one means corrupt storage.
        let bad_weight = CsrGraph::from_parts(3, 0, [(VertexId(0), VertexId(1), f64::NAN, false)]);
        assert!(matches!(bad_weight, Err(GraphError::InvalidWeight { .. })));
        // And the empty graph round-trips.
        let empty = CsrGraph::from_parts(4, 9, std::iter::empty()).unwrap();
        assert_eq!(empty.num_vertices(), 4);
        assert_eq!(empty.epoch(), 9);
        assert!(empty.is_edgeless());
    }

    #[test]
    #[should_panic(expected = "SelfLoop")]
    fn append_rejects_self_loop() {
        CsrGraph::new(2).append_edge(VertexId(1), VertexId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "VertexOutOfRange")]
    fn append_rejects_bad_endpoint() {
        CsrGraph::new(2).append_edge(VertexId(0), VertexId(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn append_rejects_bad_weight() {
        CsrGraph::new(2).append_edge(VertexId(0), VertexId(1), f64::NAN);
    }

    #[test]
    fn try_append_rejects_invalid_edges_without_mutating() {
        let mut csr = CsrGraph::new(3);
        csr.append_edge(VertexId(0), VertexId(1), 1.0);
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            assert!(
                matches!(
                    csr.try_append_edge(VertexId(0), VertexId(2), w),
                    Err(GraphError::InvalidWeight { .. })
                ),
                "weight {w}"
            );
        }
        assert!(matches!(
            csr.try_append_edge(VertexId(0), VertexId(9), 1.0),
            Err(GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 3
            })
        ));
        assert!(matches!(
            csr.try_append_edge(VertexId(2), VertexId(2), 1.0),
            Err(GraphError::SelfLoop { vertex: 2 })
        ));
        // Nothing was appended by any of the rejected calls.
        assert_eq!(csr.num_edges(), 1);
        assert_eq!(csr.degree(VertexId(2)), 0);
        let ok = csr.try_append_edge(VertexId(1), VertexId(2), 2.0).unwrap();
        assert_eq!(ok, EdgeId(1));
    }

    #[test]
    fn weight_statistics_track_mutations_and_resync_at_compaction() {
        let mut csr = CsrGraph::new(4);
        assert_eq!(csr.min_live_weight(), None, "edgeless: no statistics");
        assert_eq!(csr.mean_live_weight(), None);
        csr.append_edge(VertexId(0), VertexId(1), 2.0);
        csr.append_edge(VertexId(1), VertexId(2), 0.5);
        csr.append_edge(VertexId(2), VertexId(3), 3.5);
        assert_eq!(csr.min_live_weight(), Some(0.5));
        assert_eq!(csr.mean_live_weight(), Some(2.0));
        // Deleting the minimum leaves the reported minimum as a (stale)
        // lower bound until the next re-pack, while the mean is exact.
        csr.remove_edge(EdgeId(1)).unwrap();
        assert!(csr.min_live_weight().unwrap() <= 2.0);
        assert!((csr.mean_live_weight().unwrap() - 2.75).abs() < 1e-12);
        csr.compact();
        assert_eq!(csr.min_live_weight(), Some(2.0), "exact after re-pack");
        assert_eq!(csr.mean_live_weight(), Some(2.75));
        // All constructors that bypass append_edge resync via compact().
        let from_parts = CsrGraph::from_parts(
            4,
            7,
            [
                (VertexId(0), VertexId(1), 2.0, true),
                (VertexId(1), VertexId(2), 9.0, false),
                (VertexId(2), VertexId(3), 3.5, true),
            ],
        )
        .unwrap();
        assert_eq!(from_parts.min_live_weight(), Some(2.0));
        assert_eq!(from_parts.mean_live_weight(), Some(2.75));
        let rebuilt = csr.rebuild_compacted().graph;
        assert_eq!(rebuilt.min_live_weight(), Some(2.0));
        assert_eq!(rebuilt.mean_live_weight(), Some(2.75));
        let from_weighted = CsrGraph::from(&diamond());
        assert_eq!(from_weighted.min_live_weight(), Some(1.0));
        assert_eq!(from_weighted.mean_live_weight(), Some(2.25));
    }

    #[test]
    fn degree_sorted_permutation_ranks_hubs_first_with_id_ties() {
        let g = diamond(); // degrees: 0→2, 1→2, 2→3, 3→1
        let csr = CsrGraph::from(&g);
        let perm = VertexPerm::degree_sorted(&csr);
        assert_eq!(perm.len(), 4);
        assert!(!perm.is_empty());
        assert_eq!(perm.to_internal(VertexId(2)), VertexId(0), "hub first");
        assert_eq!(perm.to_internal(VertexId(0)), VertexId(1), "tie by id");
        assert_eq!(perm.to_internal(VertexId(1)), VertexId(2));
        assert_eq!(perm.to_internal(VertexId(3)), VertexId(3));
        for v in 0..4 {
            assert_eq!(
                perm.to_external(perm.to_internal(VertexId(v))),
                VertexId(v),
                "round trip {v}"
            );
        }
        assert!(!perm.is_identity());
        assert!(VertexPerm::degree_sorted(&CsrGraph::new(3)).is_identity());
    }

    #[test]
    fn reorder_relabels_vertices_and_preserves_everything_else() {
        let mut csr = CsrGraph::from(&diamond());
        csr.remove_edge(EdgeId(2)).unwrap(); // tombstone the heavy (0, 2)
        csr.append_edge(VertexId(1), VertexId(3), 0.25);
        let perm = VertexPerm::degree_sorted(&csr);
        let re = csr.reorder(&perm);
        assert!(re.is_compact(), "reorder produces a fully packed graph");
        assert_eq!(re.epoch(), csr.epoch());
        assert_eq!(re.num_edges(), csr.num_edges());
        assert_eq!(re.edge_id_bound(), csr.edge_id_bound());
        assert_eq!(re.dead_edges(), csr.dead_edges());
        for id in 0..csr.edge_id_bound() {
            let id = EdgeId(id);
            assert_eq!(re.is_edge_live(id), csr.is_edge_live(id), "id {id:?}");
            let (u, v, w) = csr.edge(id);
            let (ru, rv, rw) = re.edge(id);
            assert_eq!(ru, perm.to_internal(u));
            assert_eq!(rv, perm.to_internal(v));
            assert_eq!(rw.to_bits(), w.to_bits());
        }
        // Adjacency is isomorphic under the renaming.
        for u in 0..4 {
            let mut expected: Vec<(usize, u64, usize)> = csr
                .neighbors(VertexId(u))
                .map(|nb| {
                    (
                        perm.to_internal(nb.to).index(),
                        nb.weight.to_bits(),
                        nb.edge.index(),
                    )
                })
                .collect();
            expected.sort_unstable();
            assert_eq!(
                sorted_neighbors(&re, perm.to_internal(VertexId(u)).index()),
                expected,
                "vertex {u}"
            );
        }
        // Weight statistics re-derive exactly.
        assert_eq!(re.min_live_weight(), csr.min_live_weight());
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn reorder_rejects_mismatched_permutations() {
        let small = CsrGraph::new(2);
        let perm = VertexPerm::degree_sorted(&small);
        CsrGraph::new(3).reorder(&perm);
    }
}
