//! Aggregate measurements over graphs: weight, degree distribution and the
//! size/weight/lightness summary used throughout the experiments.

use crate::graph::WeightedGraph;
use crate::mst::mst_weight;

/// A compact summary of the parameters the spanner literature reports:
/// size (edges), weight, lightness and maximum degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Total edge weight.
    pub total_weight: f64,
    /// Total weight divided by the reference MST weight.
    pub lightness: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Average vertex degree (`2m / n`), zero for the empty graph.
    pub average_degree: f64,
}

/// Summarizes `subgraph` relative to the MST weight of `reference`.
///
/// The reference is normally the original graph `G` while `subgraph` is a
/// spanner `H ⊆ G`; per Observation 2 the two share an MST, so lightness is
/// well defined either way.
pub fn summarize(subgraph: &WeightedGraph, reference: &WeightedGraph) -> GraphSummary {
    let mst = mst_weight(reference);
    summarize_with_mst(subgraph, mst)
}

/// Summarizes `subgraph` against an already-computed MST weight (avoids
/// recomputing the MST inside parameter sweeps).
///
/// **Degenerate references.** When `reference_mst_weight` is zero (an
/// edgeless or single-vertex reference), the `weight / mst` ratio is the
/// indeterminate `0/0` or the misleading `w/0`. Instead of letting a
/// `NaN`/`inf` (or a too-good-to-be-true `0.0`) leak into aggregate tables,
/// the lightness of that case is **defined** as [`degenerate_lightness`]:
/// `1.0` when the subgraph is also weightless (a weightless spanner of a
/// weightless graph is perfectly light), `f64::INFINITY` when the subgraph
/// carries positive weight over a weightless reference (only possible when
/// the reference is not the graph the subgraph was built from — the infinity
/// flags the mismatch instead of hiding it).
pub fn summarize_with_mst(subgraph: &WeightedGraph, reference_mst_weight: f64) -> GraphSummary {
    let n = subgraph.num_vertices();
    let m = subgraph.num_edges();
    let total_weight = subgraph.total_weight();
    let lightness = if reference_mst_weight > 0.0 {
        total_weight / reference_mst_weight
    } else {
        degenerate_lightness(total_weight)
    };
    GraphSummary {
        num_vertices: n,
        num_edges: m,
        total_weight,
        lightness,
        max_degree: subgraph.max_degree(),
        average_degree: if n > 0 {
            2.0 * m as f64 / n as f64
        } else {
            0.0
        },
    }
}

/// The defined lightness of a subgraph measured against a weightless
/// (zero-MST) reference: `1.0` for a weightless subgraph, `f64::INFINITY`
/// for one with positive weight. Never `NaN` — see [`summarize_with_mst`].
pub fn degenerate_lightness(subgraph_weight: f64) -> f64 {
    if subgraph_weight > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Histogram of vertex degrees: entry `i` counts vertices of degree `i`.
pub fn degree_histogram(graph: &WeightedGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    if graph.num_vertices() == 0 {
        hist.clear();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, star_graph};

    #[test]
    fn summary_of_cycle_against_itself() {
        let g = cycle_graph(5, 2.0);
        let s = summarize(&g, &g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 5);
        assert!((s.total_weight - 10.0).abs() < 1e-12);
        // MST of the cycle drops one edge: weight 8, lightness 10/8.
        assert!((s.lightness - 1.25).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_subgraph_against_reference() {
        let g = cycle_graph(4, 1.0);
        let sub = g.filter_edges(|_, e| e.key() != (0, 3));
        let s = summarize(&sub, &g);
        assert_eq!(s.num_edges, 3);
        assert!((s.lightness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_with_zero_mst_is_defined_and_finite_math_free() {
        // Edgeless reference, edgeless subgraph: 0/0 is defined as 1.0.
        let g = WeightedGraph::new(3);
        let s = summarize(&g, &g);
        assert_eq!(s.lightness, 1.0);
        assert_eq!(s.average_degree, 0.0);
        assert!(!s.lightness.is_nan());
        // Single-vertex reference behaves the same (its MST is weightless).
        let one = WeightedGraph::new(1);
        assert_eq!(summarize(&one, &one).lightness, 1.0);
        // A weighted subgraph against a weightless reference flags the
        // mismatch as +inf instead of a NaN or a flattering 0.0.
        let mut h = WeightedGraph::new(3);
        h.add_edge(crate::graph::VertexId(0), crate::graph::VertexId(1), 2.0);
        let s = summarize(&h, &g);
        assert!(s.lightness.is_infinite() && s.lightness > 0.0);
        assert_eq!(degenerate_lightness(0.0), 1.0);
        assert_eq!(degenerate_lightness(3.0), f64::INFINITY);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = star_graph(5, 1.0);
        let h = degree_histogram(&g);
        // One hub of degree 4, four leaves of degree 1.
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn degree_histogram_of_empty_graph() {
        assert!(degree_histogram(&WeightedGraph::new(0)).is_empty());
    }
}
