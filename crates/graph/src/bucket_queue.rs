//! A deterministic bucket (delta-stepping-style) priority queue for bounded
//! Dijkstra queries.
//!
//! Bounded point queries — the greedy construction's per-candidate query and
//! the serving layer's `Distance` hot path — know their search radius up
//! front, so keys fall in `[0, bound]` and a calendar of `bound / delta`
//! buckets replaces the binary heap's `O(log n)` push/pop with `O(1)` bucket
//! chaining. The catch is determinism: the engine's settle order (the basis
//! of every bit-identity contract in this workspace) is *non-decreasing
//! `(distance, vertex)`*, and a plain bucket queue only orders between
//! buckets, not within them.
//!
//! [`BucketQueue`] therefore splits entries in two:
//!
//! * entries whose bucket index is **ahead of the current base bucket** sit
//!   in per-bucket linked chains carved out of one slot pool (no ordering
//!   needed yet, `O(1)` push);
//! * entries that land **in or behind the base bucket** go to a small binary
//!   heap (the *active* set) ordered by exact `(key, vertex)`.
//!
//! When the active heap drains, the base advances to the next non-empty
//! bucket and that bucket's chain is tipped into the active heap. Because the
//! bucket index is a monotone function of the key, every chained entry's key
//! is strictly greater than every active entry's key, so popping the active
//! minimum pops the *global* `(key, vertex)` minimum — the pop sequence is
//! bit-identical to the lazy-deletion binary heap's, just cheaper: the heap
//! only ever holds one bucket's worth of entries.
//!
//! Monotone Dijkstra pushes (`new key ≥ last popped key`) keep the invariant;
//! pushes that would land behind the base (possible only through floating-
//! point rounding at bucket boundaries) are clamped into the active heap,
//! where exact comparison takes over. Degenerate widths (zero/overflow
//! `delta`, unbounded queries) are rejected by [`bucket_delta`], and the
//! engine falls back to its binary heap.

use std::collections::BinaryHeap;

use crate::csr::CsrGraph;

/// Chain terminator / empty-bucket sentinel.
const NONE: u32 = u32::MAX;

/// Hard cap on the calendar length: a query never scans (or clears) more
/// than this many bucket heads, regardless of `bound / delta`.
pub(crate) const MAX_BUCKETS: usize = 1024;

/// The mean live weight is divided by this when deriving a bucket width, so
/// a typical bucket holds a handful of relaxations instead of one.
const MEAN_WEIGHT_DIVISOR: f64 = 4.0;

/// One priority-queue entry: the key is stored alongside the vertex so
/// comparisons stay inside the heap array instead of chasing `dist`. Shared
/// by the engine's lazy-deletion binary heap and the bucket queue's active
/// set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapSlot {
    pub(crate) dist: f64,
    pub(crate) vertex: u32,
}

impl Eq for HeapSlot {}

impl Ord for HeapSlot {
    /// Reversed, so the max-heap pops the smallest distance first, ties by
    /// smaller vertex id (matching the legacy free functions, so settle
    /// order is identical).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Derives the bucket width for a bounded query on `graph`, or `None` when
/// the bucket queue is not applicable and the engine must use its binary
/// heap.
///
/// The width is `max(min live weight, mean live weight / 4, bound / 1024)`:
///
/// * at least the minimum weight, so no relaxation can move an entry by less
///   than a bucket (the classic delta-stepping "light edge" threshold —
///   with `delta ≤ w_min` every bucket is settled in one drain);
/// * at least a quarter of the mean weight, so near-uniform graphs get a few
///   relaxations per bucket instead of one bucket per entry;
/// * at least `bound / 1024`, capping the calendar at [`MAX_BUCKETS`] heads.
///
/// Ineligible cases: an infinite or non-positive `bound` (unbounded
/// searches have no calendar length), an edgeless graph (no weight
/// statistics), and widths whose reciprocal is not finite (the index
/// computation `key · (1/delta)` must never produce a NaN).
pub(crate) fn bucket_delta(graph: &CsrGraph, bound: f64) -> Option<f64> {
    if !bound.is_finite() || bound <= 0.0 {
        return None;
    }
    let min_w = graph.min_live_weight()?;
    let mean_w = graph.mean_live_weight()?;
    let delta = min_w
        .max(mean_w / MEAN_WEIGHT_DIVISOR)
        .max(bound / MAX_BUCKETS as f64);
    (delta.is_finite() && delta > 0.0 && delta.recip().is_finite()).then_some(delta)
}

/// The bucket priority queue itself. All buffers are retained across
/// queries; [`BucketQueue::begin`] re-arms it for a new `(delta, bound)`
/// without deallocating, so a pre-sized engine stays allocation-free per
/// query (see [`crate::engine::DijkstraEngine::with_capacity_for`]).
#[derive(Debug, Clone, Default)]
pub struct BucketQueue {
    /// `heads[b]` is the slot index of the first entry chained in bucket
    /// `b`, or `NONE`. Only `heads[..limit]` is meaningful for the current
    /// query.
    heads: Vec<u32>,
    /// Slot pool backing the chains (parallel arrays; `next` links slots).
    keys: Vec<f64>,
    verts: Vec<u32>,
    next: Vec<u32>,
    /// Entries in or behind the base bucket, ordered by exact
    /// `(key, vertex)`.
    active: BinaryHeap<HeapSlot>,
    /// Reciprocal bucket width; the bucket of `key` is
    /// `min(floor(key · inv_delta), limit − 1)`.
    inv_delta: f64,
    /// Number of bucket heads in play for the current query (≤
    /// `MAX_BUCKETS + 1`).
    limit: usize,
    /// The calendar position: chains at indices ≤ `base` are empty, their
    /// entries drained into `active`.
    base: usize,
    len: usize,
}

impl BucketQueue {
    /// Creates an empty queue; [`BucketQueue::begin`] sizes it on demand.
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// Number of entries currently queued (stale lazy-deletion entries
    /// included, like the binary heap's length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-sizes the calendar and the slot pool so a query pushing up to
    /// `entries` entries performs no heap allocation.
    pub(crate) fn reserve(&mut self, entries: usize) {
        if self.heads.capacity() < MAX_BUCKETS + 1 {
            self.heads.reserve_exact(MAX_BUCKETS + 1 - self.heads.len());
        }
        if self.keys.capacity() < entries {
            self.keys.reserve_exact(entries - self.keys.len());
        }
        if self.verts.capacity() < entries {
            self.verts.reserve_exact(entries - self.verts.len());
        }
        if self.next.capacity() < entries {
            self.next.reserve_exact(entries - self.next.len());
        }
        if self.active.capacity() < entries {
            self.active.reserve(entries - self.active.len());
        }
    }

    /// The combined capacity of every internal buffer — the engine compares
    /// it before and after a query to detect hidden allocations for its
    /// workspace-reuse accounting.
    pub(crate) fn capacity_signature(&self) -> usize {
        self.heads.capacity()
            + self.keys.capacity()
            + self.verts.capacity()
            + self.next.capacity()
            + self.active.capacity()
    }

    /// Re-arms the queue for one query with bucket width `delta` and key
    /// range `[0, bound]`. Both must come from [`bucket_delta`] (finite,
    /// positive, finite reciprocal).
    pub(crate) fn begin(&mut self, delta: f64, bound: f64) {
        self.inv_delta = delta.recip();
        debug_assert!(self.inv_delta.is_finite() && self.inv_delta > 0.0);
        // Keys are capped at `bound`, so the largest reachable index is
        // floor(bound / delta), clamped to the calendar cap.
        self.limit = ((bound * self.inv_delta) as usize).min(MAX_BUCKETS) + 1;
        if self.heads.len() < self.limit {
            self.heads.resize(self.limit, NONE);
        }
        self.heads[..self.limit].fill(NONE);
        self.keys.clear();
        self.verts.clear();
        self.next.clear();
        self.active.clear();
        self.base = 0;
        self.len = 0;
    }

    /// Bucket index of `key`: a monotone non-decreasing map (f64 multiply
    /// plus truncating cast), clamped to the calendar.
    #[inline(always)]
    fn bucket_of(&self, key: f64) -> usize {
        ((key * self.inv_delta) as usize).min(self.limit - 1)
    }

    /// Queues `(key, vertex)`. Keys must be non-negative and at most the
    /// `bound` passed to [`BucketQueue::begin`].
    #[inline(always)]
    pub(crate) fn push(&mut self, key: f64, vertex: u32) {
        let idx = self.bucket_of(key);
        self.len += 1;
        if idx <= self.base {
            // In or behind the base bucket (behind is only reachable via
            // rounding at a bucket boundary): exact heap ordering takes
            // over.
            self.active.push(HeapSlot { dist: key, vertex });
        } else {
            let slot = self.keys.len() as u32;
            self.keys.push(key);
            self.verts.push(vertex);
            self.next.push(self.heads[idx]);
            self.heads[idx] = slot;
        }
    }

    /// Ensures the active heap holds the global minimum: when it has
    /// drained, the base advances to the next non-empty chain and that
    /// chain is tipped in. Returns `false` when the whole queue is empty.
    /// Chained keys all map to buckets > the old base, hence compare
    /// greater than every key popped so far — so after this returns `true`,
    /// `active.peek()` *is* the global `(key, vertex)` minimum.
    #[inline]
    fn ensure_active(&mut self) -> bool {
        while self.active.is_empty() {
            if self.len == 0 {
                return false;
            }
            self.base += 1;
            while self.heads[self.base] == NONE {
                self.base += 1;
            }
            let mut slot = self.heads[self.base];
            self.heads[self.base] = NONE;
            while slot != NONE {
                let s = slot as usize;
                self.active.push(HeapSlot {
                    dist: self.keys[s],
                    vertex: self.verts[s],
                });
                slot = self.next[s];
            }
        }
        true
    }

    /// Pops the entry with the smallest `(key, vertex)`, advancing the base
    /// bucket when the active set drains.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(f64, u32)> {
        if !self.ensure_active() {
            return None;
        }
        let HeapSlot { dist, vertex } = self.active.pop().expect("ensure_active guarantees entry");
        self.len -= 1;
        Some((dist, vertex))
    }

    /// Pops the global minimum only when its key is strictly below
    /// `threshold` — the cohort-draining primitive of the engine's batched
    /// relax kernel, which pops every entry of a same-bucket cohort in one
    /// pass. Advancing the base early (when the peeked minimum is at or
    /// past the threshold and stays queued) is harmless: pushes that would
    /// land in or behind the base clamp into the active heap, where exact
    /// comparison preserves the global pop order.
    #[inline]
    pub(crate) fn pop_if_below(&mut self, threshold: f64) -> Option<(f64, u32)> {
        if !self.ensure_active() {
            return None;
        }
        let &HeapSlot { dist, vertex } =
            self.active.peek().expect("ensure_active guarantees entry");
        if dist < threshold {
            self.active.pop();
            self.len -= 1;
            Some((dist, vertex))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{VertexId, WeightedGraph};

    fn armed(delta: f64, bound: f64) -> BucketQueue {
        let mut q = BucketQueue::new();
        q.begin(delta, bound);
        q
    }

    #[test]
    fn pops_in_exact_key_vertex_order() {
        let mut q = armed(1.0, 10.0);
        let entries = [
            (3.5, 7),
            (0.0, 2),
            (3.5, 1),
            (9.99, 0),
            (1.0, 4),
            (0.999, 9),
            (3.5, 7),
        ];
        for &(k, v) in &entries {
            q.push(k, v);
        }
        assert_eq!(q.len(), entries.len());
        let mut sorted = entries.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, sorted);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_monotone_pushes_stay_sorted() {
        // Dijkstra-style usage: every push key is ≥ the last popped key.
        let mut q = armed(0.5, 8.0);
        q.push(0.0, 0);
        let (k0, _) = q.pop().unwrap();
        assert_eq!(k0, 0.0);
        q.push(1.3, 5);
        q.push(1.3, 2);
        q.push(7.9, 1);
        assert_eq!(q.pop(), Some((1.3, 2)));
        q.push(2.6, 8);
        assert_eq!(q.pop(), Some((1.3, 5)));
        assert_eq!(q.pop(), Some((2.6, 8)));
        q.push(7.9, 0);
        assert_eq!(q.pop(), Some((7.9, 0)));
        assert_eq!(q.pop(), Some((7.9, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn keys_at_the_bound_land_in_the_last_bucket() {
        // bound / delta well past the cap: the calendar clamps, keys near
        // the bound pile into the last bucket, and order still holds.
        let mut q = armed(1e-6, 1.0);
        q.push(1.0, 3);
        q.push(0.999_999, 9);
        q.push(1.0, 1);
        q.push(0.0, 0);
        assert_eq!(q.pop(), Some((0.0, 0)));
        assert_eq!(q.pop(), Some((0.999_999, 9)));
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((1.0, 3)));
    }

    #[test]
    fn begin_rearms_without_deallocating() {
        let mut q = BucketQueue::new();
        q.reserve(64);
        q.begin(1.0, 16.0);
        for i in 0..32 {
            q.push(i as f64 / 2.0, i);
        }
        let sig = q.capacity_signature();
        q.begin(0.25, 4.0);
        assert!(q.is_empty());
        for i in 0..32 {
            q.push(i as f64 / 8.0, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.capacity_signature(), sig, "re-arming must not allocate");
    }

    #[test]
    fn delta_rule_tracks_weight_statistics_and_rejects_degenerates() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 9.0)]).unwrap();
        let csr = crate::csr::CsrGraph::from(&g);
        // min = 1, mean = 4 → delta = max(1, 1, bound/1024) = 1.
        assert_eq!(bucket_delta(&csr, 8.0), Some(1.0));
        // Huge bound: the calendar cap takes over.
        let d = bucket_delta(&csr, 1e6).unwrap();
        assert!((d - 1e6 / MAX_BUCKETS as f64).abs() < 1e-9);
        // Unbounded, zero, negative, NaN bounds: ineligible.
        assert_eq!(bucket_delta(&csr, f64::INFINITY), None);
        assert_eq!(bucket_delta(&csr, 0.0), None);
        assert_eq!(bucket_delta(&csr, -1.0), None);
        assert_eq!(bucket_delta(&csr, f64::NAN), None);
        // Edgeless graph: no weight statistics.
        let empty = crate::csr::CsrGraph::new(3);
        assert_eq!(bucket_delta(&empty, 5.0), None);
        let _ = VertexId(0);
    }

    #[test]
    fn pop_if_below_is_strict_and_preserves_global_order() {
        let mut q = armed(1.0, 10.0);
        for &(k, v) in &[(0.0, 3), (0.5, 1), (0.5, 7), (2.0, 2), (9.0, 4)] {
            q.push(k, v);
        }
        // Strictly below: the 0.5 entries qualify at threshold 2.0 — in
        // exact (key, vertex) order — but the 2.0 entry does not.
        assert_eq!(q.pop_if_below(2.0), Some((0.0, 3)));
        assert_eq!(q.pop_if_below(2.0), Some((0.5, 1)));
        assert_eq!(q.pop_if_below(2.0), Some((0.5, 7)));
        assert_eq!(q.pop_if_below(2.0), None);
        assert_eq!(q.len(), 2, "refused entries stay queued");
        // Interleaved pushes after a refusal still pop in global order,
        // including entries that land behind the advanced base.
        q.push(2.5, 9);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop_if_below(9.0), Some((2.5, 9)));
        assert_eq!(q.pop_if_below(9.0), None, "9.0 is not strictly below 9.0");
        assert_eq!(q.pop(), Some((9.0, 4)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_if_below(f64::INFINITY), None, "empty queue");
    }

    #[test]
    fn boundary_rounding_is_clamped_into_the_active_heap() {
        // A key whose bucket index rounds below the base is clamped into
        // the active heap instead of a dead chain; exact comparison keeps
        // the global order.
        let mut q = armed(1.0, 4.0);
        q.push(0.0, 0);
        assert_eq!(q.pop(), Some((0.0, 0)));
        q.push(2.5, 1);
        assert_eq!(q.pop(), Some((2.5, 1))); // base advances to 2
        q.push(2.6, 4); // bucket 2 == base → active
        q.push(3.1, 3); // bucket 3 → chain
        assert_eq!(q.pop(), Some((2.6, 4)));
        assert_eq!(q.pop(), Some((3.1, 3)));
        assert_eq!(q.pop(), None);
    }
}
