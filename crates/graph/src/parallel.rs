//! Deterministic parallel query execution: a pool of per-worker
//! [`DijkstraEngine`] workspaces fanned over a frozen [`CsrGraph`] snapshot.
//!
//! The greedy spanner's hot loop is `O(m)` bounded Dijkstra queries against
//! the growing spanner. Within a batch of similar-weight candidate edges the
//! queries are independent *against a frozen snapshot* of the spanner, so
//! they can run concurrently — the batched filter-then-commit loop in the
//! `greedy-spanner` crate freezes the spanner, fans the batch's queries
//! across this pool, and then commits survivors sequentially.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Work is partitioned by chunk index: item `i` of a
//!    batch always lands in chunk `i / chunk_size`, and every result is
//!    written to slot `i` of the output slice. Which OS thread executes a
//!    chunk never influences any result, so a construction built on the pool
//!    produces bit-identical output at every thread count.
//! 2. **No runtime dependency.** The executor is scoped `std::thread` —
//!    no rayon, no global thread pool, no registry access. Threads live only
//!    for the duration of one [`EnginePool::map_batch`] call; for the short
//!    batches typical of spanner construction this costs a few microseconds
//!    per batch, which the batch sizing upstream amortizes.
//! 3. **Zero per-query allocation.** Each worker owns one pre-sized
//!    [`DijkstraEngine`]; the pool aggregates their counters so the
//!    zero-allocation contract ([`EngineStats::reuse_hits`] `==`
//!    [`EngineStats::queries`]) remains checkable per construction.
//!
//! ```
//! use spanner_graph::parallel::EnginePool;
//! use spanner_graph::{CsrGraph, VertexId, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! let csr = CsrGraph::from(&g);
//! let mut pool = EnginePool::with_capacity_for(4, g.num_vertices(), g.num_edges());
//! let queries = [(0usize, 3usize), (1, 3), (0, 2)];
//! let mut covered = [false; 3];
//! pool.map_batch(csr.snapshot(), &queries, &mut covered, |engine, graph, &(s, t)| {
//!     engine
//!         .bounded_distance(graph, VertexId(s), VertexId(t), 2.5)
//!         .is_some()
//! });
//! assert_eq!(covered, [false, true, true]);
//! assert_eq!(pool.stats().queries, 3);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::csr::{CsrGraph, CsrSnapshot};
use crate::engine::{DijkstraEngine, EngineStats, QueuePolicy, RelaxKernel};
use crate::error::GraphError;

/// Below this many items per worker the pool shrinks the worker count so no
/// thread is spawned for a handful of queries (spawn latency would dominate).
const MIN_ITEMS_PER_WORKER: usize = 8;

/// A pool of per-worker [`DijkstraEngine`] workspaces plus the scoped-thread
/// executor that fans query batches across them.
///
/// Engine 0 doubles as the *commit engine* ([`EnginePool::commit_engine`]):
/// the sequential phase of a filter-then-commit loop re-checks survivors on
/// it, so one pool carries all counters of a construction.
#[derive(Debug)]
pub struct EnginePool {
    engines: Vec<DijkstraEngine>,
    /// Cumulative busy time per worker across all `map_batch` calls, the
    /// basis of [`EnginePool::utilization`].
    busy: Vec<Duration>,
    /// Most workers any single `map_batch` call engaged — the denominator
    /// of [`EnginePool::utilization`], so batches too small to fan out
    /// (which run inline on worker 0 by design) do not read as imbalance.
    peak_workers: usize,
    /// Engines currently occupied, in worker units: `map_batch` holds the
    /// number of workers it engaged for its duration, and outstanding
    /// [`PoolPermit`]s each hold one unit. Atomic so [`EnginePool::inflight`]
    /// and permit release work through shared references.
    inflight: AtomicUsize,
    /// High-water mark of [`EnginePool::inflight`] since the last
    /// [`EnginePool::reset_stats`].
    peak_inflight: AtomicUsize,
}

/// RAII occupancy permit handed out by [`EnginePool::try_acquire`]: holds one
/// worker unit of the pool's inflight gauge and releases it on drop.
///
/// Permits let an admission-control layer meter *real* engine occupancy — the
/// same gauge `map_batch` itself drives — instead of counting submissions.
#[derive(Debug)]
pub struct PoolPermit<'a> {
    gauge: &'a AtomicUsize,
}

impl Drop for PoolPermit<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

impl EnginePool {
    /// Creates a pool of `workers` engines with empty workspaces (each sizes
    /// itself on first use; the growth queries count as reuse misses).
    ///
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        EnginePool {
            engines: (0..workers).map(|_| DijkstraEngine::new()).collect(),
            busy: vec![Duration::ZERO; workers],
            peak_workers: 0,
            inflight: AtomicUsize::new(0),
            peak_inflight: AtomicUsize::new(0),
        }
    }

    /// Creates a pool of `workers` engines, each pre-sized via
    /// [`DijkstraEngine::with_capacity_for`] so every query on every worker
    /// is allocation-free.
    ///
    /// `workers` is clamped to at least 1.
    pub fn with_capacity_for(workers: usize, num_vertices: usize, num_edges: usize) -> Self {
        let workers = workers.max(1);
        EnginePool {
            engines: (0..workers)
                .map(|_| DijkstraEngine::with_capacity_for(num_vertices, num_edges))
                .collect(),
            busy: vec![Duration::ZERO; workers],
            peak_workers: 0,
            inflight: AtomicUsize::new(0),
            peak_inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to reserve one worker unit of engine capacity, returning an RAII
    /// [`PoolPermit`] that releases the unit on drop, or `None` when every
    /// worker unit is already held (by permits or a running `map_batch`).
    ///
    /// The permit only moves the occupancy gauge — it does not pin a specific
    /// engine. Admission layers acquire before dispatch so
    /// [`EnginePool::inflight`] reflects intended occupancy even while the
    /// batch is still queued.
    pub fn try_acquire(&self) -> Option<PoolPermit<'_>> {
        let capacity = self.engines.len();
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= capacity {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_inflight.fetch_max(current + 1, Ordering::Relaxed);
                    return Some(PoolPermit {
                        gauge: &self.inflight,
                    });
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Worker units currently occupied: outstanding [`PoolPermit`]s plus the
    /// workers engaged by any `map_batch` call in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// High-water mark of [`EnginePool::inflight`] since construction or the
    /// last [`EnginePool::reset_stats`].
    pub fn peak_inflight(&self) -> usize {
        self.peak_inflight.load(Ordering::Relaxed)
    }

    /// Number of workers (engines) in the pool.
    pub fn workers(&self) -> usize {
        self.engines.len()
    }

    /// The engine the sequential commit phase should query (worker 0), so
    /// its counters aggregate with the parallel filter counters in
    /// [`EnginePool::stats`]. Commit queries do not count toward
    /// [`EnginePool::utilization`] — that measures the parallel phases only.
    pub fn commit_engine(&mut self) -> &mut DijkstraEngine {
        &mut self.engines[0]
    }

    /// Aggregate counters over every engine in the pool: query, reuse-hit,
    /// queue-pop, settled-vertex and pruned-push totals, and the maximum
    /// peak frontier.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for e in &self.engines {
            let s = e.stats();
            total.queries += s.queries;
            total.reuse_hits += s.reuse_hits;
            total.heap_pops += s.heap_pops;
            total.settled_vertices += s.settled_vertices;
            total.pruned_by_bound += s.pruned_by_bound;
            total.peak_frontier = total.peak_frontier.max(s.peak_frontier);
            total.generation_wraps += s.generation_wraps;
            total.kernel.merge(&s.kernel);
        }
        total
    }

    /// Sets the [`QueuePolicy`] on every engine in the pool (including the
    /// commit engine). Answers are bit-identical under every policy; this
    /// only selects the frontier data structure for bounded queries.
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        for e in &mut self.engines {
            e.set_queue_policy(policy);
        }
    }

    /// Sets the [`RelaxKernel`] on every engine in the pool (including the
    /// commit engine). Answers are bit-identical under every kernel; this
    /// only selects how relaxations are executed.
    pub fn set_relax_kernel(&mut self, kernel: RelaxKernel) {
        for e in &mut self.engines {
            e.set_relax_kernel(kernel);
        }
    }

    /// Resets every engine's counters, the per-worker busy times and the
    /// peak participating-worker count.
    pub fn reset_stats(&mut self) {
        for e in &mut self.engines {
            e.reset_stats();
        }
        self.busy.iter_mut().for_each(|b| *b = Duration::ZERO);
        self.peak_workers = 0;
        // Outstanding permits keep their units: only the high-water mark
        // resets, re-seeded from the live gauge.
        self.peak_inflight
            .store(self.inflight.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Mean busy fraction of the participating workers across all
    /// `map_batch` calls so far: `sum(busy) / (peak_workers × max(busy))`,
    /// where `peak_workers` is the most workers any single batch engaged.
    /// `1.0` means every participating worker was busy whenever the busiest
    /// one was (perfect balance). Batches too small to fan out run inline
    /// on worker 0 by design and therefore never depress the metric; a pool
    /// that has executed nothing reports `1.0`.
    pub fn utilization(&self) -> f64 {
        let max = self.busy.iter().max().copied().unwrap_or(Duration::ZERO);
        if max.is_zero() || self.peak_workers == 0 {
            return 1.0;
        }
        let sum: Duration = self.busy.iter().sum();
        sum.as_secs_f64() / (self.peak_workers as f64 * max.as_secs_f64())
    }

    /// Evaluates `f(engine, graph, item)` for every item of a batch against
    /// a frozen snapshot, writing result `i` into `out[i]`.
    ///
    /// Items are split into one contiguous chunk per worker (by chunk
    /// index, so the partitioning — and therefore every per-engine counter
    /// trajectory — is a function of the batch length and worker count
    /// alone). Batches smaller than [`MIN_ITEMS_PER_WORKER`] per worker use
    /// fewer workers, down to an inline, spawn-free run on worker 0.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `out` have different lengths.
    pub fn map_batch<T, U, F>(
        &mut self,
        snapshot: CsrSnapshot<'_>,
        items: &[T],
        out: &mut [U],
        f: F,
    ) where
        T: Sync,
        U: Send,
        F: Fn(&mut DijkstraEngine, &CsrGraph, &T) -> U + Sync,
    {
        assert_eq!(
            items.len(),
            out.len(),
            "batch items and output slice must have equal length"
        );
        if items.is_empty() {
            return;
        }
        let graph = snapshot.graph();
        let workers = self
            .engines
            .len()
            .min(items.len().div_ceil(MIN_ITEMS_PER_WORKER))
            .max(1);
        self.peak_workers = self.peak_workers.max(workers);
        // Drive the occupancy gauge for the duration of the batch: the
        // engaged worker count is held as inflight units and released when
        // the batch finishes (guard drops even if a query panics).
        struct OccupancyGuard<'a> {
            gauge: &'a AtomicUsize,
            units: usize,
        }
        impl Drop for OccupancyGuard<'_> {
            fn drop(&mut self) {
                self.gauge.fetch_sub(self.units, Ordering::Relaxed);
            }
        }
        let occupied = self.inflight.fetch_add(workers, Ordering::Relaxed) + workers;
        self.peak_inflight.fetch_max(occupied, Ordering::Relaxed);
        let _occupancy = OccupancyGuard {
            gauge: &self.inflight,
            units: workers,
        };
        if workers == 1 {
            let start = Instant::now();
            let engine = &mut self.engines[0];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = f(engine, graph, item);
            }
            self.busy[0] += start.elapsed();
            return;
        }
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for ((engine, busy), (item_chunk, out_chunk)) in self
                .engines
                .iter_mut()
                .zip(self.busy.iter_mut())
                .zip(items.chunks(chunk).zip(out.chunks_mut(chunk)))
            {
                let f = &f;
                scope.spawn(move || {
                    let start = Instant::now();
                    for (slot, item) in out_chunk.iter_mut().zip(item_chunk) {
                        *slot = f(engine, graph, item);
                    }
                    *busy += start.elapsed();
                });
            }
        });
    }

    /// Epoch-checked [`EnginePool::map_batch`]: the caller passes the epoch
    /// its view of the graph was stamped at, and the pool **refuses a stale
    /// snapshot with a typed error** instead of silently fanning queries
    /// over data the caller has not seen ([`CsrSnapshot::epoch`] vs. the
    /// stamp). On success the batch ran exactly as `map_batch` would have.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::StaleEpoch`] when the snapshot's epoch differs
    /// from `stamped`; no query ran and no counter changed.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `out` have different lengths.
    pub fn try_map_batch<T, U, F>(
        &mut self,
        snapshot: CsrSnapshot<'_>,
        stamped: u64,
        items: &[T],
        out: &mut [U],
        f: F,
    ) -> Result<(), GraphError>
    where
        T: Sync,
        U: Send,
        F: Fn(&mut DijkstraEngine, &CsrGraph, &T) -> U + Sync,
    {
        if snapshot.epoch() != stamped {
            return Err(GraphError::StaleEpoch {
                stamped,
                current: snapshot.epoch(),
            });
        }
        self.map_batch(snapshot, items, out, f);
        Ok(())
    }
}

/// Fills `out[i] = f(i)` for every index, split into one contiguous chunk
/// per worker on scoped threads — the generic deterministic fan-out used by
/// batch drivers (e.g. the spanner matrix runner) whose jobs are not engine
/// queries.
///
/// Like [`EnginePool::map_batch`], partitioning is by chunk index, so the
/// output is identical at every worker count; `workers <= 1` (or a single
/// item) runs inline without spawning.
pub fn fill_chunked<U, F>(workers: usize, out: &mut [U], f: F)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let len = out.len();
    let workers = workers.max(1).min(len.max(1));
    if workers == 1 || len <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = f(c * chunk + i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{VertexId, WeightedGraph};

    fn path_graph(n: usize) -> WeightedGraph {
        WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, 1.0))).unwrap()
    }

    #[test]
    fn map_batch_results_are_identical_across_worker_counts() {
        let g = path_graph(40);
        let csr = CsrGraph::from(&g);
        let queries: Vec<(usize, usize, f64)> = (0..100)
            .map(|i| ((i * 7) % 40, (i * 13 + 5) % 40, 3.0 + (i % 9) as f64))
            .collect();
        let mut reference: Vec<Option<f64>> = vec![None; queries.len()];
        let mut pool1 = EnginePool::with_capacity_for(1, 40, g.num_edges());
        pool1.map_batch(
            csr.snapshot(),
            &queries,
            &mut reference,
            |e, graph, &(s, t, b)| e.bounded_distance(graph, VertexId(s), VertexId(t), b),
        );
        for workers in [2, 3, 4, 8] {
            let mut pool = EnginePool::with_capacity_for(workers, 40, g.num_edges());
            let mut out: Vec<Option<f64>> = vec![None; queries.len()];
            pool.map_batch(
                csr.snapshot(),
                &queries,
                &mut out,
                |e, graph, &(s, t, b)| e.bounded_distance(graph, VertexId(s), VertexId(t), b),
            );
            assert_eq!(out, reference, "workers = {workers}");
            let stats = pool.stats();
            assert_eq!(stats.queries, queries.len() as u64);
            assert_eq!(
                stats.reuse_hits, stats.queries,
                "pre-sized pool engines must never allocate"
            );
        }
    }

    #[test]
    fn small_batches_run_inline_on_one_worker() {
        let g = path_graph(10);
        let csr = CsrGraph::from(&g);
        let mut pool = EnginePool::with_capacity_for(8, 10, g.num_edges());
        let queries = [(0usize, 9usize)];
        let mut out = [None];
        pool.map_batch(csr.snapshot(), &queries, &mut out, |e, graph, &(s, t)| {
            e.bounded_distance(graph, VertexId(s), VertexId(t), 100.0)
        });
        assert_eq!(out, [Some(9.0)]);
        // Only worker 0 ran, and since only one worker *participated*, the
        // inline batch reads as perfectly balanced — not as 1/8 imbalance.
        assert_eq!(pool.stats().queries, 1);
        assert!((pool.utilization() - 1.0).abs() < 1e-12);
        pool.reset_stats();
        assert_eq!(pool.stats(), EngineStats::default());
        assert!((pool.utilization() - 1.0).abs() < 1e-12, "idle pool is 1.0");
    }

    #[test]
    fn empty_batch_is_a_no_op_and_lengths_must_match() {
        let csr = CsrGraph::new(3);
        let mut pool = EnginePool::new(2);
        let queries: [(usize, usize); 0] = [];
        let mut out: [bool; 0] = [];
        pool.map_batch(csr.snapshot(), &queries, &mut out, |_, _, _| true);
        assert_eq!(pool.stats().queries, 0);
        assert_eq!(pool.workers(), 2);
        // A zero-item batch leaves every busy timer at zero — utilization
        // must report the idle value, not divide by it.
        assert!((pool.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(EnginePool::new(0).workers(), 1, "workers clamp to 1");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_output_slice_is_rejected() {
        let csr = CsrGraph::new(2);
        let mut pool = EnginePool::new(1);
        let queries = [(0usize, 1usize)];
        let mut out: [bool; 2] = [false; 2];
        pool.map_batch(csr.snapshot(), &queries, &mut out, |_, _, _| true);
    }

    #[test]
    fn commit_engine_counters_aggregate_with_the_pool() {
        let g = path_graph(6);
        let csr = CsrGraph::from(&g);
        let mut pool = EnginePool::with_capacity_for(2, 6, g.num_edges());
        pool.commit_engine()
            .bounded_distance(&csr, VertexId(0), VertexId(5), 100.0);
        assert_eq!(pool.stats().queries, 1);
    }

    #[test]
    fn try_map_batch_refuses_stale_epochs_and_runs_current_ones() {
        let mut g = path_graph(8);
        let mut csr = CsrGraph::from(&g);
        let mut pool = EnginePool::with_capacity_for(2, 8, g.num_edges());
        let queries = [(0usize, 7usize)];
        let stamp = csr.epoch();
        let mut out = [None];
        pool.try_map_batch(
            csr.snapshot(),
            stamp,
            &queries,
            &mut out,
            |e, graph, &(s, t)| e.bounded_distance(graph, VertexId(s), VertexId(t), 100.0),
        )
        .unwrap();
        assert_eq!(out, [Some(7.0)]);
        // Mutate the graph: the old stamp must be refused, queries unrun.
        csr.append_edge(VertexId(0), VertexId(7), 1.0);
        g.add_edge(VertexId(0), VertexId(7), 1.0);
        let queries_before = pool.stats().queries;
        let mut out = [None];
        let err = pool
            .try_map_batch(
                csr.snapshot(),
                stamp,
                &queries,
                &mut out,
                |e, graph, &(s, t)| e.bounded_distance(graph, VertexId(s), VertexId(t), 100.0),
            )
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::GraphError::StaleEpoch {
                stamped: stamp,
                current: stamp + 1
            }
        );
        assert_eq!(out, [None], "a refused batch writes nothing");
        assert_eq!(pool.stats().queries, queries_before);
        // A refreshed stamp answers against the mutated graph.
        pool.try_map_batch(
            csr.snapshot(),
            csr.epoch(),
            &queries,
            &mut out,
            |e, graph, &(s, t)| e.bounded_distance(graph, VertexId(s), VertexId(t), 100.0),
        )
        .unwrap();
        assert_eq!(out, [Some(1.0)]);
    }

    #[test]
    fn permits_meter_capacity_and_release_on_drop() {
        let pool = EnginePool::new(2);
        assert_eq!(pool.inflight(), 0);
        let a = pool.try_acquire().expect("first unit free");
        let b = pool.try_acquire().expect("second unit free");
        assert_eq!(pool.inflight(), 2);
        assert!(pool.try_acquire().is_none(), "pool is saturated");
        drop(a);
        assert_eq!(pool.inflight(), 1);
        let c = pool.try_acquire().expect("released unit is reusable");
        drop(b);
        drop(c);
        assert_eq!(pool.inflight(), 0);
        assert_eq!(pool.peak_inflight(), 2);
    }

    #[test]
    fn map_batch_drives_the_inflight_gauge() {
        let g = path_graph(40);
        let csr = CsrGraph::from(&g);
        let mut pool = EnginePool::with_capacity_for(4, 40, g.num_edges());
        let queries: Vec<(usize, usize)> = (0..64).map(|i| (i % 40, (i * 3) % 40)).collect();
        let mut out = vec![None; queries.len()];
        pool.map_batch(csr.snapshot(), &queries, &mut out, |e, graph, &(s, t)| {
            e.bounded_distance(graph, VertexId(s), VertexId(t), 100.0)
        });
        // The batch released its units, but the high-water mark recorded the
        // workers it engaged (64 items over 4 workers fans out fully).
        assert_eq!(pool.inflight(), 0);
        assert_eq!(pool.peak_inflight(), 4);
        pool.reset_stats();
        assert_eq!(pool.peak_inflight(), 0);
        // After a reset the mark re-arms from live occupancy.
        let permit = pool.try_acquire().unwrap();
        assert_eq!(pool.inflight(), 1);
        assert_eq!(pool.peak_inflight(), 1);
        drop(permit);
    }

    #[test]
    fn fill_chunked_matches_sequential_at_every_worker_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i + 1).collect();
        for workers in [1, 2, 3, 4, 8, 64] {
            let mut out = vec![0usize; 37];
            fill_chunked(workers, &mut out, |i| i * i + 1);
            assert_eq!(out, expected, "workers = {workers}");
        }
        let mut empty: Vec<usize> = vec![];
        fill_chunked(4, &mut empty, |i| i);
        assert!(empty.is_empty());
    }
}
