//! Minimum spanning trees (Kruskal and Prim) and spanning-forest utilities.
//!
//! The lightness of a spanner is defined relative to the weight of a minimum
//! spanning tree (Observation 2 of the paper notes that the greedy spanner
//! always contains an MST), so MST computation is on the hot path of every
//! experiment.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::CsrGraph;
use crate::graph::{Edge, EdgeId, VertexId, WeightedGraph};
use crate::union_find::UnionFind;

/// A minimum spanning forest: the selected edges plus their total weight.
///
/// For connected graphs this is a spanning tree with `n - 1` edges.
#[derive(Debug, Clone)]
pub struct SpanningForest {
    /// Edge ids (into the source graph) of the forest, in selection order.
    pub edges: Vec<EdgeId>,
    /// Total weight of the selected edges.
    pub total_weight: f64,
    /// Number of connected components the forest spans.
    pub num_components: usize,
}

impl SpanningForest {
    /// Returns `true` if the forest is a single spanning tree of an `n`-vertex
    /// graph.
    pub fn is_spanning_tree(&self, num_vertices: usize) -> bool {
        self.num_components == 1 && self.edges.len() + 1 == num_vertices.max(1)
    }

    /// Materializes the forest as a standalone [`WeightedGraph`] on the same
    /// vertex set as `graph`.
    pub fn to_graph(&self, graph: &WeightedGraph) -> WeightedGraph {
        let mut t = WeightedGraph::empty_like(graph);
        for &id in &self.edges {
            let e = graph.edge(id);
            t.add_edge(e.u, e.v, e.weight);
        }
        t
    }
}

/// Computes a minimum spanning forest with Kruskal's algorithm.
///
/// Ties between equal-weight edges are broken by canonical endpoint order so
/// the result is deterministic.
pub fn kruskal(graph: &WeightedGraph) -> SpanningForest {
    let order = graph.edges_by_weight();
    let mut uf = UnionFind::new(graph.num_vertices());
    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    for id in order {
        let e = graph.edge(id);
        if uf.union(e.u.index(), e.v.index()) {
            edges.push(id);
            total_weight += e.weight;
        }
    }
    SpanningForest {
        edges,
        total_weight,
        num_components: uf.num_sets().max(usize::from(graph.num_vertices() == 0)),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct PrimEntry {
    weight: f64,
    edge: EdgeId,
    to: VertexId,
}

impl Eq for PrimEntry {}

impl Ord for PrimEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .weight
            .total_cmp(&self.weight)
            .then_with(|| other.edge.cmp(&self.edge))
    }
}

impl PartialOrd for PrimEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a minimum spanning forest with Prim's algorithm (lazy deletion).
///
/// Produces a forest of the same total weight as [`kruskal`]; the edge set may
/// differ when the graph has ties. Neighbor scans run on a packed
/// [`CsrGraph`] view so the inner loop reads contiguous memory instead of
/// chasing the per-vertex adjacency vectors.
pub fn prim(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.num_vertices();
    let csr = CsrGraph::from(graph);
    let mut in_tree = vec![false; n];
    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    let mut num_components = 0;
    let mut heap = BinaryHeap::new();

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        num_components += 1;
        in_tree[start] = true;
        for nb in csr.neighbors(VertexId(start)) {
            heap.push(PrimEntry {
                weight: nb.weight,
                edge: nb.edge,
                to: nb.to,
            });
        }
        while let Some(PrimEntry { weight, edge, to }) = heap.pop() {
            if in_tree[to.index()] {
                continue;
            }
            in_tree[to.index()] = true;
            edges.push(edge);
            total_weight += weight;
            for nb in csr.neighbors(to) {
                if !in_tree[nb.to.index()] {
                    heap.push(PrimEntry {
                        weight: nb.weight,
                        edge: nb.edge,
                        to: nb.to,
                    });
                }
            }
        }
    }

    SpanningForest {
        edges,
        total_weight,
        num_components,
    }
}

/// Weight of a minimum spanning forest of `graph`.
pub fn mst_weight(graph: &WeightedGraph) -> f64 {
    kruskal(graph).total_weight
}

/// Returns `true` if `tree_edges` (given as edges of `graph`) form a spanning
/// tree of `graph` — acyclic, connected, touching every vertex.
pub fn is_spanning_tree(graph: &WeightedGraph, tree_edges: &[Edge]) -> bool {
    let n = graph.num_vertices();
    if n == 0 {
        return tree_edges.is_empty();
    }
    if tree_edges.len() != n - 1 {
        return false;
    }
    let mut uf = UnionFind::new(n);
    for e in tree_edges {
        if !uf.union(e.u.index(), e.v.index()) {
            return false; // cycle
        }
    }
    uf.num_sets() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph_with_weights, erdos_renyi_connected};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn square_with_diagonal() -> WeightedGraph {
        // 0-1-2-3-0 cycle of weight 1 each plus a heavy diagonal.
        WeightedGraph::from_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 10.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn kruskal_selects_light_cycle_edges() {
        let g = square_with_diagonal();
        let f = kruskal(&g);
        assert!(f.is_spanning_tree(4));
        assert_eq!(f.edges.len(), 3);
        assert!((f.total_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        let g = square_with_diagonal();
        assert!((prim(&g).total_weight - kruskal(&g).total_weight).abs() < 1e-12);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = WeightedGraph::from_edges(5, [(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        let f = kruskal(&g);
        assert_eq!(f.edges.len(), 2);
        assert_eq!(f.num_components, 3);
        assert!(!f.is_spanning_tree(5));
        let p = prim(&g);
        assert_eq!(p.num_components, 3);
        assert!((p.total_weight - f.total_weight).abs() < 1e-12);
    }

    #[test]
    fn to_graph_materializes_tree() {
        let g = square_with_diagonal();
        let t = kruskal(&g).to_graph(&g);
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.num_edges(), 3);
        assert!(t.is_edge_subgraph_of(&g));
    }

    #[test]
    fn is_spanning_tree_checks() {
        let g = square_with_diagonal();
        let f = kruskal(&g);
        let tree: Vec<Edge> = f.edges.iter().map(|&id| *g.edge(id)).collect();
        assert!(is_spanning_tree(&g, &tree));
        // Dropping an edge breaks it.
        assert!(!is_spanning_tree(&g, &tree[..2]));
        // The first three cycle edges form a path, hence a valid spanning tree.
        let cyc: Vec<Edge> = g.edges()[..4].to_vec();
        assert!(is_spanning_tree(&g, &cyc[..3]));
        // All four cycle edges have the wrong cardinality (and a cycle).
        assert!(!is_spanning_tree(&g, &cyc));
    }

    #[test]
    fn mst_weight_on_empty_and_singleton() {
        let empty = WeightedGraph::new(0);
        assert_eq!(mst_weight(&empty), 0.0);
        let single = WeightedGraph::new(1);
        assert_eq!(mst_weight(&single), 0.0);
        assert!(kruskal(&single).is_spanning_tree(1));
    }

    #[test]
    fn prim_and_kruskal_agree_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in [5, 12, 30] {
            let g = erdos_renyi_connected(n, 0.3, 1.0..10.0, &mut rng);
            let k = kruskal(&g);
            let p = prim(&g);
            assert!(k.is_spanning_tree(n));
            assert!(p.is_spanning_tree(n));
            assert!((k.total_weight - p.total_weight).abs() < 1e-9);
        }
    }

    #[test]
    fn mst_of_complete_graph_with_unit_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = complete_graph_with_weights(6, 1.0..1.0001, &mut rng);
        let f = kruskal(&g);
        assert_eq!(f.edges.len(), 5);
    }
}
