//! CRC-32 (IEEE 802.3, reflected) — the integrity check behind every
//! snapshot section and WAL record.
//!
//! Hand-rolled because the build environment is offline (no `crc32fast`);
//! the table is generated at compile time and the implementation is checked
//! against the standard test vectors (`"123456789"` → `0xCBF4_3926`). The
//! choice of CRC-32 over a cryptographic hash is deliberate: the threat
//! model is torn writes and bit rot, not an adversary, and a 4-byte trailer
//! keeps records compact.

/// The reflected CRC-32 polynomial (IEEE 802.3).
const POLYNOMIAL: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                POLYNOMIAL ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 state, for checksumming several slices without
/// concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
        self
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 of one contiguous slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standard check vectors every CRC-32 (IEEE) implementation must
    /// reproduce.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"length-prefixed, CRC-checksummed, epoch-stamped";
        for split in [0, 1, 7, data.len() / 2, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"bit-flip sensitivity";
        let reference = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8u8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "byte {byte} bit {bit}");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
