//! The write-ahead log: an append-only file of length-prefixed,
//! CRC-checksummed, sequence- and epoch-stamped records.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! magic   8 B   "SPNWAL01"
//! version u32   1
//! record* :     payload_len u32 | seq u64 | epoch u64 | payload
//!               | crc32(seq ‖ epoch ‖ payload)
//! ```
//!
//! `seq` is the owner's monotone record counter (the core crate uses the
//! number of update batches applied before this one, so a snapshot's
//! `wal_seq` cursor picks out exactly the replay suffix). `epoch` stamps the
//! state the record applies **onto** — replay cross-checks it against the
//! recovering spanner and refuses mixed snapshot/WAL histories with a typed
//! error instead of silently applying a batch to the wrong state.
//!
//! Reading ([`read_wal`]) verifies each record and stops at the first
//! invalid one — with length-prefix framing there is no way to resync past
//! a bad record, so the valid prefix is *the* recoverable content. The
//! outcome reports the torn tail (if any) and the byte offset it starts at;
//! [`WalWriter::open_for_append`] truncates that tail so the next append
//! produces a clean log again.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::checksum::Crc32;
use crate::error::PersistError;
use crate::format::{ByteReader, ByteWriter};

/// The WAL file magic.
pub const WAL_MAGIC: [u8; 8] = *b"SPNWAL01";
/// The newest WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Canonical name of the WAL file inside a store directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Bytes of the file header (magic + version).
const HEADER_LEN: u64 = 12;
/// Bytes of a record's fixed part (len + seq + epoch prefix, crc suffix).
const RECORD_OVERHEAD: usize = 4 + 8 + 8 + 4;

/// One verified WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The owner's monotone record counter.
    pub seq: u64,
    /// The epoch of the state this record applies onto.
    pub epoch: u64,
    /// The owner-encoded record body (an update batch, for the core crate).
    pub payload: Vec<u8>,
}

/// What [`read_wal`] found: the verified prefix, plus a description of the
/// torn tail if reading stopped before the end of the file.
#[derive(Debug)]
pub struct WalContents {
    /// Every record of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header included) — the offset a
    /// reattaching writer truncates to.
    pub valid_len: u64,
    /// Why reading stopped early, if it did: the error the first invalid
    /// record failed with. `None` when the whole file verified.
    pub torn_tail: Option<String>,
}

/// Encodes one record to its on-disk bytes.
fn encode_record(seq: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = ByteWriter::with_capacity(RECORD_OVERHEAD + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_u64(seq);
    out.put_u64(epoch);
    out.put_bytes(payload);
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes())
        .update(&epoch.to_le_bytes())
        .update(payload);
    out.put_u32(crc.finish());
    out.into_inner()
}

/// An open WAL with its append cursor at the end of the valid prefix.
///
/// Every [`WalWriter::append`] writes one complete record and fsyncs it
/// before returning — write-ahead means the record is durable *before* the
/// in-memory state it describes mutates.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (header only), failing if one exists.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] — including `AlreadyExists` when a file is
    /// already there (a store directory owns its WAL; overwriting one would
    /// silently discard history).
    pub fn create(path: &Path) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| PersistError::io(path, e))?;
        let mut header = ByteWriter::with_capacity(HEADER_LEN as usize);
        header.put_bytes(&WAL_MAGIC);
        header.put_u32(WAL_VERSION);
        file.write_all(header.as_slice())
            .and_then(|_| file.sync_all())
            .map_err(|e| PersistError::io(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing WAL for appending, truncating it to
    /// `valid_len` (from [`read_wal`]) first so a torn tail from a crash
    /// mid-append is physically dropped before new records go in.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] for any failing filesystem operation.
    pub fn open_for_append(path: &Path, valid_len: u64) -> Result<Self, PersistError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io(path, e))?;
        file.set_len(valid_len)
            .and_then(|_| file.sync_all())
            .map_err(|e| PersistError::io(path, e))?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
        };
        use std::io::Seek;
        writer
            .file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| PersistError::io(path, e))?;
        Ok(writer)
    }

    /// Appends one record and fsyncs it — on return the record is durable.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the write or sync fails; the caller must
    /// treat the log as not containing the record (the standard
    /// write-ahead contract: do not mutate state the log did not accept).
    pub fn append(&mut self, seq: u64, epoch: u64, payload: &[u8]) -> Result<(), PersistError> {
        let bytes = encode_record(seq, epoch, payload);
        self.file
            .write_all(&bytes)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| PersistError::io(&self.path, e))
    }

    /// The WAL's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads and verifies a WAL, returning the valid prefix and where it ends.
///
/// # Errors
///
/// [`PersistError::Io`] when the file cannot be read, and
/// [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`] /
/// [`PersistError::Truncated`] when the *header* is wrong — a file that is
/// not a WAL at all. Record-level damage is **not** an error: it terminates
/// the valid prefix and is reported via [`WalContents::torn_tail`], because
/// a torn final record is the expected shape of a crash mid-append.
pub fn read_wal(path: &Path) -> Result<WalContents, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PersistError::io(path, e))?;
    let mut r = ByteReader::new(&bytes);
    let magic = r.take(8).ok_or_else(|| PersistError::Truncated {
        path: path.to_path_buf(),
        context: "wal magic",
    })?;
    if magic != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            path: path.to_path_buf(),
            expected: WAL_MAGIC,
            found: magic.try_into().unwrap(),
        });
    }
    let version = r.u32().ok_or_else(|| PersistError::Truncated {
        path: path.to_path_buf(),
        context: "wal version",
    })?;
    if version != WAL_VERSION {
        return Err(PersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
            supported: WAL_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut valid_len = HEADER_LEN;
    let mut torn_tail = None;
    while !r.is_empty() {
        match read_record(&mut r, path) {
            Ok(record) => {
                valid_len = (bytes.len() - r.remaining()) as u64;
                records.push(record);
            }
            Err(e) => {
                torn_tail = Some(e.to_string());
                break;
            }
        }
    }
    Ok(WalContents {
        records,
        valid_len,
        torn_tail,
    })
}

fn read_record(r: &mut ByteReader<'_>, path: &Path) -> Result<WalRecord, PersistError> {
    let truncated = || PersistError::Truncated {
        path: path.to_path_buf(),
        context: "wal record",
    };
    let len = r.u32().ok_or_else(truncated)? as usize;
    let seq = r.u64().ok_or_else(truncated)?;
    let epoch = r.u64().ok_or_else(truncated)?;
    if r.remaining() < len.saturating_add(4) {
        return Err(truncated());
    }
    let payload = r.take(len).ok_or_else(truncated)?;
    let stored = r.u32().ok_or_else(truncated)?;
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes())
        .update(&epoch.to_le_bytes())
        .update(payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            path: path.to_path_buf(),
            context: "wal record",
            stored,
            computed,
        });
    }
    Ok(WalRecord {
        seq,
        epoch,
        payload: payload.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("spanner-store-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn append_read_round_trips_bit_identically() {
        let path = temp_wal("roundtrip.log");
        let mut w = WalWriter::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = vec![b"".to_vec(), b"batch-1".to_vec(), vec![0xFF; 300]];
        for (i, p) in payloads.iter().enumerate() {
            w.append(i as u64, 10 + i as u64, p).unwrap();
        }
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail.is_none());
        assert_eq!(contents.records.len(), 3);
        for (i, rec) in contents.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.epoch, 10 + i as u64);
            assert_eq!(&rec.payload, &payloads[i]);
        }
        assert_eq!(
            contents.valid_len,
            fs::metadata(&path).unwrap().len(),
            "a clean log is valid to its end"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_refuses_to_overwrite_and_header_damage_is_typed() {
        let path = temp_wal("header.log");
        WalWriter::create(&path).unwrap();
        assert!(matches!(
            WalWriter::create(&path),
            Err(PersistError::Io { .. })
        ));
        fs::write(&path, b"NOTAWAL!....").unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(PersistError::BadMagic { .. })
        ));
        fs::write(&path, &WAL_MAGIC[..5]).unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(PersistError::Truncated { .. })
        ));
        let mut bad_version = WAL_MAGIC.to_vec();
        bad_version.extend_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bad_version).unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(PersistError::UnsupportedVersion { .. })
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_stop_reading_and_truncate_on_reattach() {
        let path = temp_wal("torn.log");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(0, 0, b"kept-0").unwrap();
        w.append(1, 1, b"kept-1").unwrap();
        w.append(2, 2, b"torn-away").unwrap();
        drop(w);
        let clean = fs::read(&path).unwrap();
        // Cut anywhere strictly inside the final record: the first two
        // records survive and the partial third is reported as torn. (A cut
        // of the *whole* record leaves a clean shorter log — not torn.)
        for cut in 1..(b"torn-away".len() + RECORD_OVERHEAD) {
            let bytes = &clean[..clean.len() - cut];
            fs::write(&path, bytes).unwrap();
            let contents = read_wal(&path).unwrap();
            assert_eq!(contents.records.len(), 2, "cut {cut}");
            assert!(contents.torn_tail.is_some(), "cut {cut}");
            assert!(contents.valid_len <= bytes.len() as u64);
        }
        // Reattach: the torn tail is physically dropped, appends resume.
        let contents = read_wal(&path).unwrap();
        let mut w = WalWriter::open_for_append(&path, contents.valid_len).unwrap();
        w.append(2, 2, b"rewritten").unwrap();
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail.is_none());
        assert_eq!(
            contents
                .records
                .iter()
                .map(|r| r.payload.as_slice())
                .collect::<Vec<_>>(),
            vec![&b"kept-0"[..], b"kept-1", b"rewritten"]
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flips_terminate_the_valid_prefix() {
        let path = temp_wal("flips.log");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(0, 0, b"first").unwrap();
        w.append(1, 1, b"second").unwrap();
        drop(w);
        let clean = fs::read(&path).unwrap();
        // Flip every byte of the first record: zero records survive. (A
        // flip in its length prefix may orphan the second record too —
        // framing cannot resync — so only prefix-validity is guaranteed.)
        let first_record_len = b"first".len() + RECORD_OVERHEAD;
        for i in HEADER_LEN as usize..HEADER_LEN as usize + first_record_len {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x20;
            fs::write(&path, &bytes).unwrap();
            let contents = read_wal(&path).unwrap();
            assert!(contents.records.is_empty(), "byte {i}");
            assert!(contents.torn_tail.is_some(), "byte {i}");
        }
        // Flip in the second record: the first survives.
        let mut bytes = clean.clone();
        let i = HEADER_LEN as usize + first_record_len + 21;
        bytes[i] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].payload, b"first");
        fs::remove_file(&path).unwrap();
    }
}
