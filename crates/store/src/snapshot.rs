//! The snapshot file format: one epoch-stamped, checksummed, atomic file
//! holding everything needed to reconstruct a live spanner's graphs
//! bit-identically.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! magic   8 B   "SPANSNP1"
//! version u32   1
//! ROOT    section   epoch u64 | wal_seq u64
//! META    section   opaque owner-defined bytes (stretch, stats, provenance)
//! SPGR    section   GraphImage of the live spanner
//! ORGR    section   GraphImage of the original-graph mirror
//! END!    section   empty (proves the file was written to completion)
//! ```
//!
//! Each section is framed `tag u32 | len u64 | payload | crc32(payload)`
//! (see [`crate::format`]). A [`GraphImage`] payload is flat fixed-width
//! little-endian arrays — `us[] | vs[] | weight_bits[] | tombstone[]` after
//! three scalar counters — so every array's offset is computable from the
//! header alone (mmap-friendly; nothing needs parsing to be addressed).
//! Weights are stored as raw `f64` bit patterns: a snapshot round trip
//! reproduces edge ids, weights and epoch stamps **bit-identically**,
//! including tombstoned slots, so edge ids keep their meaning across a
//! save/load cycle.
//!
//! Snapshots are written atomically ([`Snapshot::write_atomic`]): the bytes
//! go to a `.tmp` sibling, are fsynced, and are renamed into place — a crash
//! mid-write leaves either the old file or a `.tmp` orphan, never a
//! half-written snapshot under the real name.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use spanner_graph::{CsrGraph, VertexId};

use crate::error::PersistError;
use crate::format::{expect_section, write_section, ByteReader, ByteWriter};

/// The snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SPANSNP1";
/// The newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Extension of snapshot files in a store directory.
pub const SNAPSHOT_EXTENSION: &str = "snap";

const TAG_ROOT: u32 = u32::from_le_bytes(*b"ROOT");
const TAG_META: u32 = u32::from_le_bytes(*b"META");
const TAG_SPANNER: u32 = u32::from_le_bytes(*b"SPGR");
const TAG_ORIGINAL: u32 = u32::from_le_bytes(*b"ORGR");
const TAG_END: u32 = u32::from_le_bytes(*b"END!");

/// A [`CsrGraph`] flattened for storage: every ground-truth slot (dead ones
/// included, so edge ids survive) as parallel fixed-width arrays, plus the
/// tombstone bitmap and the epoch stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphImage {
    /// Vertex count.
    pub num_vertices: u64,
    /// The graph's epoch at capture.
    pub epoch: u64,
    /// Source endpoint per edge slot, in edge-id order.
    pub us: Vec<u32>,
    /// Target endpoint per edge slot.
    pub vs: Vec<u32>,
    /// Weight per edge slot, as raw `f64` bits (bit-identical round trip).
    pub weight_bits: Vec<u64>,
    /// Tombstone bitmap over edge slots (`ceil(slots / 64)` words); a set
    /// bit marks a dead slot.
    pub tombstone: Vec<u64>,
}

impl GraphImage {
    /// Flattens a graph, preserving dead slots and the epoch.
    pub fn capture(graph: &CsrGraph) -> Self {
        let slots = graph.edge_id_bound();
        let mut image = GraphImage {
            num_vertices: graph.num_vertices() as u64,
            epoch: graph.epoch(),
            us: Vec::with_capacity(slots),
            vs: Vec::with_capacity(slots),
            weight_bits: Vec::with_capacity(slots),
            tombstone: vec![0u64; slots.div_ceil(64)],
        };
        for id in 0..slots {
            let (u, v, w) = graph.edge(spanner_graph::EdgeId(id));
            image.us.push(u.index() as u32);
            image.vs.push(v.index() as u32);
            image.weight_bits.push(w.to_bits());
            if !graph.is_edge_live(spanner_graph::EdgeId(id)) {
                image.tombstone[id / 64] |= 1 << (id % 64);
            }
        }
        image
    }

    /// Reconstructs the graph **bit-identically**: same vertex count, same
    /// edge ids (dead slots re-tombstoned), same weight bits, same epoch.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] for counts no real graph can have (vertex
    /// count overflowing `u32`, mismatched array lengths, a wrong-sized
    /// bitmap) and [`PersistError::InvalidGraph`] when a record fails
    /// graph-level validation — decoding never panics.
    pub fn restore(&self, path: &Path) -> Result<CsrGraph, PersistError> {
        let corrupt = |detail: String| PersistError::Corrupt {
            path: path.to_path_buf(),
            context: "graph image",
            detail,
        };
        let num_vertices = usize::try_from(self.num_vertices)
            .ok()
            .filter(|&n| n < u32::MAX as usize)
            .ok_or_else(|| corrupt(format!("vertex count {} overflows u32", self.num_vertices)))?;
        let slots = self.us.len();
        if self.vs.len() != slots || self.weight_bits.len() != slots {
            return Err(corrupt(format!(
                "mismatched slot arrays: {} us, {} vs, {} weights",
                slots,
                self.vs.len(),
                self.weight_bits.len()
            )));
        }
        if self.tombstone.len() != slots.div_ceil(64) {
            return Err(corrupt(format!(
                "tombstone bitmap has {} words for {} slots",
                self.tombstone.len(),
                slots
            )));
        }
        if 2 * slots + 2 > u32::MAX as usize {
            return Err(corrupt(format!("{slots} edge slots overflow u32 ids")));
        }
        let records = (0..slots).map(|id| {
            let live = self.tombstone[id / 64] >> (id % 64) & 1 == 0;
            (
                VertexId(self.us[id] as usize),
                VertexId(self.vs[id] as usize),
                f64::from_bits(self.weight_bits[id]),
                live,
            )
        });
        CsrGraph::from_parts(num_vertices, self.epoch, records).map_err(|source| {
            PersistError::InvalidGraph {
                path: path.to_path_buf(),
                source,
            }
        })
    }

    fn encode(&self, out: &mut ByteWriter) {
        out.put_u64(self.num_vertices);
        out.put_u64(self.epoch);
        out.put_u64(self.us.len() as u64);
        for &u in &self.us {
            out.put_u32(u);
        }
        for &v in &self.vs {
            out.put_u32(v);
        }
        for &w in &self.weight_bits {
            out.put_u64(w);
        }
        for &word in &self.tombstone {
            out.put_u64(word);
        }
    }

    fn decode(payload: &[u8], path: &Path, context: &'static str) -> Result<Self, PersistError> {
        let truncated = || PersistError::Truncated {
            path: path.to_path_buf(),
            context,
        };
        let mut r = ByteReader::new(payload);
        let num_vertices = r.u64().ok_or_else(truncated)?;
        let epoch = r.u64().ok_or_else(truncated)?;
        let slots = r.u64().ok_or_else(truncated)?;
        let slots = usize::try_from(slots)
            .ok()
            // Each slot needs 4 + 4 + 8 payload bytes; an overclaimed count
            // is truncation (the section promises data it does not hold).
            .filter(|&s| s <= r.remaining() / 16)
            .ok_or_else(truncated)?;
        let mut image = GraphImage {
            num_vertices,
            epoch,
            us: Vec::with_capacity(slots),
            vs: Vec::with_capacity(slots),
            weight_bits: Vec::with_capacity(slots),
            tombstone: Vec::with_capacity(slots.div_ceil(64)),
        };
        for _ in 0..slots {
            image.us.push(r.u32().ok_or_else(truncated)?);
        }
        for _ in 0..slots {
            image.vs.push(r.u32().ok_or_else(truncated)?);
        }
        for _ in 0..slots {
            image.weight_bits.push(r.u64().ok_or_else(truncated)?);
        }
        for _ in 0..slots.div_ceil(64) {
            image.tombstone.push(r.u64().ok_or_else(truncated)?);
        }
        if !r.is_empty() {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                context,
                detail: format!("{} trailing bytes after the bitmap", r.remaining()),
            });
        }
        Ok(image)
    }
}

/// One complete snapshot: the replay cursor, owner metadata, and both graph
/// images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The spanner's epoch at capture (also stamped in
    /// [`Snapshot::spanner`]; duplicated in the root for cheap inspection).
    pub epoch: u64,
    /// The WAL replay cursor: how many update batches were already applied
    /// when this snapshot was taken. Recovery replays records with
    /// `seq >= wal_seq`.
    pub wal_seq: u64,
    /// Opaque owner-defined metadata (the core crate stores stretch,
    /// cumulative statistics and provenance here).
    pub meta: Vec<u8>,
    /// The live spanner.
    pub spanner: GraphImage,
    /// The original-graph mirror the stretch invariant is measured against.
    pub original: GraphImage,
}

impl Snapshot {
    /// Serializes the snapshot to its on-disk byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut root = ByteWriter::new();
        root.put_u64(self.epoch);
        root.put_u64(self.wal_seq);
        let mut spanner = ByteWriter::new();
        self.spanner.encode(&mut spanner);
        let mut original = ByteWriter::new();
        self.original.encode(&mut original);

        let mut out =
            ByteWriter::with_capacity(64 + self.meta.len() + spanner.len() + original.len());
        out.put_bytes(&SNAPSHOT_MAGIC);
        out.put_u32(SNAPSHOT_VERSION);
        write_section(&mut out, TAG_ROOT, root.as_slice());
        write_section(&mut out, TAG_META, &self.meta);
        write_section(&mut out, TAG_SPANNER, spanner.as_slice());
        write_section(&mut out, TAG_ORIGINAL, original.as_slice());
        write_section(&mut out, TAG_END, &[]);
        out.into_inner()
    }

    /// Decodes and fully verifies a snapshot from its byte layout.
    ///
    /// # Errors
    ///
    /// Typed [`PersistError`]s for every way the bytes can be wrong: magic,
    /// version, truncation anywhere, per-section checksum mismatches,
    /// structural corruption. Never panics.
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8).ok_or_else(|| PersistError::Truncated {
            path: path.to_path_buf(),
            context: "snapshot magic",
        })?;
        if magic != SNAPSHOT_MAGIC {
            return Err(PersistError::BadMagic {
                path: path.to_path_buf(),
                expected: SNAPSHOT_MAGIC,
                found: magic.try_into().unwrap(),
            });
        }
        let version = r.u32().ok_or_else(|| PersistError::Truncated {
            path: path.to_path_buf(),
            context: "snapshot version",
        })?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                path: path.to_path_buf(),
                version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let root = expect_section(&mut r, path, "snapshot root", TAG_ROOT)?;
        let mut root_r = ByteReader::new(root.payload);
        let (epoch, wal_seq) = match (root_r.u64(), root_r.u64()) {
            (Some(e), Some(s)) if root_r.is_empty() => (e, s),
            _ => {
                return Err(PersistError::Corrupt {
                    path: path.to_path_buf(),
                    context: "snapshot root",
                    detail: format!("root payload is {} bytes (expected 16)", root.payload.len()),
                })
            }
        };
        let meta = expect_section(&mut r, path, "snapshot meta", TAG_META)?
            .payload
            .to_vec();
        let spanner_section = expect_section(&mut r, path, "spanner image", TAG_SPANNER)?;
        let spanner = GraphImage::decode(spanner_section.payload, path, "spanner image")?;
        let original_section = expect_section(&mut r, path, "original image", TAG_ORIGINAL)?;
        let original = GraphImage::decode(original_section.payload, path, "original image")?;
        let end = expect_section(&mut r, path, "snapshot end marker", TAG_END)?;
        if !end.payload.is_empty() || !r.is_empty() {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                context: "snapshot end marker",
                detail: "trailing bytes after the end marker".into(),
            });
        }
        Ok(Snapshot {
            epoch,
            wal_seq,
            meta,
            spanner,
            original,
        })
    }

    /// Writes the snapshot atomically: encode → `.tmp` sibling → fsync →
    /// rename into place (→ best-effort directory fsync). A crash at any
    /// point leaves either the previous file or a `.tmp` orphan under a
    /// different name — never a torn snapshot under `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] for any failing filesystem operation.
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let bytes = self.encode();
        let tmp = temp_sibling(path);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            Ok(())
        };
        write().map_err(|e| PersistError::io(&tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| PersistError::io(path, e))?;
        // Durability of the rename itself: fsync the parent directory where
        // the platform allows opening one (best-effort elsewhere).
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and fully verifies a snapshot file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure plus everything
    /// [`Snapshot::decode`] returns.
    pub fn read(path: &Path) -> Result<Self, PersistError> {
        let bytes = fs::read(path).map_err(|e| PersistError::io(path, e))?;
        Snapshot::decode(&bytes, path)
    }
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The canonical file name of a snapshot at WAL cursor `seq` and spanner
/// epoch `epoch`. Zero-padded decimals, so lexicographic file order equals
/// numeric recency order.
pub fn snapshot_file_name(seq: u64, epoch: u64) -> String {
    format!("snapshot-{seq:020}-{epoch:020}.{SNAPSHOT_EXTENSION}")
}

/// Parses a file name produced by [`snapshot_file_name`] back into
/// `(seq, epoch)`; `None` for anything else.
pub fn parse_snapshot_file_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("snapshot-")?;
    let rest = rest.strip_suffix(".snap")?;
    let (seq, epoch) = rest.split_once('-')?;
    if seq.len() != 20 || epoch.len() != 20 {
        return None;
    }
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

/// One snapshot file found in a store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCandidate {
    /// Full path of the file.
    pub path: PathBuf,
    /// WAL cursor parsed from the name.
    pub seq: u64,
    /// Spanner epoch parsed from the name.
    pub epoch: u64,
}

/// Lists the snapshot files in `dir`, **newest first** (by WAL cursor, then
/// epoch). Only well-formed names participate; recovery walks this list and
/// falls back past candidates whose contents fail verification.
///
/// # Errors
///
/// [`PersistError::Io`] when the directory cannot be read.
pub fn list_snapshots(dir: &Path) -> Result<Vec<SnapshotCandidate>, PersistError> {
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((seq, epoch)) = parse_snapshot_file_name(name) {
            found.push(SnapshotCandidate {
                path: entry.path(),
                seq,
                epoch,
            });
        }
    }
    found.sort_by_key(|c| std::cmp::Reverse((c.seq, c.epoch)));
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::EdgeId;

    fn sample_graph() -> CsrGraph {
        let mut g = CsrGraph::new(5);
        g.append_edge(VertexId(0), VertexId(1), 1.25);
        g.append_edge(VertexId(1), VertexId(2), 0.5);
        g.append_edge(VertexId(2), VertexId(3), 1.0e-9);
        g.append_edge(VertexId(3), VertexId(4), 7.75);
        g.remove_edge(EdgeId(1)).unwrap();
        g
    }

    fn sample_snapshot() -> Snapshot {
        let g = sample_graph();
        let mut spanner = g.clone();
        spanner.remove_edge(EdgeId(3)).unwrap();
        Snapshot {
            epoch: spanner.epoch(),
            wal_seq: 3,
            meta: b"owner metadata".to_vec(),
            spanner: GraphImage::capture(&spanner),
            original: GraphImage::capture(&g),
        }
    }

    #[test]
    fn graph_image_round_trips_bit_identically() {
        let g = sample_graph();
        let image = GraphImage::capture(&g);
        let restored = image.restore(Path::new("/test")).unwrap();
        assert_eq!(restored.num_vertices(), g.num_vertices());
        assert_eq!(restored.epoch(), g.epoch());
        assert_eq!(restored.edge_id_bound(), g.edge_id_bound());
        assert_eq!(restored.num_edges(), g.num_edges());
        for id in 0..g.edge_id_bound() {
            let id = EdgeId(id);
            assert_eq!(restored.is_edge_live(id), g.is_edge_live(id));
            let (u, v, w) = g.edge(id);
            let (ru, rv, rw) = restored.edge(id);
            assert_eq!((ru, rv), (u, v));
            assert_eq!(rw.to_bits(), w.to_bits());
        }
        // And capture of the restoration is the identical image.
        assert_eq!(GraphImage::capture(&restored), image);
    }

    #[test]
    fn snapshot_file_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("spanner-store-snapshot-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(snapshot_file_name(3, 6));
        let snap = sample_snapshot();
        snap.write_atomic(&path).unwrap();
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back, snap);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_and_flip_is_a_typed_error() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let path = Path::new("/test/snap");
        // Truncation at every prefix length: typed error, never panic,
        // never a silent success.
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut], path).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::ChecksumMismatch { .. }
                        | PersistError::Corrupt { .. }
                ),
                "cut {cut}: unexpected {err}"
            );
        }
        // A flip in every byte: typed error (magic/version flips land in
        // BadMagic/UnsupportedVersion, payload flips in ChecksumMismatch,
        // framing flips in Truncated/Corrupt).
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0x10;
            assert!(
                Snapshot::decode(&copy, path).is_err(),
                "flip at byte {i} went unnoticed"
            );
            copy[i] ^= 0x10;
        }
    }

    #[test]
    fn restore_rejects_structural_corruption() {
        let g = sample_graph();
        let path = Path::new("/test");
        let mut image = GraphImage::capture(&g);
        image.vs.pop();
        assert!(matches!(
            image.restore(path),
            Err(PersistError::Corrupt { .. })
        ));
        let mut image = GraphImage::capture(&g);
        image.tombstone.push(0);
        assert!(matches!(
            image.restore(path),
            Err(PersistError::Corrupt { .. })
        ));
        let mut image = GraphImage::capture(&g);
        image.num_vertices = u64::MAX;
        assert!(matches!(
            image.restore(path),
            Err(PersistError::Corrupt { .. })
        ));
        // A weight no append could have produced is graph-level invalid.
        let mut image = GraphImage::capture(&g);
        image.weight_bits[0] = f64::NAN.to_bits();
        assert!(matches!(
            image.restore(path),
            Err(PersistError::InvalidGraph { .. })
        ));
        let mut image = GraphImage::capture(&g);
        image.us[0] = 99;
        assert!(matches!(
            image.restore(path),
            Err(PersistError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn file_names_sort_newest_first_and_ignore_strangers() {
        assert_eq!(
            parse_snapshot_file_name(&snapshot_file_name(7, 42)),
            Some((7, 42))
        );
        for bad in [
            "snapshot-1-2.snap",
            "snapshot-00000000000000000007-0000000000000000000x.snap",
            "snapshot-00000000000000000007.snap",
            "wal.log",
            "snapshot-00000000000000000007-00000000000000000042.tmp",
        ] {
            assert_eq!(parse_snapshot_file_name(bad), None, "{bad}");
        }
        let dir = std::env::temp_dir().join("spanner-store-snapshot-listing");
        fs::create_dir_all(&dir).unwrap();
        for (seq, epoch) in [(1u64, 5u64), (3, 9), (2, 7)] {
            fs::write(dir.join(snapshot_file_name(seq, epoch)), b"x").unwrap();
        }
        fs::write(dir.join("wal.log"), b"x").unwrap();
        let listed = list_snapshots(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|c| (c.seq, c.epoch)).collect::<Vec<_>>(),
            vec![(3, 9), (2, 7), (1, 5)],
            "newest first"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
