//! The typed error vocabulary of the persistence layer.
//!
//! Everything a corrupt, truncated or mismatched store can do surfaces as a
//! [`PersistError`] — decoding **never panics**, whatever the bytes. The
//! variants are deliberately fine-grained so recovery policy can branch on
//! them: a [`PersistError::ChecksumMismatch`] on one snapshot sends recovery
//! to the next-newest candidate, while a [`PersistError::MixedEpoch`] means
//! the snapshot and WAL disagree about history and no amount of fallback can
//! reconcile them.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

use spanner_graph::GraphError;

/// Errors produced while writing, reading or replaying persistent state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The operating-system error.
        source: io::Error,
    },
    /// The file does not start with the expected magic bytes — it is not a
    /// snapshot/WAL file (or its head was overwritten).
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// The magic the format requires.
        expected: [u8; 8],
        /// What the file actually starts with.
        found: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version stamped in the file.
        version: u32,
        /// The newest version this build reads.
        supported: u32,
    },
    /// The file ended in the middle of a structure it promised to contain.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A checksum over stored bytes did not match — bit rot, a torn write,
    /// or manual tampering.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// The section or record whose checksum failed.
        context: &'static str,
        /// The checksum stored alongside the data.
        stored: u32,
        /// The checksum recomputed from the data.
        computed: u32,
    },
    /// The bytes decoded structurally but violate an invariant of the
    /// format (impossible counts, non-canonical values, …).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The structure whose invariant failed.
        context: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// A stored graph failed graph-level validation on reconstruction — the
    /// records could never have been produced by a valid graph.
    InvalidGraph {
        /// The offending file.
        path: PathBuf,
        /// The graph-level validation error.
        source: GraphError,
    },
    /// A WAL record's epoch stamp disagrees with the state it would replay
    /// onto: the snapshot and the log describe different histories (e.g. a
    /// snapshot paired with another run's WAL).
    MixedEpoch {
        /// The sequence number of the offending record.
        seq: u64,
        /// The epoch the record was stamped with at append time.
        wal_epoch: u64,
        /// The epoch the recovering spanner is actually at.
        expected_epoch: u64,
    },
    /// The WAL is missing records between the snapshot's cursor and its
    /// first usable record — replay cannot bridge the gap.
    WalSequenceGap {
        /// The first sequence number replay needed.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// No snapshot in the directory decoded cleanly; recovery has nothing
    /// to start from.
    NoValidSnapshot {
        /// The store directory searched.
        dir: PathBuf,
        /// How many snapshot candidates were found (and rejected).
        candidates: usize,
    },
    /// The target directory already holds a store — refusing to overwrite
    /// it; recover from it (or point at a fresh directory) instead.
    StoreExists {
        /// The occupied directory.
        dir: PathBuf,
    },
}

impl PersistError {
    /// Convenience constructor for [`PersistError::Io`].
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        PersistError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            PersistError::BadMagic {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} is not a store file: magic {found:02x?} (expected {expected:02x?})",
                path.display()
            ),
            PersistError::UnsupportedVersion {
                path,
                version,
                supported,
            } => write!(
                f,
                "{} has format version {version}; this build reads up to {supported}",
                path.display()
            ),
            PersistError::Truncated { path, context } => {
                write!(f, "{} is truncated inside {context}", path.display())
            }
            PersistError::ChecksumMismatch {
                path,
                context,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {} ({context}): stored {stored:#010x}, computed \
                 {computed:#010x}",
                path.display()
            ),
            PersistError::Corrupt {
                path,
                context,
                detail,
            } => write!(f, "corrupt {context} in {}: {detail}", path.display()),
            PersistError::InvalidGraph { path, source } => write!(
                f,
                "stored graph in {} fails validation: {source}",
                path.display()
            ),
            PersistError::MixedEpoch {
                seq,
                wal_epoch,
                expected_epoch,
            } => write!(
                f,
                "wal record {seq} is stamped epoch {wal_epoch} but the recovering spanner is at \
                 epoch {expected_epoch}: snapshot and log describe different histories"
            ),
            PersistError::WalSequenceGap { expected, found } => write!(
                f,
                "wal sequence gap: replay needed record {expected} but found {found}"
            ),
            PersistError::NoValidSnapshot { dir, candidates } => write!(
                f,
                "no valid snapshot in {} ({candidates} candidate file(s), all rejected)",
                dir.display()
            ),
            PersistError::StoreExists { dir } => write!(
                f,
                "{} already holds a store; recover from it or use a fresh directory",
                dir.display()
            ),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::InvalidGraph { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn display_is_nonempty_and_sources_are_wired() {
        let errors: Vec<PersistError> = vec![
            PersistError::io("/tmp/x", io::Error::new(io::ErrorKind::NotFound, "gone")),
            PersistError::BadMagic {
                path: "/tmp/x".into(),
                expected: *b"SPANSNP1",
                found: *b"GARBAGE!",
            },
            PersistError::UnsupportedVersion {
                path: "/tmp/x".into(),
                version: 9,
                supported: 1,
            },
            PersistError::Truncated {
                path: "/tmp/x".into(),
                context: "graph image",
            },
            PersistError::ChecksumMismatch {
                path: "/tmp/x".into(),
                context: "wal record",
                stored: 1,
                computed: 2,
            },
            PersistError::Corrupt {
                path: "/tmp/x".into(),
                context: "snapshot root",
                detail: "tombstone words overflow".into(),
            },
            PersistError::InvalidGraph {
                path: "/tmp/x".into(),
                source: GraphError::SelfLoop { vertex: 3 },
            },
            PersistError::MixedEpoch {
                seq: 4,
                wal_epoch: 7,
                expected_epoch: 9,
            },
            PersistError::WalSequenceGap {
                expected: 3,
                found: 5,
            },
            PersistError::NoValidSnapshot {
                dir: "/tmp/store".into(),
                candidates: 2,
            },
            PersistError::StoreExists {
                dir: "/tmp/store".into(),
            },
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(errors[0].source().is_some(), "Io wires its source");
        assert!(
            errors[6].source().is_some(),
            "InvalidGraph wires its source"
        );
        assert!(errors[1].source().is_none());
        let _ = Path::new("/tmp");
    }
}
