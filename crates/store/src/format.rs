//! Byte-level building blocks shared by the snapshot and WAL formats.
//!
//! Everything on disk is **little-endian, fixed-width, and flat**: `u32` /
//! `u64` scalars, `f64` weights stored as raw bit patterns (so a round trip
//! is bit-identical, `NaN` payloads and negative zeros included — though the
//! graph layer forbids those from ever entering), and arrays as contiguous
//! runs of fixed-width elements. Flat fixed-width layout is what makes the
//! snapshot mmap-friendly: a reader can compute every array's offset from
//! the section header alone.
//!
//! Sections ([`write_section`] / [`Section`]) frame variable-length payloads
//! as `tag u32 | len u64 | payload | crc32(payload)`, so a reader can verify
//! integrity section by section and a truncation or bit flip anywhere is a
//! typed [`PersistError`], never a panic.

use std::path::Path;

use crate::checksum::crc32;
use crate::error::PersistError;

/// An append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (bit-identical round trip).
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// The buffer written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked little-endian cursor over a byte slice. Every read
/// returns `None` past the end — callers convert that into
/// [`PersistError::Truncated`] with their own context.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` when the cursor consumed everything.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, if present.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its raw bit pattern.
    pub fn f64_bits(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// Appends one framed section: `tag | len | payload | crc32(payload)`.
pub fn write_section(out: &mut ByteWriter, tag: u32, payload: &[u8]) {
    out.put_u32(tag);
    out.put_u64(payload.len() as u64);
    out.put_bytes(payload);
    out.put_u32(crc32(payload));
}

/// One decoded section.
#[derive(Debug)]
pub struct Section<'a> {
    /// The section's tag.
    pub tag: u32,
    /// The verified payload.
    pub payload: &'a [u8],
}

/// Reads the next framed section, verifying its checksum.
///
/// # Errors
///
/// [`PersistError::Truncated`] when the header, payload or trailer run past
/// the end of the buffer (a stored length larger than the remaining bytes is
/// truncation by definition — the file promises data it does not contain),
/// and [`PersistError::ChecksumMismatch`] when the payload fails its CRC.
pub fn read_section<'a>(
    reader: &mut ByteReader<'a>,
    path: &Path,
    context: &'static str,
) -> Result<Section<'a>, PersistError> {
    let truncated = || PersistError::Truncated {
        path: path.to_path_buf(),
        context,
    };
    let tag = reader.u32().ok_or_else(truncated)?;
    let len = reader.u64().ok_or_else(truncated)?;
    let len = usize::try_from(len).map_err(|_| truncated())?;
    if reader.remaining() < len.saturating_add(4) {
        return Err(truncated());
    }
    let payload = reader.take(len).ok_or_else(truncated)?;
    let stored = reader.u32().ok_or_else(truncated)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            path: path.to_path_buf(),
            context,
            stored,
            computed,
        });
    }
    Ok(Section { tag, payload })
}

/// Reads the next section and checks its tag.
///
/// # Errors
///
/// Everything [`read_section`] returns, plus [`PersistError::Corrupt`] when
/// the tag is not the expected one.
pub fn expect_section<'a>(
    reader: &mut ByteReader<'a>,
    path: &Path,
    context: &'static str,
    expected_tag: u32,
) -> Result<Section<'a>, PersistError> {
    let section = read_section(reader, path, context)?;
    if section.tag != expected_tag {
        return Err(PersistError::Corrupt {
            path: path.to_path_buf(),
            context,
            detail: format!(
                "unexpected section tag {:#010x} (expected {:#010x})",
                section.tag, expected_tag
            ),
        });
    }
    Ok(section)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn path() -> PathBuf {
        PathBuf::from("/test/section.bin")
    }

    #[test]
    fn scalars_round_trip_bit_identically() {
        let mut w = ByteWriter::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64_bits(-0.0);
        w.put_f64_bits(f64::from_bits(0x7FF8_0000_0000_0001)); // NaN payload
        w.put_bytes(b"tail");
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.f64_bits().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.f64_bits().map(f64::to_bits), Some(0x7FF8_0000_0000_0001));
        assert_eq!(r.take(4), Some(&b"tail"[..]));
        assert!(r.is_empty());
        assert_eq!(r.u32(), None, "past-the-end reads are None, not panics");
    }

    #[test]
    fn sections_round_trip_and_catch_corruption() {
        let mut w = ByteWriter::new();
        write_section(&mut w, 0x1111, b"first payload");
        write_section(&mut w, 0x2222, b"");
        let bytes = w.into_inner();

        let mut r = ByteReader::new(&bytes);
        let s1 = expect_section(&mut r, &path(), "s1", 0x1111).unwrap();
        assert_eq!(s1.payload, b"first payload");
        let s2 = read_section(&mut r, &path(), "s2").unwrap();
        assert_eq!((s2.tag, s2.payload.len()), (0x2222, 0));
        assert!(r.is_empty());

        // Wrong tag.
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            expect_section(&mut r, &path(), "s1", 0x9999),
            Err(PersistError::Corrupt { .. })
        ));

        // Every truncation point is a typed error.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let mut ok = 0;
            loop {
                match read_section(&mut r, &path(), "cut") {
                    Ok(_) => ok += 1,
                    Err(PersistError::Truncated { .. }) => break,
                    Err(other) => panic!("cut {cut}: unexpected {other}"),
                }
            }
            assert!(ok <= 1, "cut {cut} cannot yield both sections");
        }

        // Every single-byte flip inside a payload is a checksum mismatch
        // (flips in the framing surface as truncation/corruption instead).
        let mut flipped = bytes.clone();
        let payload_start = 4 + 8;
        for i in payload_start..payload_start + b"first payload".len() {
            flipped[i] ^= 0x40;
            let mut r = ByteReader::new(&flipped);
            assert!(matches!(
                read_section(&mut r, &path(), "flip"),
                Err(PersistError::ChecksumMismatch { .. })
            ));
            flipped[i] ^= 0x40;
        }
    }

    #[test]
    fn absurd_lengths_are_truncation_not_allocation() {
        // A section claiming u64::MAX payload bytes must fail cleanly.
        let mut w = ByteWriter::new();
        w.put_u32(0x1234);
        w.put_u64(u64::MAX);
        w.put_bytes(&[0u8; 16]);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            read_section(&mut r, &path(), "absurd"),
            Err(PersistError::Truncated { .. })
        ));
    }
}
