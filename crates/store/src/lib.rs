//! # spanner-store — durable persistence for live spanners
//!
//! This crate is the storage engine beneath the live-update subsystem: it
//! knows how to turn a [`spanner_graph::CsrGraph`] pair (spanner + original
//! mirror) into an **epoch-stamped, checksummed snapshot file** and how to
//! keep a **write-ahead log** of update batches, so a killed-and-restarted
//! server can be rebuilt bit-identically from disk. It deliberately knows
//! nothing about greedy admission, repair, or serving — the core crate owns
//! the semantics of a batch; this crate owns the bytes.
//!
//! ## The durability contract
//!
//! * **Write-ahead**: a batch's WAL record is fsynced *before* the
//!   in-memory state mutates ([`WalWriter::append`]). A crash at any moment
//!   loses at most work that was never acknowledged.
//! * **Atomic snapshots**: [`Snapshot::write_atomic`] stages into a
//!   temporary sibling, fsyncs, then renames — a snapshot file either
//!   exists completely or not at all.
//! * **Verified reads**: every section and record carries a CRC-32;
//!   truncation, bit flips and structural nonsense surface as typed
//!   [`PersistError`]s, never panics. Recovery policy can branch on the
//!   variant: a corrupt snapshot sends the reader to the next-newest
//!   candidate ([`list_snapshots`] orders them), while a
//!   [`PersistError::MixedEpoch`] is unrecoverable by fallback because the
//!   snapshot and log describe different histories.
//! * **Bit-identical restore**: weights travel as raw `f64` bit patterns
//!   and edge slots keep their exact ids (dead slots included), so the
//!   recovered graphs are indistinguishable from the originals —
//!   [`GraphImage::capture`] / [`GraphImage::restore`] round-trip to
//!   equality, not approximation.
//!
//! ## File formats
//!
//! See [`snapshot`] for the snapshot layout (magic `SPANSNP1`, framed
//! sections) and [`wal`] for the log layout (magic `SPNWAL01`,
//! length-prefixed records). Both are little-endian, flat and fixed-width —
//! mmap-friendly by construction, though this crate reads via plain I/O to
//! stay `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod format;
pub mod snapshot;
pub mod wal;

pub use checksum::{crc32, Crc32};
pub use error::PersistError;
pub use format::{expect_section, read_section, write_section, ByteReader, ByteWriter, Section};
pub use snapshot::{
    list_snapshots, parse_snapshot_file_name, snapshot_file_name, GraphImage, Snapshot,
    SnapshotCandidate, SNAPSHOT_EXTENSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use wal::{read_wal, WalContents, WalRecord, WalWriter, WAL_FILE_NAME, WAL_MAGIC, WAL_VERSION};
