//! Satellite (b): property tests that snapshot and WAL records round-trip
//! **bit-identically** — edge ids (dead slots included), exact `f64` weight
//! bits, and epoch stamps — across the graph families the suite cares
//! about: sparse Erdős–Rényi, dense uniform, and high-weight-spread graphs.

use std::path::Path;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_graph::generators::{complete_graph_with_weights, erdos_renyi_connected};
use spanner_graph::{CsrGraph, EdgeId};
use spanner_store::{read_wal, GraphImage, Snapshot, WalWriter};

/// The three graph families of the round-trip requirement.
#[derive(Debug, Clone, Copy)]
enum Family {
    ErdosRenyi,
    DenseUniform,
    HighSpread,
}

/// Builds a churned `CsrGraph` of the given family: generate, load, then
/// delete a deterministic subset so tombstoned slots participate in the
/// round trip.
fn churned_graph(family: Family, n: usize, seed: u64, kill_every: usize) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = match family {
        Family::ErdosRenyi => erdos_renyi_connected(n, 0.3, 1.0..10.0, &mut rng),
        Family::DenseUniform => complete_graph_with_weights(n, 1.0..1.5, &mut rng),
        // Ten orders of magnitude of weight spread: exact bit patterns are
        // the only faithful representation of these.
        Family::HighSpread => erdos_renyi_connected(n, 0.5, 1.0e-6..1.0e4, &mut rng),
    };
    let mut csr = CsrGraph::from(&g);
    for id in (0..csr.edge_id_bound()).step_by(kill_every.max(2)) {
        let _ = csr.remove_edge(EdgeId(id));
    }
    csr
}

/// Asserts two graphs are bit-identical: vertex count, epoch, every edge
/// slot's endpoints, liveness, and exact weight bits.
fn assert_bit_identical(a: &CsrGraph, b: &CsrGraph) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.epoch(), b.epoch());
    assert_eq!(a.edge_id_bound(), b.edge_id_bound());
    assert_eq!(a.num_edges(), b.num_edges());
    for id in 0..a.edge_id_bound() {
        let id = EdgeId(id);
        assert_eq!(a.is_edge_live(id), b.is_edge_live(id), "{id:?}");
        let (au, av, aw) = a.edge(id);
        let (bu, bv, bw) = b.edge(id);
        assert_eq!((au, av), (bu, bv), "{id:?}");
        assert_eq!(aw.to_bits(), bw.to_bits(), "{id:?}");
    }
}

fn family_from_index(i: usize) -> Family {
    match i % 3 {
        0 => Family::ErdosRenyi,
        1 => Family::DenseUniform,
        _ => Family::HighSpread,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot encode → decode → restore reproduces both graphs exactly,
    /// plus the epoch/cursor stamps and opaque metadata.
    #[test]
    fn snapshots_round_trip_bit_identically(
        family_idx in 0usize..3,
        n in 6usize..16,
        seed in 0u64..1_000_000,
        kill_every in 2usize..6,
    ) {
        let family = family_from_index(family_idx);
        let original = churned_graph(family, n, seed, kill_every);
        let spanner = churned_graph(family, n, seed.wrapping_add(1), kill_every + 1);
        let snap = Snapshot {
            epoch: spanner.epoch(),
            wal_seq: seed % 97,
            meta: seed.to_le_bytes().to_vec(),
            spanner: GraphImage::capture(&spanner),
            original: GraphImage::capture(&original),
        };
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes, Path::new("/prop/snap")).unwrap();
        prop_assert_eq!(&back, &snap);
        // Decode of the encode of the decode: byte-level fixed point.
        prop_assert_eq!(back.encode(), bytes);
        let restored_spanner = back.spanner.restore(Path::new("/prop/snap")).unwrap();
        let restored_original = back.original.restore(Path::new("/prop/snap")).unwrap();
        assert_bit_identical(&restored_spanner, &spanner);
        assert_bit_identical(&restored_original, &original);
    }

    /// WAL append → read returns every record with its exact seq, epoch and
    /// payload bytes, and a clean log reports no torn tail.
    #[test]
    fn wal_records_round_trip_bit_identically(
        seed in 0u64..1_000_000,
        count in 1usize..12,
        payload_len in 0usize..200,
    ) {
        let dir = std::env::temp_dir().join("spanner-store-wal-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prop-{seed}-{count}-{payload_len}.log"));
        let _ = std::fs::remove_file(&path);

        let records: Vec<(u64, u64, Vec<u8>)> = (0..count)
            .map(|i| {
                let payload: Vec<u8> = (0..payload_len)
                    .map(|j| (seed ^ (i as u64) << 8 ^ j as u64) as u8)
                    .collect();
                (seed.wrapping_add(i as u64), seed ^ 0xA5A5 ^ i as u64, payload)
            })
            .collect();
        let mut w = WalWriter::create(&path).unwrap();
        for (seq, epoch, payload) in &records {
            w.append(*seq, *epoch, payload).unwrap();
        }
        drop(w);

        let contents = read_wal(&path).unwrap();
        prop_assert!(contents.torn_tail.is_none());
        prop_assert_eq!(contents.records.len(), records.len());
        for (rec, (seq, epoch, payload)) in contents.records.iter().zip(&records) {
            prop_assert_eq!(rec.seq, *seq);
            prop_assert_eq!(rec.epoch, *epoch);
            prop_assert_eq!(&rec.payload, payload);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Satellite (a): random truncations and byte flips of a snapshot file
    /// always produce a typed error — never a panic, never a silent wrong
    /// decode.
    #[test]
    fn corrupted_snapshots_fail_with_typed_errors(
        n in 6usize..12,
        seed in 0u64..1_000_000,
        damage in 0usize..10_000,
    ) {
        let g = churned_graph(Family::ErdosRenyi, n, seed, 3);
        let snap = Snapshot {
            epoch: g.epoch(),
            wal_seq: 1,
            meta: Vec::new(),
            spanner: GraphImage::capture(&g),
            original: GraphImage::capture(&g),
        };
        let bytes = snap.encode();
        // Truncation at a pseudo-random point.
        let cut = damage % bytes.len();
        prop_assert!(Snapshot::decode(&bytes[..cut], Path::new("/prop")).is_err());
        // A byte flip at a pseudo-random point.
        let mut copy = bytes.clone();
        let at = (damage.wrapping_mul(31)) % copy.len();
        copy[at] ^= 1 << (damage % 8);
        prop_assert!(Snapshot::decode(&copy, Path::new("/prop")).is_err());
    }
}
