//! Point-set and metric workload generators.
//!
//! All generators are deterministic given the supplied RNG so experiments can
//! be reproduced from a seed.

use rand::Rng;

use crate::euclidean::EuclideanSpace;
use crate::explicit::ExplicitMetric;
use crate::point::Point;

/// `n` points uniform in the unit cube `[0, 1]^D`.
pub fn uniform_points<const D: usize, R: Rng + ?Sized>(n: usize, rng: &mut R) -> EuclideanSpace<D> {
    uniform_points_in_cube(n, 1.0, rng)
}

/// `n` points uniform in the cube `[0, side]^D`.
pub fn uniform_points_in_cube<const D: usize, R: Rng + ?Sized>(
    n: usize,
    side: f64,
    rng: &mut R,
) -> EuclideanSpace<D> {
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = [0.0; D];
        for c in coords.iter_mut() {
            *c = rng.gen::<f64>() * side;
        }
        points.push(Point::new(coords));
    }
    EuclideanSpace::new(points)
}

/// `n` points grouped into `num_clusters` Gaussian-ish clusters: cluster
/// centers are uniform in the unit cube and members are uniform within
/// `spread` of their center. Models the clustered workloads of the geometric
/// spanner experiments.
pub fn clustered_points<const D: usize, R: Rng + ?Sized>(
    n: usize,
    num_clusters: usize,
    spread: f64,
    rng: &mut R,
) -> EuclideanSpace<D> {
    assert!(num_clusters > 0, "need at least one cluster");
    let centers: Vec<Point<D>> = (0..num_clusters)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in coords.iter_mut() {
                *c = rng.gen::<f64>();
            }
            Point::new(coords)
        })
        .collect();
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let center = centers[i % num_clusters];
        let mut coords = *center.coords();
        for c in coords.iter_mut() {
            *c += (rng.gen::<f64>() - 0.5) * 2.0 * spread;
        }
        points.push(Point::new(coords));
    }
    EuclideanSpace::new(points)
}

/// `n` points on (or near) the unit circle, perturbed radially by at most
/// `noise`. A classical hard case for geometric spanners.
pub fn circle_points<R: Rng + ?Sized>(n: usize, noise: f64, rng: &mut R) -> EuclideanSpace<2> {
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let angle = 2.0 * std::f64::consts::PI * (i as f64) / (n.max(1) as f64);
        let radius = 1.0 + noise * (rng.gen::<f64>() - 0.5);
        points.push(Point::new([radius * angle.cos(), radius * angle.sin()]));
    }
    EuclideanSpace::new(points)
}

/// A `rows × cols` grid of points with spacing 1, each jittered by up to
/// `jitter` in every coordinate.
pub fn grid_points_2d<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    jitter: f64,
    rng: &mut R,
) -> EuclideanSpace<2> {
    let mut points = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let dx = jitter * (rng.gen::<f64>() - 0.5);
            let dy = jitter * (rng.gen::<f64>() - 0.5);
            points.push(Point::new([c as f64 + dx, r as f64 + dy]));
        }
    }
    EuclideanSpace::new(points)
}

/// `n` points on a line at exponentially growing coordinates `ratio^i`.
///
/// This produces a metric with large spread but doubling dimension 1, useful
/// for stressing net hierarchies and the approximate-greedy bucketing.
pub fn exponential_line(n: usize, ratio: f64) -> EuclideanSpace<1> {
    assert!(ratio > 1.0, "ratio must exceed 1");
    EuclideanSpace::from_coords((0..n).map(|i| [ratio.powi(i as i32)]))
}

/// The star metric on `n` points: a hub at distance 1 from every leaf, leaves
/// at distance 2 from each other.
///
/// On this metric the greedy `(1 + ε)`-spanner (for `ε < 1`) must keep every
/// hub–leaf edge, so its maximum degree is `n - 1` — the degree blow-up
/// phenomenon of [HM06, Smi09] discussed in Section 5 of the paper.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star_metric(n: usize) -> ExplicitMetric {
    assert!(n >= 2, "star metric needs at least a hub and one leaf");
    ExplicitMetric::from_fn(n, |i, j| if i == 0 || j == 0 { 1.0 } else { 2.0 })
        .expect("the star metric satisfies the metric axioms")
}

/// `n` points uniform on a `k`-dimensional affine subspace embedded in `R^D`
/// (`k <= D`), modelling data whose intrinsic (doubling) dimension is lower
/// than its ambient dimension.
pub fn low_dimensional_manifold<const D: usize, R: Rng + ?Sized>(
    n: usize,
    intrinsic_dim: usize,
    rng: &mut R,
) -> EuclideanSpace<D> {
    let k = intrinsic_dim.min(D).max(1);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = [0.0; D];
        for c in coords.iter_mut().take(k) {
            *c = rng.gen::<f64>();
        }
        points.push(Point::new(coords));
    }
    EuclideanSpace::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{validate_metric_axioms, MetricSpace};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    #[test]
    fn uniform_points_stay_in_cube() {
        let s = uniform_points_in_cube::<3, _>(100, 2.0, &mut rng());
        assert_eq!(s.len(), 100);
        for p in s.points() {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] <= 2.0);
            }
        }
    }

    #[test]
    fn clustered_points_form_tight_groups() {
        let s = clustered_points::<2, _>(90, 3, 0.01, &mut rng());
        assert_eq!(s.len(), 90);
        // Points in the same cluster (same index mod 3) are close.
        assert!(s.distance(0, 3) < 0.1);
        assert!(s.distance(1, 4) < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_points_need_clusters() {
        let _ = clustered_points::<2, _>(10, 0, 0.1, &mut rng());
    }

    #[test]
    fn circle_points_lie_near_unit_circle() {
        let s = circle_points(64, 0.0, &mut rng());
        for p in s.points() {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_points_count_and_spacing() {
        let s = grid_points_2d(4, 5, 0.0, &mut rng());
        assert_eq!(s.len(), 20);
        assert_eq!(s.distance(0, 1), 1.0);
    }

    #[test]
    fn exponential_line_grows_geometrically() {
        let s = exponential_line(5, 2.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.distance(0, 1), 1.0);
        assert_eq!(s.distance(3, 4), 8.0);
        assert!(s.spread() > 10.0);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn exponential_line_requires_growth() {
        let _ = exponential_line(4, 1.0);
    }

    #[test]
    fn star_metric_is_a_metric_with_hub_structure() {
        let m = star_metric(8);
        assert!(validate_metric_axioms(&m, 1e-9).is_ok());
        assert_eq!(m.distance(0, 5), 1.0);
        assert_eq!(m.distance(3, 5), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least a hub")]
    fn star_metric_too_small() {
        let _ = star_metric(1);
    }

    #[test]
    fn manifold_points_have_zero_trailing_coordinates() {
        let s = low_dimensional_manifold::<4, _>(30, 2, &mut rng());
        for p in s.points() {
            assert_eq!(p[2], 0.0);
            assert_eq!(p[3], 0.0);
        }
    }
}
