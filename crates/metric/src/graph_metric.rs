//! The shortest-path metric `M_G` induced by a weighted graph.
//!
//! Section 4 of the paper compares the greedy spanner of a metric `M` with
//! spanners of the metric `M_H` induced by the greedy spanner `H`; this type
//! is the executable form of that induced metric.

use spanner_graph::apsp::{all_pairs_shortest_paths, DistanceMatrix};
use spanner_graph::{GraphError, WeightedGraph};

use crate::space::MetricSpace;

/// The metric space `(V, δ_G)` induced by a connected weighted graph `G`.
///
/// Distances are precomputed with all-pairs Dijkstra at construction time, so
/// queries are `O(1)`.
#[derive(Debug, Clone)]
pub struct GraphMetric {
    distances: DistanceMatrix,
}

impl GraphMetric {
    /// Builds the induced metric of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected
    /// (the induced "metric" would have infinite distances) or
    /// [`GraphError::EmptyGraph`] if it has no vertices.
    pub fn new(graph: &WeightedGraph) -> Result<Self, GraphError> {
        if graph.num_vertices() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let distances = all_pairs_shortest_paths(graph);
        if !distances.all_finite() {
            return Err(GraphError::Disconnected);
        }
        Ok(GraphMetric { distances })
    }

    /// Access to the underlying distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }
}

impl MetricSpace for GraphMetric {
    fn len(&self) -> usize {
        self.distances.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.distances.distance(i.into(), j.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::validate_metric_axioms;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spanner_graph::generators::erdos_renyi_connected;
    use spanner_graph::WeightedGraph;

    #[test]
    fn induced_metric_uses_shortest_paths() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap();
        let m = GraphMetric::new(&g).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.distance(0, 2), 2.0);
        assert_eq!(m.distance(2, 0), 2.0);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        assert_eq!(GraphMetric::new(&g).unwrap_err(), GraphError::Disconnected);
        assert_eq!(
            GraphMetric::new(&WeightedGraph::new(0)).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn induced_metric_satisfies_axioms() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = erdos_renyi_connected(20, 0.2, 1.0..4.0, &mut rng);
        let m = GraphMetric::new(&g).unwrap();
        assert!(validate_metric_axioms(&m, 1e-9).is_ok());
    }

    #[test]
    fn distance_matrix_accessor() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 3.5)]).unwrap();
        let m = GraphMetric::new(&g).unwrap();
        assert_eq!(m.distances().distance(0.into(), 1.into()), 3.5);
    }
}
