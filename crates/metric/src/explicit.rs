//! Matrix-backed finite metrics for adversarial and hand-crafted instances.

use std::error::Error;
use std::fmt;

use crate::space::{validate_metric_axioms, MetricSpace};

/// Error returned when an explicit distance matrix fails the metric axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidMetricError(String);

impl fmt::Display for InvalidMetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid metric: {}", self.0)
    }
}

impl Error for InvalidMetricError {}

/// A finite metric given by an explicit symmetric distance matrix.
///
/// Useful for adversarial constructions (e.g. the star metric on which the
/// greedy spanner has degree `n - 1`) that are not realizable as low-dimension
/// Euclidean point sets.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitMetric {
    n: usize,
    dist: Vec<f64>,
}

impl ExplicitMetric {
    /// Builds a metric by calling `f(i, j)` for every ordered pair with
    /// `i < j`, then validating the metric axioms.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMetricError`] if the resulting matrix violates
    /// symmetry, positivity or the triangle inequality.
    pub fn from_fn(
        n: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, InvalidMetricError> {
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let metric = ExplicitMetric { n, dist };
        validate_metric_axioms(&metric, 1e-9).map_err(InvalidMetricError)?;
        Ok(metric)
    }

    /// Builds a metric without validating the axioms.
    ///
    /// Intended for trusted inputs (e.g. distances copied from another
    /// metric); prefer [`ExplicitMetric::from_fn`] elsewhere.
    pub fn from_fn_unchecked(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        ExplicitMetric { n, dist }
    }

    /// Snapshots any metric space into an explicit matrix (useful to avoid
    /// repeated expensive distance computations).
    pub fn from_metric<M: MetricSpace + ?Sized>(metric: &M) -> Self {
        ExplicitMetric::from_fn_unchecked(metric.len(), |i, j| metric.distance(i, j))
    }
}

impl MetricSpace for ExplicitMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;

    #[test]
    fn from_fn_validates_good_metric() {
        let m = ExplicitMetric::from_fn(4, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.distance(0, 3), 3.0);
        assert_eq!(m.distance(3, 0), 3.0);
        assert_eq!(m.distance(2, 2), 0.0);
    }

    #[test]
    fn from_fn_rejects_triangle_violation() {
        let r = ExplicitMetric::from_fn(3, |i, j| if (i, j) == (0, 2) { 100.0 } else { 1.0 });
        assert!(r.is_err());
        let msg = r.unwrap_err().to_string();
        assert!(msg.contains("triangle"));
    }

    #[test]
    fn from_fn_rejects_nonpositive_distance() {
        let r = ExplicitMetric::from_fn(3, |i, j| if (i, j) == (0, 1) { 0.0 } else { 1.0 });
        assert!(r.is_err());
    }

    #[test]
    fn snapshot_of_euclidean_space_matches() {
        let s = EuclideanSpace::from_coords([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]]);
        let m = ExplicitMetric::from_metric(&s);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.distance(i, j) - s.distance(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unchecked_constructor_accepts_anything() {
        let m = ExplicitMetric::from_fn_unchecked(2, |_, _| 42.0);
        assert_eq!(m.distance(0, 1), 42.0);
    }
}
