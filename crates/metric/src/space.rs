//! The finite-metric-space abstraction consumed by the spanner algorithms.

use spanner_graph::WeightedGraph;

/// A finite metric space over points indexed `0..len()`.
///
/// Implementations must return symmetric, non-negative distances that are zero
/// exactly on the diagonal and satisfy the triangle inequality (the helper
/// [`validate_metric_axioms`] checks this exhaustively for tests).
///
/// The `Send + Sync` supertraits let the spanner pipeline share a metric (or
/// a `&dyn MetricSpace` input) across the worker threads of its parallel
/// batch runners; distance evaluation must therefore be free of interior
/// mutability, which every honest distance function is.
pub trait MetricSpace: Send + Sync {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if an index is out of range.
    fn distance(&self, i: usize, j: usize) -> f64;

    /// Returns `true` if the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest pairwise distance (`0.0` for fewer than two points).
    fn diameter(&self) -> f64 {
        let n = self.len();
        let mut d = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                d = d.max(self.distance(i, j));
            }
        }
        d
    }

    /// Smallest non-zero pairwise distance (`0.0` for fewer than two points).
    fn min_interpoint_distance(&self) -> f64 {
        let n = self.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                best = best.min(self.distance(i, j));
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }

    /// The aspect ratio (spread) `diameter / min_interpoint_distance`, or
    /// `1.0` for degenerate spaces.
    fn spread(&self) -> f64 {
        let min = self.min_interpoint_distance();
        if min > 0.0 {
            self.diameter() / min
        } else {
            1.0
        }
    }

    /// Materializes the metric as a complete weighted graph (the form the
    /// greedy algorithm consumes in metric spaces).
    ///
    /// Zero distances between *distinct* points (duplicate points) are
    /// skipped — a positively-weighted graph cannot carry them, and the
    /// points are metrically indistinguishable anyway.
    ///
    /// # Panics
    ///
    /// Panics if any pairwise distance is `NaN`, infinite or negative. Such
    /// a value is not a metric and, if admitted as an edge weight, would
    /// break the greedy sort order and every Dijkstra invariant downstream;
    /// this used to be *silently dropped*, producing a wrong (incomplete)
    /// graph instead of an error. Fallible callers — the whole spanner
    /// pipeline — should use [`MetricSpace::try_to_complete_graph`].
    fn to_complete_graph(&self) -> WeightedGraph {
        self.try_to_complete_graph()
            .expect("metric with non-finite or negative distances")
    }

    /// Like [`MetricSpace::to_complete_graph`], but surfaces a poisoned
    /// distance as an error instead of panicking — the entry point the
    /// spanner constructions use, so a `NaN` in user-supplied distance data
    /// fails a build cleanly rather than aborting a long-running process.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`](spanner_graph::GraphError) for
    /// the first `NaN`, infinite or negative pairwise distance.
    fn try_to_complete_graph(&self) -> Result<WeightedGraph, spanner_graph::GraphError> {
        let n = self.len();
        let mut g = WeightedGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(i, j);
                if d == 0.0 {
                    continue; // duplicate points carry no edge
                }
                if !(d.is_finite() && d > 0.0) {
                    return Err(spanner_graph::GraphError::InvalidWeight { weight: d });
                }
                g.add_edge(i.into(), j.into(), d);
            }
        }
        Ok(g)
    }
}

/// A view of a metric space restricted to a subset of its points.
///
/// Point `k` of the sub-metric corresponds to point `indices[k]` of the base
/// space. Used by net hierarchies and doubling-dimension estimation.
#[derive(Debug, Clone)]
pub struct SubMetric<'a, M: MetricSpace + ?Sized> {
    base: &'a M,
    indices: Vec<usize>,
}

impl<'a, M: MetricSpace + ?Sized> SubMetric<'a, M> {
    /// Creates a sub-metric over the given base-space indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for `base`.
    pub fn new(base: &'a M, indices: Vec<usize>) -> Self {
        assert!(
            indices.iter().all(|&i| i < base.len()),
            "sub-metric index out of range"
        );
        SubMetric { base, indices }
    }

    /// The base-space index of sub-metric point `k`.
    pub fn base_index(&self, k: usize) -> usize {
        self.indices[k]
    }

    /// The base-space indices, in sub-metric order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

impl<'a, M: MetricSpace + ?Sized> MetricSpace for SubMetric<'a, M> {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.base.distance(self.indices[i], self.indices[j])
    }
}

/// Exhaustively checks the metric axioms (symmetry, identity of
/// indiscernibles, triangle inequality) up to tolerance `tol`.
///
/// Intended for tests and debug assertions; `O(n^3)`.
pub fn validate_metric_axioms<M: MetricSpace + ?Sized>(metric: &M, tol: f64) -> Result<(), String> {
    let n = metric.len();
    for i in 0..n {
        let dii = metric.distance(i, i);
        if dii.abs() > tol {
            return Err(format!("d({i},{i}) = {dii} is not zero"));
        }
        for j in 0..n {
            let dij = metric.distance(i, j);
            let dji = metric.distance(j, i);
            if (dij - dji).abs() > tol {
                return Err(format!("asymmetry: d({i},{j}) = {dij}, d({j},{i}) = {dji}"));
            }
            if i != j && dij <= 0.0 {
                return Err(format!("d({i},{j}) = {dij} is not positive"));
            }
            if !dij.is_finite() {
                return Err(format!("d({i},{j}) is not finite"));
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let lhs = metric.distance(i, j);
                let rhs = metric.distance(i, k) + metric.distance(k, j);
                if lhs > rhs + tol {
                    return Err(format!(
                        "triangle inequality violated: d({i},{j}) = {lhs} > {rhs}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::point::Point;

    fn unit_square() -> EuclideanSpace<2> {
        EuclideanSpace::new(vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([1.0, 1.0]),
            Point::new([0.0, 1.0]),
        ])
    }

    #[test]
    fn diameter_and_min_distance() {
        let s = unit_square();
        assert!((s.diameter() - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((s.min_interpoint_distance() - 1.0).abs() < 1e-12);
        assert!((s.spread() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_spaces() {
        let empty = EuclideanSpace::<2>::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.diameter(), 0.0);
        assert_eq!(empty.min_interpoint_distance(), 0.0);
        assert_eq!(empty.spread(), 1.0);
        let single = EuclideanSpace::new(vec![Point::new([1.0, 1.0])]);
        assert_eq!(single.diameter(), 0.0);
    }

    #[test]
    fn to_complete_graph_has_all_pairs() {
        let s = unit_square();
        let g = s.to_complete_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.edge_weight(0.into(), 2.into()), Some(2.0f64.sqrt()));
        assert_eq!(s.try_to_complete_graph().unwrap(), g);
    }

    struct Poisoned(f64);
    impl MetricSpace for Poisoned {
        fn len(&self) -> usize {
            3
        }
        fn distance(&self, i: usize, j: usize) -> f64 {
            if i == j {
                0.0
            } else if (i.min(j), i.max(j)) == (0, 2) {
                self.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn poisoned_distances_surface_as_errors_not_silent_drops() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let m = Poisoned(bad);
            assert!(
                matches!(
                    m.try_to_complete_graph(),
                    Err(spanner_graph::GraphError::InvalidWeight { .. })
                ),
                "distance {bad} must be rejected"
            );
        }
        // Duplicate points (zero distance between distinct indices) are
        // legal: the pair simply carries no edge.
        let dup = Poisoned(0.0);
        let g = dup.try_to_complete_graph().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "non-finite or negative")]
    fn to_complete_graph_panics_on_poisoned_distances() {
        let _ = Poisoned(f64::NAN).to_complete_graph();
    }

    #[test]
    fn sub_metric_restricts_distances() {
        let s = unit_square();
        let sub = SubMetric::new(&s, vec![0, 2]);
        assert_eq!(sub.len(), 2);
        assert!((sub.distance(0, 1) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(sub.base_index(1), 2);
        assert_eq!(sub.indices(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_metric_rejects_bad_index() {
        let s = unit_square();
        let _ = SubMetric::new(&s, vec![0, 9]);
    }

    #[test]
    fn axioms_hold_for_euclidean_space() {
        assert!(validate_metric_axioms(&unit_square(), 1e-9).is_ok());
    }

    #[test]
    fn axioms_detect_violations() {
        struct Broken;
        impl MetricSpace for Broken {
            fn len(&self) -> usize {
                3
            }
            fn distance(&self, i: usize, j: usize) -> f64 {
                if i == j {
                    0.0
                } else if (i, j) == (0, 2) || (j, i) == (0, 2) {
                    10.0 // violates triangle via 1
                } else {
                    1.0
                }
            }
        }
        assert!(validate_metric_axioms(&Broken, 1e-9).is_err());
    }
}
