//! Empirical estimation of the doubling dimension.
//!
//! The doubling dimension of a metric space is the smallest `ddim` such that
//! every ball can be covered by at most `2^ddim` balls of half its radius.
//! Computing it exactly is NP-hard, so experiments use the standard empirical
//! estimate: for sampled centers and radii, greedily cover the ball with
//! half-radius balls and take the base-2 logarithm of the largest cover size.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::net::greedy_net;
use crate::space::MetricSpace;

/// Greedily covers the ball `B(center, radius)` with balls of radius
/// `radius / 2` centered at points of the space, returning the number of
/// half-radius balls used.
///
/// The greedy cover is a 2-approximation-style upper bound on the optimal
/// cover, which is what the doubling-constant estimate needs.
pub fn half_radius_cover_size<M: MetricSpace + ?Sized>(
    metric: &M,
    center: usize,
    radius: f64,
) -> usize {
    let ball: Vec<usize> = (0..metric.len())
        .filter(|&p| metric.distance(center, p) <= radius)
        .collect();
    if ball.is_empty() {
        return 0;
    }
    greedy_net(metric, radius / 2.0, &ball).centers.len()
}

/// Estimates the doubling dimension by sampling `samples` center points and,
/// for each, a geometric ladder of radii between the minimum interpoint
/// distance and the diameter.
///
/// Returns `0.0` for spaces with fewer than two points.
pub fn estimate_doubling_dimension<M, R>(metric: &M, samples: usize, rng: &mut R) -> f64
where
    M: MetricSpace + ?Sized,
    R: Rng + ?Sized,
{
    let n = metric.len();
    if n < 2 {
        return 0.0;
    }
    let min_dist = metric.min_interpoint_distance();
    let diameter = metric.diameter();
    if min_dist <= 0.0 || diameter <= 0.0 {
        return 0.0;
    }
    let mut centers: Vec<usize> = (0..n).collect();
    centers.shuffle(rng);
    centers.truncate(samples.max(1));

    let mut worst_cover = 1usize;
    for &c in &centers {
        let mut r = min_dist * 2.0;
        while r <= diameter * 2.0 {
            worst_cover = worst_cover.max(half_radius_cover_size(metric, c, r));
            r *= 2.0;
        }
    }
    (worst_cover as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::generators::{uniform_points, uniform_points_in_cube};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cover_of_single_point_ball() {
        let s = EuclideanSpace::from_coords([[0.0], [10.0]]);
        assert_eq!(half_radius_cover_size(&s, 0, 1.0), 1);
    }

    #[test]
    fn line_has_small_doubling_dimension() {
        let s = EuclideanSpace::from_coords((0..200).map(|i| [i as f64]));
        let mut rng = SmallRng::seed_from_u64(1);
        let d = estimate_doubling_dimension(&s, 10, &mut rng);
        assert!(d > 0.0);
        assert!(
            d <= 3.0,
            "1-D line should have tiny doubling dimension, got {d}"
        );
    }

    #[test]
    fn plane_dimension_exceeds_line_dimension() {
        let mut rng = SmallRng::seed_from_u64(2);
        let line = EuclideanSpace::from_coords((0..150).map(|i| [i as f64]));
        let plane = uniform_points::<2, _>(150, &mut rng);
        let d_line = estimate_doubling_dimension(&line, 12, &mut SmallRng::seed_from_u64(3));
        let d_plane = estimate_doubling_dimension(&plane, 12, &mut SmallRng::seed_from_u64(4));
        assert!(
            d_plane > d_line,
            "plane estimate {d_plane} should exceed line estimate {d_line}"
        );
    }

    #[test]
    fn higher_ambient_dimension_increases_estimate() {
        let d2 = {
            let mut rng = SmallRng::seed_from_u64(5);
            let s = uniform_points_in_cube::<2, _>(200, 1.0, &mut rng);
            estimate_doubling_dimension(&s, 10, &mut SmallRng::seed_from_u64(6))
        };
        let d4 = {
            let mut rng = SmallRng::seed_from_u64(5);
            let s = uniform_points_in_cube::<4, _>(200, 1.0, &mut rng);
            estimate_doubling_dimension(&s, 10, &mut SmallRng::seed_from_u64(6))
        };
        assert!(
            d4 >= d2,
            "R^4 estimate {d4} should be at least R^2 estimate {d2}"
        );
    }

    #[test]
    fn degenerate_spaces_report_zero() {
        let empty = EuclideanSpace::<2>::new(vec![]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(estimate_doubling_dimension(&empty, 5, &mut rng), 0.0);
        let single = EuclideanSpace::from_coords([[1.0, 2.0]]);
        assert_eq!(estimate_doubling_dimension(&single, 5, &mut rng), 0.0);
    }
}
