//! Greedy ε-nets and hierarchical net trees for doubling metrics.
//!
//! A subset `N` of a metric space is an *r-net* if (packing) every two net
//! points are more than `r` apart and (covering) every point of the space is
//! within `r` of some net point. Nested nets at geometrically increasing radii
//! form a *net hierarchy* (net tree), the standard substrate for
//! bounded-degree spanners in doubling metrics (Theorem 2 of the paper, after
//! [CGMZ05, GR08c]).

use crate::space::MetricSpace;

/// The result of a greedy net computation over a set of candidate points.
#[derive(Debug, Clone)]
pub struct Net {
    /// Radius of the net.
    pub radius: f64,
    /// Net centers, as indices into the base metric space.
    pub centers: Vec<usize>,
    /// For every candidate (in the order supplied), the position within
    /// `centers` of the net point covering it.
    pub assignment: Vec<usize>,
}

/// Greedily computes an `r`-net of the points in `candidates`.
///
/// Candidates are scanned in the given order; a candidate becomes a center if
/// it is farther than `radius` from every existing center, otherwise it is
/// assigned to the nearest existing center. The result satisfies both the
/// packing and covering properties by construction.
///
/// # Panics
///
/// Panics if `radius` is negative or any candidate index is out of range.
pub fn greedy_net<M: MetricSpace + ?Sized>(metric: &M, radius: f64, candidates: &[usize]) -> Net {
    assert!(radius >= 0.0, "net radius must be non-negative");
    assert!(
        candidates.iter().all(|&c| c < metric.len()),
        "net candidate out of range"
    );
    let mut centers: Vec<usize> = Vec::new();
    let mut assignment = Vec::with_capacity(candidates.len());
    for &p in candidates {
        let mut nearest: Option<(usize, f64)> = None;
        for (ci, &c) in centers.iter().enumerate() {
            let d = metric.distance(p, c);
            if nearest.is_none_or(|(_, bd)| d < bd) {
                nearest = Some((ci, d));
            }
        }
        match nearest {
            Some((ci, d)) if d <= radius => assignment.push(ci),
            _ => {
                centers.push(p);
                assignment.push(centers.len() - 1);
            }
        }
    }
    Net {
        radius,
        centers,
        assignment,
    }
}

/// One level of a [`NetHierarchy`].
#[derive(Debug, Clone)]
pub struct NetLevel {
    /// Net radius at this level (`0.0` for the bottom level of all points).
    pub radius: f64,
    /// Net centers at this level, as indices into the base metric space.
    pub centers: Vec<usize>,
    /// For every center of the *previous* (finer) level, the position within
    /// this level's `centers` of its parent. Empty for the bottom level.
    pub parent_of_previous: Vec<usize>,
}

/// A hierarchy of nested nets at geometrically increasing radii.
///
/// Level 0 contains every point (radius 0); level `i + 1` is a greedy
/// `2·radius_i`-net of level `i`'s centers (starting from the minimum
/// interpoint distance), so the hierarchy has `O(log Φ)` levels where `Φ` is
/// the spread. The top level contains a single center.
#[derive(Debug, Clone)]
pub struct NetHierarchy {
    levels: Vec<NetLevel>,
}

impl NetHierarchy {
    /// Builds the hierarchy for `metric`.
    ///
    /// # Panics
    ///
    /// Panics if the metric has zero points or contains duplicate points
    /// (zero minimum interpoint distance), since the hierarchy height would be
    /// unbounded.
    pub fn build<M: MetricSpace + ?Sized>(metric: &M) -> Self {
        let n = metric.len();
        assert!(n > 0, "cannot build a net hierarchy of an empty metric");
        let bottom = NetLevel {
            radius: 0.0,
            centers: (0..n).collect(),
            parent_of_previous: Vec::new(),
        };
        let mut levels = vec![bottom];
        if n == 1 {
            return NetHierarchy { levels };
        }
        let min_dist = metric.min_interpoint_distance();
        assert!(
            min_dist > 0.0,
            "net hierarchy requires distinct points (positive minimum distance)"
        );
        let mut radius = min_dist;
        while levels.last().expect("at least one level").centers.len() > 1 {
            let prev_centers = levels.last().expect("at least one level").centers.clone();
            let net = greedy_net(metric, radius, &prev_centers);
            levels.push(NetLevel {
                radius,
                centers: net.centers,
                parent_of_previous: net.assignment,
            });
            radius *= 2.0;
        }
        NetHierarchy { levels }
    }

    /// The levels, from finest (all points) to coarsest (single center).
    pub fn levels(&self) -> &[NetLevel] {
        &self.levels
    }

    /// Number of levels, including the bottom level of all points.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The single center of the coarsest level.
    pub fn root(&self) -> usize {
        self.levels
            .last()
            .expect("hierarchy always has at least one level")
            .centers[0]
    }
}

/// Checks that `centers` is a valid `radius`-net of `candidates`:
/// pairwise distances exceed `radius` (packing) and every candidate is within
/// `radius` of a center (covering). Intended for tests.
pub fn is_valid_net<M: MetricSpace + ?Sized>(
    metric: &M,
    radius: f64,
    centers: &[usize],
    candidates: &[usize],
) -> bool {
    for (a, &ca) in centers.iter().enumerate() {
        for &cb in centers.iter().skip(a + 1) {
            if metric.distance(ca, cb) <= radius {
                return false;
            }
        }
    }
    candidates
        .iter()
        .all(|&p| centers.iter().any(|&c| metric.distance(p, c) <= radius))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::generators::uniform_points;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line(n: usize) -> EuclideanSpace<1> {
        EuclideanSpace::from_coords((0..n).map(|i| [i as f64]))
    }

    #[test]
    fn greedy_net_packs_and_covers() {
        let s = line(10);
        let candidates: Vec<usize> = (0..10).collect();
        let net = greedy_net(&s, 2.0, &candidates);
        assert!(is_valid_net(&s, 2.0, &net.centers, &candidates));
        assert_eq!(net.assignment.len(), 10);
        // Every point is assigned to a center within the radius.
        for (i, &a) in net.assignment.iter().enumerate() {
            assert!(s.distance(i, net.centers[a]) <= 2.0);
        }
    }

    #[test]
    fn zero_radius_net_keeps_every_point() {
        let s = line(5);
        let net = greedy_net(&s, 0.0, &[0, 1, 2, 3, 4]);
        assert_eq!(net.centers.len(), 5);
    }

    #[test]
    fn huge_radius_net_is_a_single_center() {
        let s = line(7);
        let net = greedy_net(&s, 100.0, &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(net.centers, vec![0]);
        assert!(net.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn hierarchy_levels_are_nested_nets() {
        let mut rng = SmallRng::seed_from_u64(9);
        let s = uniform_points::<2, _>(60, &mut rng);
        let h = NetHierarchy::build(&s);
        assert!(h.height() >= 2);
        assert_eq!(h.levels()[0].centers.len(), 60);
        assert_eq!(h.levels().last().unwrap().centers.len(), 1);
        for w in h.levels().windows(2) {
            let (fine, coarse) = (&w[0], &w[1]);
            // Coarser centers are a subset of finer centers.
            assert!(coarse.centers.iter().all(|c| fine.centers.contains(c)));
            // Valid net of the finer level at the recorded radius.
            assert!(is_valid_net(
                &s,
                coarse.radius,
                &coarse.centers,
                &fine.centers
            ));
            // Parent pointers cover every finer center.
            assert_eq!(coarse.parent_of_previous.len(), fine.centers.len());
            for (k, &p) in coarse.parent_of_previous.iter().enumerate() {
                assert!(s.distance(fine.centers[k], coarse.centers[p]) <= coarse.radius);
            }
        }
    }

    #[test]
    fn hierarchy_of_single_point() {
        let s = EuclideanSpace::from_coords([[3.0, 4.0]]);
        let h = NetHierarchy::build(&s);
        assert_eq!(h.height(), 1);
        assert_eq!(h.root(), 0);
    }

    #[test]
    fn hierarchy_height_is_logarithmic_in_spread() {
        let s = line(128);
        let h = NetHierarchy::build(&s);
        // Spread is 127, so roughly log2(127) + O(1) levels.
        assert!(h.height() <= 12, "height {} too large", h.height());
    }

    #[test]
    #[should_panic(expected = "distinct points")]
    fn duplicate_points_are_rejected() {
        let s = EuclideanSpace::from_coords([[0.0], [0.0]]);
        let _ = NetHierarchy::build(&s);
    }

    #[test]
    #[should_panic(expected = "empty metric")]
    fn empty_metric_is_rejected() {
        let s = EuclideanSpace::<1>::new(vec![]);
        let _ = NetHierarchy::build(&s);
    }
}
