//! Euclidean point sets as metric spaces.

use crate::point::Point;
use crate::space::MetricSpace;

/// A finite set of points in `R^D` with the Euclidean metric.
///
/// # Example
///
/// ```
/// use spanner_metric::{EuclideanSpace, MetricSpace, Point};
///
/// let space = EuclideanSpace::new(vec![Point::new([0.0]), Point::new([2.0]), Point::new([5.0])]);
/// assert_eq!(space.len(), 3);
/// assert_eq!(space.distance(1, 2), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EuclideanSpace<const D: usize> {
    points: Vec<Point<D>>,
}

impl<const D: usize> EuclideanSpace<D> {
    /// Creates a space from a vector of points.
    pub fn new(points: Vec<Point<D>>) -> Self {
        EuclideanSpace { points }
    }

    /// Creates a space from raw coordinate arrays.
    pub fn from_coords(coords: impl IntoIterator<Item = [f64; D]>) -> Self {
        EuclideanSpace {
            points: coords.into_iter().map(Point::new).collect(),
        }
    }

    /// The points, indexed consistently with [`MetricSpace::distance`].
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Returns the point with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &Point<D> {
        &self.points[i]
    }

    /// Appends a point and returns its index.
    pub fn push(&mut self, p: Point<D>) -> usize {
        self.points.push(p);
        self.points.len() - 1
    }

    /// The ambient dimension `D`.
    pub fn dim(&self) -> usize {
        D
    }

    /// Axis-aligned bounding box as `(min_corner, max_corner)`, or `None` for
    /// an empty space.
    pub fn bounding_box(&self) -> Option<(Point<D>, Point<D>)> {
        let first = *self.points.first()?;
        let mut lo = *first.coords();
        let mut hi = lo;
        for p in &self.points {
            for d in 0..D {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        Some((Point::new(lo), Point::new(hi)))
    }
}

impl<const D: usize> MetricSpace for EuclideanSpace<D> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.points[i].distance(&self.points[j])
    }
}

impl<const D: usize> FromIterator<Point<D>> for EuclideanSpace<D> {
    fn from_iter<T: IntoIterator<Item = Point<D>>>(iter: T) -> Self {
        EuclideanSpace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_point_distance() {
        let s = EuclideanSpace::from_coords([[0.0, 0.0], [3.0, 4.0]]);
        assert_eq!(s.distance(0, 1), 5.0);
        assert_eq!(s.distance(1, 0), 5.0);
        assert_eq!(s.distance(0, 0), 0.0);
    }

    #[test]
    fn push_and_point_access() {
        let mut s = EuclideanSpace::<2>::default();
        assert!(s.is_empty());
        let i = s.push(Point::new([1.0, 1.0]));
        assert_eq!(i, 0);
        assert_eq!(s.point(0), &Point::new([1.0, 1.0]));
        assert_eq!(s.dim(), 2);
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let s = EuclideanSpace::from_coords([[0.0, 5.0], [2.0, -1.0], [1.0, 3.0]]);
        let (lo, hi) = s.bounding_box().unwrap();
        assert_eq!(lo.coords(), &[0.0, -1.0]);
        assert_eq!(hi.coords(), &[2.0, 5.0]);
        assert!(EuclideanSpace::<2>::default().bounding_box().is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let s: EuclideanSpace<1> = (0..5).map(|i| Point::new([i as f64])).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.distance(0, 4), 4.0);
    }
}
