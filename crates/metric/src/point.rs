//! Points in `R^D` with const-generic dimension.

use std::fmt;
use std::ops::{Add, Index, Mul, Sub};

/// A point in `D`-dimensional Euclidean space.
///
/// # Example
///
/// ```
/// use spanner_metric::Point;
///
/// let p = Point::new([1.0, 2.0]);
/// let q = Point::new([4.0, 6.0]);
/// assert!((p.distance(&q) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point::origin()
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    pub fn new(coords: [f64; D]) -> Self {
        Point { coords }
    }

    /// The origin (all coordinates zero).
    pub fn origin() -> Self {
        Point { coords: [0.0; D] }
    }

    /// The coordinate array.
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// The dimension `D`.
    pub fn dim(&self) -> usize {
        D
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point<D>) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when only
    /// comparisons are needed).
    pub fn distance_squared(&self, other: &Point<D>) -> f64 {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean norm of the point viewed as a vector.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Component-wise midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point<D>) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = 0.5 * (self.coords[i] + other.coords[i]);
        }
        Point { coords }
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point::new(coords)
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Point<D>;

    fn add(self, rhs: Point<D>) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] + rhs.coords[i];
        }
        Point { coords }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Point<D>;

    fn sub(self, rhs: Point<D>) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] - rhs.coords[i];
        }
        Point { coords }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Point<D>;

    fn mul(self, rhs: f64) -> Point<D> {
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = self.coords[i] * rhs;
        }
        Point { coords }
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let p = Point::new([0.0, 0.0, 0.0]);
        let q = Point::new([1.0, 2.0, 2.0]);
        assert!((p.distance(&q) - 3.0).abs() < 1e-12);
        assert!((p.distance_squared(&q) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let p = Point::new([1.5, -2.0]);
        let q = Point::new([3.0, 4.0]);
        assert_eq!(p.distance(&q), q.distance(&p));
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn arithmetic_operators() {
        let p = Point::new([1.0, 2.0]);
        let q = Point::new([3.0, 5.0]);
        assert_eq!((p + q).coords(), &[4.0, 7.0]);
        assert_eq!((q - p).coords(), &[2.0, 3.0]);
        assert_eq!((p * 2.0).coords(), &[2.0, 4.0]);
        assert_eq!(p.midpoint(&q).coords(), &[2.0, 3.5]);
    }

    #[test]
    fn origin_norm_and_indexing() {
        let o = Point::<3>::origin();
        assert_eq!(o.norm(), 0.0);
        assert_eq!(o.dim(), 3);
        let p = Point::new([3.0, 4.0]);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p[1], 4.0);
    }

    #[test]
    fn display_and_from() {
        let p: Point<2> = [1.0, 2.5].into();
        assert_eq!(p.to_string(), "(1, 2.5)");
    }
}
