//! Fair split trees and well-separated pair decompositions (WSPD) for
//! Euclidean point sets.
//!
//! The WSPD spanner is one of the classical baselines the greedy spanner is
//! compared against in the experimental literature cited by the paper
//! (Section 1.2): for every well-separated pair, connect one representative
//! pair of points; with separation `s = 4(1+ε)/ε` this yields a
//! `(1+ε)`-spanner with `O(s^d · n)` edges.

use crate::euclidean::EuclideanSpace;
use crate::point::Point;
use crate::space::MetricSpace;

/// A node of a [`SplitTree`].
#[derive(Debug, Clone)]
pub struct SplitNode<const D: usize> {
    /// Indices of the points contained in this node.
    pub points: Vec<usize>,
    /// Lower corner of the bounding box.
    pub lo: Point<D>,
    /// Upper corner of the bounding box.
    pub hi: Point<D>,
    /// Children node ids, or `None` for leaves (single point).
    pub children: Option<(usize, usize)>,
    /// A designated representative point index (used by the WSPD spanner).
    pub representative: usize,
}

impl<const D: usize> SplitNode<D> {
    /// Radius of the enclosing ball used by the well-separation test
    /// (half the bounding-box diagonal).
    pub fn radius(&self) -> f64 {
        0.5 * self.lo.distance(&self.hi)
    }

    /// Center of the bounding box.
    pub fn center(&self) -> Point<D> {
        self.lo.midpoint(&self.hi)
    }
}

/// A fair split tree over a Euclidean point set: each internal node splits its
/// bounding box through the midpoint of its longest side.
#[derive(Debug, Clone)]
pub struct SplitTree<const D: usize> {
    nodes: Vec<SplitNode<D>>,
    root: Option<usize>,
}

impl<const D: usize> SplitTree<D> {
    /// Builds the split tree of `space`.
    ///
    /// Duplicate points are tolerated (ties are broken by index), and the
    /// empty space yields a tree with no nodes.
    pub fn build(space: &EuclideanSpace<D>) -> Self {
        let mut tree = SplitTree {
            nodes: Vec::new(),
            root: None,
        };
        if space.is_empty() {
            return tree;
        }
        let all: Vec<usize> = (0..space.len()).collect();
        let root = tree.build_recursive(space, all);
        tree.root = Some(root);
        tree
    }

    fn build_recursive(&mut self, space: &EuclideanSpace<D>, points: Vec<usize>) -> usize {
        let (lo, hi) = bounding_box(space, &points);
        let representative = points[0];
        if points.len() == 1 {
            self.nodes.push(SplitNode {
                points,
                lo,
                hi,
                children: None,
                representative,
            });
            return self.nodes.len() - 1;
        }
        // Split along the longest side at the midpoint; fall back to a median
        // split by index when all points share the same coordinate.
        let mut split_dim = 0;
        let mut longest = 0.0;
        for d in 0..D {
            let side = hi[d] - lo[d];
            if side > longest {
                longest = side;
                split_dim = d;
            }
        }
        let midpoint = 0.5 * (lo[split_dim] + hi[split_dim]);
        let (mut left, mut right): (Vec<usize>, Vec<usize>) = points
            .iter()
            .partition(|&&p| space.point(p)[split_dim] <= midpoint);
        if left.is_empty() || right.is_empty() {
            // Degenerate (duplicate points): split evenly by index.
            let mut all = if left.is_empty() { right } else { left };
            all.sort_unstable();
            let mid = all.len() / 2;
            right = all.split_off(mid);
            left = all;
        }
        let left_id = self.build_recursive(space, left);
        let right_id = self.build_recursive(space, right);
        self.nodes.push(SplitNode {
            points,
            lo,
            hi,
            children: Some((left_id, right_id)),
            representative,
        });
        self.nodes.len() - 1
    }

    /// The nodes of the tree; ids index into this slice.
    pub fn nodes(&self) -> &[SplitNode<D>] {
        &self.nodes
    }

    /// The root node id, or `None` for an empty tree.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: usize) -> &SplitNode<D> {
        &self.nodes[id]
    }
}

fn bounding_box<const D: usize>(
    space: &EuclideanSpace<D>,
    points: &[usize],
) -> (Point<D>, Point<D>) {
    let first = space.point(points[0]);
    let mut lo = *first.coords();
    let mut hi = lo;
    for &p in points {
        let pt = space.point(p);
        for d in 0..D {
            lo[d] = lo[d].min(pt[d]);
            hi[d] = hi[d].max(pt[d]);
        }
    }
    (Point::new(lo), Point::new(hi))
}

/// A well-separated pair: two split-tree nodes whose point sets are
/// `s`-separated, plus representative points from each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WspdPair {
    /// First node id.
    pub node_a: usize,
    /// Second node id.
    pub node_b: usize,
    /// Representative point index from the first node.
    pub rep_a: usize,
    /// Representative point index from the second node.
    pub rep_b: usize,
}

/// Computes a well-separated pair decomposition with separation factor `s`.
///
/// Every unordered pair of distinct points is covered by exactly one returned
/// pair (one point in `node_a`'s set, the other in `node_b`'s set).
///
/// # Panics
///
/// Panics if `s` is not positive.
pub fn well_separated_pairs<const D: usize>(tree: &SplitTree<D>, s: f64) -> Vec<WspdPair> {
    assert!(s > 0.0, "separation factor must be positive");
    let mut pairs = Vec::new();
    let Some(root) = tree.root() else {
        return pairs;
    };
    let mut stack: Vec<usize> = vec![root];
    while let Some(u) = stack.pop() {
        if let Some((l, r)) = tree.node(u).children {
            find_pairs(tree, l, r, s, &mut pairs);
            stack.push(l);
            stack.push(r);
        }
    }
    pairs
}

fn is_well_separated<const D: usize>(a: &SplitNode<D>, b: &SplitNode<D>, s: f64) -> bool {
    let r = a.radius().max(b.radius());
    let center_dist = a.center().distance(&b.center());
    center_dist - a.radius() - b.radius() >= s * r
}

fn find_pairs<const D: usize>(
    tree: &SplitTree<D>,
    u: usize,
    v: usize,
    s: f64,
    out: &mut Vec<WspdPair>,
) {
    let (nu, nv) = (tree.node(u), tree.node(v));
    if is_well_separated(nu, nv, s) {
        out.push(WspdPair {
            node_a: u,
            node_b: v,
            rep_a: nu.representative,
            rep_b: nv.representative,
        });
        return;
    }
    // Split the node with the larger radius (a leaf has radius 0 and is never
    // split while the other side still has extent).
    let split_u = match (nu.children, nv.children) {
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => {
            // Two leaves that are not well-separated can only be coincident
            // points; record them once so the covering property holds.
            out.push(WspdPair {
                node_a: u,
                node_b: v,
                rep_a: nu.representative,
                rep_b: nv.representative,
            });
            return;
        }
        (Some(_), Some(_)) => nu.radius() >= nv.radius(),
    };
    if split_u {
        let (l, r) = tree.node(u).children.expect("checked above");
        find_pairs(tree, l, v, s, out);
        find_pairs(tree, r, v, s, out);
    } else {
        let (l, r) = tree.node(v).children.expect("checked above");
        find_pairs(tree, u, l, s, out);
        find_pairs(tree, u, r, s, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_points;
    use crate::space::MetricSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn split_tree_of_empty_and_singleton() {
        let empty = EuclideanSpace::<2>::new(vec![]);
        assert!(SplitTree::build(&empty).root().is_none());
        let single = EuclideanSpace::from_coords([[1.0, 2.0]]);
        let t = SplitTree::build(&single);
        let root = t.root().unwrap();
        assert!(t.node(root).children.is_none());
        assert_eq!(t.node(root).points, vec![0]);
    }

    #[test]
    fn split_tree_leaves_partition_points() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = uniform_points::<2, _>(50, &mut rng);
        let t = SplitTree::build(&s);
        let mut leaf_points: Vec<usize> = t
            .nodes()
            .iter()
            .filter(|n| n.children.is_none())
            .flat_map(|n| n.points.clone())
            .collect();
        leaf_points.sort_unstable();
        assert_eq!(leaf_points, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_tree_boxes_contain_their_points() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = uniform_points::<3, _>(40, &mut rng);
        let t = SplitTree::build(&s);
        for node in t.nodes() {
            for &p in &node.points {
                let pt = s.point(p);
                for d in 0..3 {
                    assert!(pt[d] >= node.lo[d] - 1e-12 && pt[d] <= node.hi[d] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn duplicate_points_are_handled() {
        let s = EuclideanSpace::from_coords([[0.5, 0.5], [0.5, 0.5], [0.5, 0.5]]);
        let t = SplitTree::build(&s);
        assert!(t.root().is_some());
        let leaves = t.nodes().iter().filter(|n| n.children.is_none()).count();
        assert_eq!(leaves, 3);
    }

    /// Every unordered pair of distinct points must be covered by exactly one
    /// WSPD pair — the defining property of a WSPD.
    #[test]
    fn wspd_covers_every_pair_exactly_once() {
        let mut rng = SmallRng::seed_from_u64(7);
        let s = uniform_points::<2, _>(40, &mut rng);
        let t = SplitTree::build(&s);
        let pairs = well_separated_pairs(&t, 2.0);
        let mut cover: HashMap<(usize, usize), usize> = HashMap::new();
        for pair in &pairs {
            for &a in &t.node(pair.node_a).points {
                for &b in &t.node(pair.node_b).points {
                    let key = if a < b { (a, b) } else { (b, a) };
                    *cover.entry(key).or_insert(0) += 1;
                }
            }
        }
        for i in 0..40 {
            for j in (i + 1)..40 {
                assert_eq!(
                    cover.get(&(i, j)).copied().unwrap_or(0),
                    1,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn wspd_pairs_are_actually_separated() {
        let mut rng = SmallRng::seed_from_u64(8);
        let s = uniform_points::<2, _>(30, &mut rng);
        let t = SplitTree::build(&s);
        let sep = 3.0;
        for pair in well_separated_pairs(&t, sep) {
            let (na, nb) = (t.node(pair.node_a), t.node(pair.node_b));
            let r = na.radius().max(nb.radius());
            // Every cross pair of points is at distance at least s*r.
            for &a in &na.points {
                for &b in &nb.points {
                    assert!(s.distance(a, b) + 1e-9 >= sep * r);
                }
            }
        }
    }

    #[test]
    fn wspd_size_grows_with_separation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let s = uniform_points::<2, _>(60, &mut rng);
        let t = SplitTree::build(&s);
        let small = well_separated_pairs(&t, 1.5).len();
        let large = well_separated_pairs(&t, 6.0).len();
        assert!(large >= small);
        // Far fewer pairs than the quadratic worst case.
        assert!((small as f64) < 0.9 * (60.0 * 59.0 / 2.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn wspd_rejects_nonpositive_separation() {
        let s = EuclideanSpace::from_coords([[0.0, 0.0], [1.0, 1.0]]);
        let t = SplitTree::build(&s);
        let _ = well_separated_pairs(&t, 0.0);
    }
}
