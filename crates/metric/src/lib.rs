//! Metric-space substrate for the greedy-spanner reproduction.
//!
//! The paper's second and third observations concern spanners of *doubling
//! metrics*. This crate provides the metric-space machinery those results
//! need:
//!
//! * [`MetricSpace`] — the finite-metric abstraction all spanner algorithms
//!   consume, plus [`ExplicitMetric`] (matrix-backed) and adapters.
//! * [`EuclideanSpace`] — point sets in `R^D` with const-generic dimension.
//! * [`GraphMetric`] — the shortest-path metric `M_G` induced by a graph.
//! * [`net`] — greedy ε-nets and hierarchical net trees for doubling metrics
//!   (the substrate of the bounded-degree spanner of Theorem 2).
//! * [`wspd`] — fair split trees and well-separated pair decompositions for
//!   Euclidean baselines.
//! * [`doubling`] — empirical doubling-dimension estimation.
//! * [`generators`] — reproducible point-set and metric workloads.
//!
//! # Example
//!
//! ```
//! use spanner_metric::{EuclideanSpace, MetricSpace, Point};
//!
//! let pts = vec![Point::new([0.0, 0.0]), Point::new([3.0, 4.0]), Point::new([0.0, 1.0])];
//! let space = EuclideanSpace::new(pts);
//! assert_eq!(space.len(), 3);
//! assert!((space.distance(0, 1) - 5.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doubling;
pub mod euclidean;
pub mod explicit;
pub mod generators;
pub mod graph_metric;
pub mod net;
pub mod point;
pub mod space;
pub mod wspd;

pub use euclidean::EuclideanSpace;
pub use explicit::ExplicitMetric;
pub use graph_metric::GraphMetric;
pub use point::Point;
pub use space::{MetricSpace, SubMetric};
