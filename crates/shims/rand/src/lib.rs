//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, deterministic implementation of exactly the subset of the
//! rand 0.8 API the spanner crates use: [`Rng::gen`], [`Rng::gen_bool`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`]
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same family
//! the real `SmallRng` uses on 64-bit targets — so statistical quality is
//! adequate for the randomized constructions and property tests in this
//! repository. Streams are *not* bit-compatible with the real crate; all
//! in-repo expectations are statistical, not golden-value.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's native stream.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds (subset of rand 0.8's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the only invalid one; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (subset: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread_out() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let x = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&x));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle staying sorted is vanishingly unlikely"
        );
        assert!([1, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_generic_plumbing() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
