//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal wall-clock harness behind the subset of the criterion 0.5 API
//! the benches use: `Criterion::benchmark_group`, `BenchmarkGroup`
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Behavior mirrors criterion's two modes:
//!
//! * invoked by `cargo bench` (argv contains `--bench`): each benchmark is
//!   warmed up once and then timed for `sample_size` iterations; min / mean /
//!   max per-iteration times are printed.
//! * invoked any other way (plain run, `cargo test --benches`): each
//!   benchmark body runs exactly once so its assertions are exercised, but
//!   nothing is timed.
//!
//! Two environment variables drive CI smoke runs:
//!
//! * `BENCH_SAMPLE_SIZE` — overrides every group's sample size (clamped to at
//!   least 1), so a scheduled pipeline can run the real measurement path with
//!   a tiny iteration count.
//! * `BENCH_JSON` — path of a JSON-lines file; each measured benchmark
//!   appends one `{"bench", "samples", "min_ns", "mean_ns", "max_ns"}`
//!   record, which CI uploads as the perf-trajectory artifact.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, timing each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup iteration.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, Inp, F>(&mut self, id: I, input: &Inp, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        Inp: ?Sized,
        F: FnMut(&mut Bencher, &Inp),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        let iterations = if self.criterion.measure {
            self.criterion
                .sample_size_override
                .unwrap_or(self.sample_size)
        } else {
            0
        };
        let mut bencher = Bencher {
            iterations,
            samples: Vec::new(),
        };
        body(&mut bencher);
        if !self.criterion.measure {
            println!("{full}: ok (test mode, 1 iteration)");
            return;
        }
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{full}: {} samples, min {:?}, mean {:?}, max {:?}",
            bencher.samples.len(),
            min,
            total / n as u32,
            max
        );
        if let Some(path) = &self.criterion.json_path {
            let record = format!(
                "{{\"bench\":\"{}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}\n",
                full,
                bencher.samples.len(),
                min.as_nanos(),
                (total / n as u32).as_nanos(),
                max.as_nanos()
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(record.as_bytes()));
            if let Err(e) = written {
                eprintln!("BENCH_JSON: could not append to {path}: {e}");
            }
        }
    }

    /// Finishes the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level harness state (subset of criterion's `Criterion`).
pub struct Criterion {
    measure: bool,
    /// `BENCH_SAMPLE_SIZE` override for every group (CI smoke runs).
    sample_size_override: Option<usize>,
    /// `BENCH_JSON` destination for machine-readable per-bench records.
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes bench binaries with `--bench`; anything else
        // (cargo test, plain runs) gets the fast single-iteration mode.
        let measure = std::env::args().any(|a| a == "--bench");
        let sample_size_override = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|s| s.max(1));
        let json_path = std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty());
        Criterion {
            measure,
            sample_size_override,
            json_path,
        }
    }
}

impl Criterion {
    /// Starts a new benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    fn criterion_with(measure: bool) -> Criterion {
        Criterion {
            measure,
            sample_size_override: None,
            json_path: None,
        }
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut criterion = criterion_with(false);
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 1, "test mode must run the warmup iteration only");
    }

    #[test]
    fn measure_mode_runs_sample_size_iterations() {
        let mut criterion = criterion_with(true);
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0;
        group.bench_with_input("count", &3usize, |b, &_x| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 6, "5 timed + 1 warmup");
    }

    #[test]
    fn sample_size_override_and_json_records() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_json_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut criterion = Criterion {
            measure: true,
            sample_size_override: Some(2),
            json_path: Some(path.to_string_lossy().into_owned()),
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(50);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 3, "override (2 samples) + 1 warmup");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"bench\":\"g/count\""));
        assert!(contents.contains("\"samples\":2"));
        let _ = std::fs::remove_file(&path);
    }
}
