//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a deterministic property-testing harness behind the subset of the
//! proptest 1.x API the test suite uses: the [`Strategy`] trait with
//! `prop_map`, range strategies, tuple strategies, [`ProptestConfig`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a seed derived
//! from the test name (fully deterministic across runs), and failing cases
//! panic immediately without shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic value source handed to strategies.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates the runner for one case of a named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // property gets its own reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.0.generate(runner), self.1.generate(runner))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (
            self.0.generate(runner),
            self.1.generate(runner),
            self.2.generate(runner),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (
            self.0.generate(runner),
            self.1.generate(runner),
            self.2.generate(runner),
            self.3.generate(runner),
        )
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRunner};
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property violated: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Declares deterministic property tests (subset of proptest's macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner = $crate::TestRunner::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut runner); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut runner = TestRunner::for_case("ranges", 0);
        let strat = (3usize..9, 0u64..5).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = strat.generate(&mut runner);
            assert!((3..14).contains(&v));
        }
    }

    #[test]
    fn runners_are_deterministic_per_name_and_case() {
        let a = (0u64..1_000_000).generate(&mut TestRunner::for_case("x", 3));
        let b = (0u64..1_000_000).generate(&mut TestRunner::for_case("x", 3));
        let c = (0u64..1_000_000).generate(&mut TestRunner::for_case("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro parses config, doc comments, and multiple arguments.
        #[test]
        fn macro_generates_cases(n in 1usize..10, scale in 1u32..4) {
            prop_assert!(n < 10);
            prop_assert_eq!(n * scale as usize / scale as usize, n);
        }
    }
}
