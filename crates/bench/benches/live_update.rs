//! Live-update throughput: incremental [`LiveSpanner`] batches vs. full
//! greedy rebuilds on small-update workloads.
//!
//! The load-bearing comparison is `incremental_stream` vs.
//! `full_rebuild_stream`: a long-running service that takes a trickle of
//! edge updates should pay per *batch*, not per *graph*. The
//! `incremental_vs_rebuild` line printed by this bench records the measured
//! ratio (incremental must beat rebuilding the spanner from scratch after
//! every batch — the gate asserts speedup > 1x), and CI archives the JSON
//! summary (`BENCH_JSON`) as the live-update perf trajectory.
//!
//! Before timing anything the bench asserts the maintenance contract: after
//! every batch the incremental spanner certifies the stretch-t invariant.
//!
//! Run with `cargo bench --bench live_update`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use greedy_spanner::update::{LiveSpanner, Update, UpdateBatch};
use greedy_spanner::workload::{LiveWorkload, StreamEvent};
use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};
use spanner_graph::{CsrGraph, WeightedGraph};

const N: usize = 800;
const STRETCH: f64 = 2.0;
const BATCHES: usize = 6;

/// The cumulative graph states a rebuild-per-batch strategy would build
/// from: `states[k]` is the original graph after batches `0..=k`.
fn cumulative_states(g: &WeightedGraph, batches: &[UpdateBatch]) -> Vec<WeightedGraph> {
    let mut mirror = CsrGraph::from(g);
    batches
        .iter()
        .map(|batch| {
            for update in batch.updates() {
                match *update {
                    Update::Delete { u, v } => {
                        mirror.remove_edge_between(u, v).expect("valid stream");
                    }
                    Update::Reweight { u, v, weight } => {
                        mirror.remove_edge_between(u, v).expect("valid stream");
                        mirror.append_edge(u, v, weight);
                    }
                    Update::Insert { u, v, weight } => {
                        mirror.append_edge(u, v, weight);
                    }
                }
            }
            mirror.to_weighted_graph()
        })
        .collect()
}

fn bench_live_update(c: &mut Criterion) {
    let g = random_graph(N, DEFAULT_SEED);
    let output = Spanner::greedy()
        .stretch(STRETCH)
        .build(&g)
        .expect("valid stretch");

    // A small-update workload: update batches only, insert-leaning — the
    // regime a live service actually sees (a trickle of mutations against
    // a large standing graph).
    let batches: Vec<UpdateBatch> = LiveWorkload::new(N)
        .expect("valid universe")
        .update_fraction(1.0)
        .expect("valid fraction")
        .insert_fraction(0.7)
        .expect("valid fraction")
        .rounds(BATCHES)
        .updates_per_batch(12)
        .weights(1.0, 10.0)
        .expect("valid range")
        .seed(DEFAULT_SEED)
        .generate(&g)
        .into_iter()
        .map(|event| match event {
            StreamEvent::Updates(batch) => batch,
            StreamEvent::Queries(_) => unreachable!("update fraction is 1.0"),
        })
        .collect();
    let states = cumulative_states(&g, &batches);

    // Contract gate before any timing: the incremental path certifies the
    // invariant after every batch.
    {
        let mut live = LiveSpanner::new(output.clone(), &g).expect("greedy has a stretch");
        for batch in &batches {
            let outcome = live.apply(batch).expect("valid stream");
            assert!(
                outcome.certified_stretch <= STRETCH * (1.0 + 1e-9) + 1e-12,
                "incremental batch lost the stretch invariant"
            );
        }
    }

    let mut group = c.benchmark_group("live_update");
    group.sample_size(10);

    // Incremental: wrap the prebuilt output and apply the whole stream.
    group.bench_function("incremental_stream", |b| {
        b.iter(|| {
            let mut live = LiveSpanner::new(output.clone(), &g).expect("valid");
            for batch in &batches {
                live.apply(batch).expect("valid stream");
            }
            live.spanner().num_edges()
        })
    });

    // Rebuild: run the full greedy construction on every post-batch state.
    group.bench_function("full_rebuild_stream", |b| {
        b.iter(|| {
            let mut edges = 0;
            for state in &states {
                edges = Spanner::greedy()
                    .stretch(STRETCH)
                    .build(state)
                    .expect("valid stretch")
                    .spanner
                    .num_edges();
            }
            edges
        })
    });
    group.finish();

    // The acceptance ratio, measured directly so the artifact carries it
    // even when per-bench samples are noisy. The incremental side includes
    // LiveSpanner construction (its up-front certification) to keep the
    // comparison honest about total cost.
    let rounds = 3;
    let mut incremental = Duration::ZERO;
    let mut rebuild = Duration::ZERO;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let mut live = LiveSpanner::new(output.clone(), &g).expect("valid");
        for batch in &batches {
            live.apply(batch).expect("valid stream");
        }
        incremental += t0.elapsed();
        let t1 = Instant::now();
        for state in &states {
            Spanner::greedy()
                .stretch(STRETCH)
                .build(state)
                .expect("valid stretch");
        }
        rebuild += t1.elapsed();
    }
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    println!(
        "incremental_vs_rebuild: rebuild {rebuild:?} / incremental {incremental:?} = \
         {speedup:.2}x over {BATCHES} batches (n = {N})"
    );
    assert!(
        speedup > 1.0,
        "incremental update batches must beat full rebuilds on small-update \
         workloads (measured {speedup:.2}x)"
    );
}

criterion_group!(live_update, bench_live_update);
criterion_main!(live_update);
