//! E2 — Corollary 4: greedy (2k−1)(1+ε)-spanner construction on random
//! graphs across the sparseness parameter k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};

fn bench_size_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_size_lightness_vs_k");
    group.sample_size(10);
    let g = random_graph(300, DEFAULT_SEED);
    for k in [2usize, 3, 5] {
        let t = (2 * k - 1) as f64 * 1.5;
        let greedy = Spanner::greedy().stretch(t);
        group.bench_with_input(BenchmarkId::new("greedy", k), &t, |b, &_t| {
            b.iter(|| {
                let out = greedy.build(&g).expect("valid stretch");
                assert!(out.spanner.num_edges() >= 299);
                out.spanner.num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_vs_k);
criterion_main!(benches);
