//! E7 — the Section 1.2 comparison: construction cost of every registry
//! algorithm that consumes planar point sets, via the unified pipeline.

use criterion::{criterion_group, criterion_main, Criterion};

use greedy_spanner::algorithms::registry;
use greedy_spanner::{SpannerConfig, SpannerInput};
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};
use spanner_metric::MetricSpace;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_greedy_vs_baselines");
    group.sample_size(10);
    let n = 250usize;
    let points = uniform_square(n, DEFAULT_SEED);
    // Materialized once, outside the timed region, so graph-consuming
    // algorithms are timed on construction alone.
    let complete = points.to_complete_graph();
    let input = SpannerInput::prepared_euclidean2(&points, &complete);
    // `k = 2` pins Baswana–Sen to its classical (2k − 1) = 3 row; the
    // (1 + ε) constructions read the stretch target instead.
    let config = SpannerConfig {
        stretch: 1.5,
        k: Some(2),
        seed: DEFAULT_SEED,
        ..SpannerConfig::default()
    };

    for algorithm in registry() {
        if !algorithm.supports(&input) {
            continue;
        }
        group.bench_function(algorithm.name(), |b| {
            b.iter(|| {
                algorithm
                    .build(&input, &config)
                    .expect("construction succeeds")
                    .spanner
                    .num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
