//! E7 — the Section 1.2 comparison: construction cost of every registry
//! algorithm that consumes planar point sets, via the unified pipeline, plus
//! the CSR-substrate headline: greedy construction wall time on an
//! Erdős–Rényi n = 2000 workload, engine-backed vs the legacy
//! allocation-per-query path, in the same run's report.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::algorithms::registry;
use greedy_spanner::greedy::greedy_spanner_reference;
use greedy_spanner::{Spanner, SpannerConfig, SpannerInput};
use spanner_bench::workloads::{random_graph, uniform_square, DEFAULT_SEED};
use spanner_metric::MetricSpace;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_greedy_vs_baselines");
    group.sample_size(10);
    let n = 250usize;
    let points = uniform_square(n, DEFAULT_SEED);
    // Materialized once, outside the timed region, so graph-consuming
    // algorithms are timed on construction alone.
    let complete = points.to_complete_graph();
    let input = SpannerInput::prepared_euclidean2(&points, &complete);
    // `k = 2` pins Baswana–Sen to its classical (2k − 1) = 3 row; the
    // (1 + ε) constructions read the stretch target instead.
    let config = SpannerConfig {
        stretch: 1.5,
        k: Some(2),
        seed: DEFAULT_SEED,
        ..SpannerConfig::default()
    };

    for algorithm in registry() {
        if !algorithm.supports(&input) {
            continue;
        }
        group.bench_function(algorithm.name(), |b| {
            b.iter(|| {
                algorithm
                    .build(&input, &config)
                    .expect("construction succeeds")
                    .spanner
                    .num_edges()
            })
        });
    }
    group.finish();
}

/// The Erdős–Rényi n = 2000 greedy comparison: the engine-backed pipeline
/// path against the legacy allocation-per-query reference, same graph, same
/// stretch. Both rows appear in one report, and a direct one-shot timing of
/// each path is printed so the speedup is visible even at tiny sample counts.
fn bench_er2000_legacy_vs_csr(c: &mut Criterion) {
    let n = 2000usize;
    let g = random_graph(n, DEFAULT_SEED);
    let stretch = 2.0;

    let mut group = c.benchmark_group("er2000_greedy_legacy_vs_csr");
    group.sample_size(5);
    group.bench_function("greedy_csr_engine", |b| {
        b.iter(|| {
            Spanner::greedy()
                .stretch(stretch)
                .build(&g)
                .expect("valid stretch")
                .spanner
                .num_edges()
        })
    });
    group.bench_function("greedy_legacy", |b| {
        b.iter(|| {
            greedy_spanner_reference(&g, stretch)
                .expect("valid stretch")
                .spanner()
                .num_edges()
        })
    });
    group.finish();

    let start = Instant::now();
    let engine_out = Spanner::greedy().stretch(stretch).build(&g).unwrap();
    let engine_time = start.elapsed();
    let start = Instant::now();
    let legacy_out = greedy_spanner_reference(&g, stretch).unwrap();
    let legacy_time = start.elapsed();
    assert_eq!(
        engine_out.spanner.num_edges(),
        legacy_out.spanner().num_edges(),
        "both paths must build the same spanner"
    );
    println!(
        "er2000 greedy (n={n}, m={}, t={stretch}): csr-engine {engine_time:?} vs legacy \
         {legacy_time:?} ({:.2}x), {} queries, {} workspace reuse hits",
        g.num_edges(),
        legacy_time.as_secs_f64() / engine_time.as_secs_f64().max(1e-12),
        engine_out.stats.distance_queries,
        engine_out.stats.workspace_reuse_hits,
    );
}

/// The parallel-scaling headline: greedy construction of the er2000
/// workload through the batched filter-then-commit loop at 1/2/4/8
/// threads. The BENCH_JSON rows (`parallel_scaling/er2000_greedy_threads/k`)
/// are the artifact CI archives as `bench-parallel-scaling.jsonl`; the
/// speedup is mean(threads=1) / mean(threads=k). The outputs are asserted
/// identical across thread counts — the determinism guarantee is part of
/// what this bench certifies.
fn bench_parallel_scaling(c: &mut Criterion) {
    let n = 2000usize;
    let g = random_graph(n, DEFAULT_SEED);
    let stretch = 2.0;
    let thread_counts = [1usize, 2, 4, 8];

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(5);
    for &threads in &thread_counts {
        group.bench_function(BenchmarkId::new("er2000_greedy_threads", threads), |b| {
            b.iter(|| {
                Spanner::greedy()
                    .stretch(stretch)
                    .threads(threads)
                    .build(&g)
                    .expect("valid stretch")
                    .spanner
                    .num_edges()
            })
        });
    }
    group.finish();

    // One-shot wall-clock summary plus the output-identity check, printed
    // so the speedup and the recheck overhead are visible at any sample
    // count.
    let mut baseline = None;
    let mut one_thread_time = None;
    for &threads in &thread_counts {
        let start = Instant::now();
        let out = Spanner::greedy()
            .stretch(stretch)
            .threads(threads)
            .build(&g)
            .unwrap();
        let elapsed = start.elapsed();
        let baseline_edges = *baseline.get_or_insert(out.spanner.num_edges());
        assert_eq!(
            out.spanner.num_edges(),
            baseline_edges,
            "thread count changed the greedy output"
        );
        let speedup =
            one_thread_time.get_or_insert(elapsed).as_secs_f64() / elapsed.as_secs_f64().max(1e-12);
        println!(
            "parallel_scaling er2000 greedy t={stretch} threads={threads}: {elapsed:?} \
             ({speedup:.2}x vs 1 thread), {} batches, {} recheck hits, {} queries, \
             utilization {:.2}",
            out.stats.batches,
            out.stats.batch_recheck_hits,
            out.stats.distance_queries,
            out.stats.worker_utilization,
        );
    }
}

criterion_group!(
    benches,
    bench_baselines,
    bench_er2000_legacy_vs_csr,
    bench_parallel_scaling
);
criterion_main!(benches);
