//! E7 — the Section 1.2 comparison: greedy vs Θ-graph vs WSPD vs Baswana–Sen
//! construction cost on planar point sets.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use greedy_spanner::baselines::{baswana_sen_spanner, theta_graph_spanner, wspd_spanner};
use greedy_spanner::greedy_metric::greedy_spanner_of_metric;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};
use spanner_metric::MetricSpace;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_greedy_vs_baselines");
    group.sample_size(10);
    let n = 250usize;
    let points = uniform_square(n, DEFAULT_SEED);
    let complete = points.to_complete_graph();

    group.bench_function("greedy_eps_0.5", |b| {
        b.iter(|| {
            greedy_spanner_of_metric(&points, 1.5)
                .expect("non-empty")
                .spanner
                .num_edges()
        })
    });
    group.bench_function("theta_12_cones", |b| {
        b.iter(|| theta_graph_spanner(&points, 12).expect("valid cones").num_edges())
    });
    group.bench_function("wspd_eps_0.5", |b| {
        b.iter(|| wspd_spanner(&points, 0.5).expect("valid epsilon").num_edges())
    });
    group.bench_function("baswana_sen_k2", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(DEFAULT_SEED);
            baswana_sen_spanner(&complete, 2, &mut rng)
                .expect("valid k")
                .num_edges()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
