//! Sharded-pipeline scaling: the n × shards construction grid, cross-shard
//! serving over boundary-targeted traffic, the shards=4 vs shards=1
//! wall-time gate at n ≥ 10⁵, and the per-shard peak-memory bound at fixed
//! n/k.
//!
//! The instances are jittered grids: generation is `O(n)`, partitions have
//! `O(√n)` cuts, and at stretch 3 the greedy construction does real pruning
//! work — the regime where splitting the build into shards pays even on a
//! single core (smaller per-shard spanners keep the per-edge bounded
//! searches and their working sets small). Before timing anything the bench
//! asserts the sharded determinism contract: the build artifact is
//! bit-identical across thread counts and serving answers are bit-identical
//! across serve-shard counts.
//!
//! CI smokes this bench at `SPANNER_THREADS` 1, 2 and 8 and archives the
//! JSON summary (`BENCH_JSON`) as `bench-sharding.jsonl`; the
//! `sharded_speedup` line printed below records the measured shards=4 /
//! shards=1 ratio directly, so the artifact carries it even when per-bench
//! samples are noisy.
//!
//! Run with `cargo bench --bench sharded_scaling`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::shard::{ShardedOutput, SKELETON_SLACK};
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::ShardedSpanner;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spanner_bench::workloads::DEFAULT_SEED;
use spanner_graph::generators::grid_graph;
use spanner_graph::{VertexId, WeightedGraph};

const STRETCH: f64 = 3.0;
const JITTER: f64 = 0.3;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn grid(rows: usize, cols: usize) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(DEFAULT_SEED);
    grid_graph(rows, cols, JITTER, &mut rng)
}

fn build(g: &WeightedGraph, shards: usize) -> ShardedOutput {
    ShardedSpanner::greedy()
        .stretch(STRETCH)
        .shards(shards)
        .build(g)
        .expect("sharded build")
}

/// The determinism contract the numbers below are published under: the
/// build artifact is a function of (graph, shards, seed) alone, and every
/// serve-shard count answers bit-identically to the plain server.
fn assert_sharded_determinism() {
    let g = grid(50, 50);
    let reference = ShardedSpanner::greedy()
        .stretch(STRETCH)
        .shards(2)
        .threads(1)
        .build(&g)
        .expect("build");
    for threads in [2usize, 8] {
        let other = ShardedSpanner::greedy()
            .stretch(STRETCH)
            .shards(2)
            .threads(threads)
            .build(&g)
            .expect("build");
        assert_eq!(
            other.spanner().edges(),
            reference.spanner().edges(),
            "threads={threads} changed the artifact"
        );
    }
    let queries = QueryWorkload::mixed(g.num_vertices(), false)
        .expect("valid workload")
        .queries(200)
        .seed(9)
        .bound(4.0 * STRETCH)
        .generate();
    let mut plain = reference.output.clone().serve().finish();
    let expected = plain.answer_batch(&queries).expect("valid batch");
    for serve_shards in SHARD_COUNTS {
        let mut server = reference
            .clone()
            .serve()
            .serve_shards(serve_shards)
            .finish();
        let cold = server.answer_batch(&queries).expect("valid batch");
        let warm = server.answer_batch(&queries).expect("valid batch");
        assert_eq!(cold, expected, "serve_shards={serve_shards}");
        assert_eq!(warm, expected, "warm, serve_shards={serve_shards}");
    }
}

fn bench_sharded(c: &mut Criterion) {
    assert_sharded_determinism();

    // Construction: the n × shards grid.
    let mut group = c.benchmark_group("sharded_scaling");
    group.sample_size(10);
    for (rows, cols) in [(100usize, 100usize), (142, 141)] {
        let g = grid(rows, cols);
        let n = g.num_vertices();
        for shards in SHARD_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(format!("construct_n{n}"), shards),
                &g,
                |b, g| b.iter(|| build(g, shards).spanner().num_edges()),
            );
        }
    }
    group.finish();

    // Serving: boundary-targeted distance traffic (every query crosses
    // shards) through the sharded server at several serve-shard counts.
    let g = grid(100, 100);
    let out = build(&g, 4);
    let boundary: Vec<VertexId> = (0..out.skeleton.num_vertices())
        .map(|v| out.skeleton.global_of(VertexId(v)))
        .collect();
    let queries = QueryWorkload::uniform_over(boundary)
        .expect("boundary workload")
        .queries(512)
        .seed(17)
        .bound(6.0 * STRETCH)
        .generate();
    let mut serve_group = c.benchmark_group("sharded_serving");
    serve_group.sample_size(10);
    for serve_shards in SHARD_COUNTS {
        let mut server = out.clone().serve().serve_shards(serve_shards).finish();
        server.answer_batch(&queries).expect("warms the caches");
        serve_group.bench_function(BenchmarkId::new("boundary_batch", serve_shards), |b| {
            b.iter(|| server.answer_batch(&queries).expect("valid batch").len())
        });
    }
    serve_group.finish();

    // The acceptance gate at n ≥ 10⁵: a sharded build must complete with a
    // certified global stretch, and shards=4 must beat shards=1 on wall
    // time. Benched for the archive, then measured directly for the ratio.
    let large = grid(317, 316);
    let n = large.num_vertices();
    assert!(
        n >= 100_000,
        "gate instance must have at least 1e5 vertices"
    );
    let mut gate = c.benchmark_group("sharded_gate");
    gate.sample_size(10);
    for shards in [1usize, 4] {
        gate.bench_with_input(
            BenchmarkId::new(format!("construct_n{n}"), shards),
            &large,
            |b, g| b.iter(|| build(g, shards).spanner().num_edges()),
        );
    }
    gate.finish();

    let rounds = 3;
    let t0 = Instant::now();
    for _ in 0..rounds {
        build(&large, 1);
    }
    let single = t0.elapsed();
    let t1 = Instant::now();
    let mut certified = None;
    for _ in 0..rounds {
        certified = Some(build(&large, 4));
    }
    let sharded = t1.elapsed();
    let certified = certified.expect("at least one round");
    let stretch = certified
        .certified_stretch()
        .expect("greedy certifies a stretch");
    assert!(
        certified.stitch.max_cut_stretch <= stretch * SKELETON_SLACK,
        "cut-edge audit {} exceeded the certificate {stretch}",
        certified.stitch.max_cut_stretch
    );
    let speedup = single.as_secs_f64() / sharded.as_secs_f64().max(1e-12);
    println!(
        "sharded_speedup: n={n} shards1 {single:?} / shards4 {sharded:?} = {speedup:.2}x \
         (certified stretch {stretch}, {} cut edges, {} kept)",
        certified.stitch.cut_edges, certified.stitch.kept_cut_edges
    );
    assert!(
        speedup > 1.0,
        "a 4-shard build must beat the single-shard build at n={n} \
         (measured {speedup:.2}x)"
    );

    // Per-shard peak memory stays bounded as n grows at fixed n/k ≈ 12.5k.
    let mut first = None;
    for (rows, cols, shards) in [(158usize, 158usize, 2usize), (224, 223, 4), (317, 316, 8)] {
        let g = grid(rows, cols);
        let out = build(&g, shards);
        let peak = out.max_shard_peak_memory();
        println!(
            "per_shard_peak_memory: n={} k={shards} peak {} KiB",
            g.num_vertices(),
            peak / 1024
        );
        let baseline = *first.get_or_insert(peak);
        assert!(
            peak <= baseline + baseline / 2,
            "per-shard peak memory {peak} grew past 1.5x the n/k baseline {baseline}"
        );
    }
}

criterion_group!(sharded, bench_sharded);
criterion_main!(sharded);
