//! Serving-layer throughput: batched [`SpannerServer`] queries over a
//! frozen greedy spanner, uniform vs. Zipf-hotspot workloads, cached vs.
//! uncached, at several worker-thread counts.
//!
//! The load-bearing comparison is `zipf_uncached` vs. `zipf_cached`: on
//! skewed traffic the shortest-path-tree cache answers hot sources in
//! `O(1)` per target, so the cached rows must beat the uncached ones — the
//! `cache_speedup_zipf` line printed by this bench records the measured
//! ratio, and CI archives the JSON summary (`BENCH_JSON`) as the read-path
//! perf trajectory. Before timing anything the bench asserts the serving
//! determinism contract: answers bit-identical across thread counts
//! {1, 2, 8} and across cache states.
//!
//! Run with `cargo bench --bench serving_throughput`.
//!
//! Setting `BENCH_OVERLOAD=1` switches the binary to the **overload**
//! group instead (the regular groups are skipped so the artifact stays
//! clean): a deterministic 10×-saturation open-loop simulation through the
//! serving runtime ([`greedy_spanner::runtime::Router`]) on a seeded
//! virtual clock. Before timing, the group asserts the admission contract —
//! the run is reproducible, every admitted batch answers, bulk is shed
//! without failing anything, and interactive p99 with the limiter on stays
//! within 3× of its unloaded p99 — then records the limiter-off ratio in
//! the `BENCH_JSON` artifact (`bench-overload.jsonl` in CI).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::runtime::{AimdLimit, Limiter, QosClass, Router, VirtualClock};
use greedy_spanner::serve::{Answer, Query, ServeError, SpannerServer};
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{Spanner, SpannerOutput};
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};
use spanner_graph::QueuePolicy;

const N: usize = 2000;
const BATCH: usize = 2048;

/// The point-query engine configurations the `point_query_engines` group
/// compares: (name, queue policy, relayout, landmark count).
const ENGINE_CONFIGS: [(&str, QueuePolicy, bool, usize); 3] = [
    ("heap", QueuePolicy::Heap, false, 0),
    ("bucket", QueuePolicy::Auto, true, 0),
    ("bucket_alt", QueuePolicy::Auto, true, 4),
];

/// Freezes a fresh server off one shared construction result — the ~1s
/// n=2000 greedy build runs once per bench invocation, not once per server.
/// Uses the builder defaults: bucket queue, relayout, landmarks.
fn build_server(output: &SpannerOutput, threads: usize, cache: usize) -> SpannerServer {
    output
        .clone()
        .serve()
        .threads(threads)
        .cache_capacity(cache)
        .finish()
}

/// Like [`build_server`] but pinning one explicit engine configuration.
fn build_engine_server(
    output: &SpannerOutput,
    threads: usize,
    cache: usize,
    policy: QueuePolicy,
    reorder: bool,
    landmarks: usize,
) -> SpannerServer {
    output
        .clone()
        .serve()
        .threads(threads)
        .cache_capacity(cache)
        .queue_policy(policy)
        .reorder(reorder)
        .landmarks(landmarks)
        .finish()
}

/// Answers `batch` once on a fresh server per configuration and asserts the
/// results are identical everywhere — across thread counts, cache states
/// and every point-query engine configuration — the determinism contract
/// this bench publishes numbers under.
fn assert_identical_answers(output: &SpannerOutput, batch: &[Query]) -> Vec<Answer> {
    let mut reference_server = build_engine_server(output, 1, 0, QueuePolicy::Heap, false, 0);
    let reference = reference_server.answer_batch(batch).expect("valid batch");
    for threads in [1, 2, 8] {
        for cache in [0, 64] {
            let mut server = build_server(output, threads, cache);
            let cold = server.answer_batch(batch).expect("valid batch");
            let warm = server.answer_batch(batch).expect("valid batch");
            assert_eq!(cold, reference, "threads={threads} cache={cache}");
            assert_eq!(warm, reference, "warm, threads={threads} cache={cache}");
        }
    }
    for (name, policy, reorder, landmarks) in ENGINE_CONFIGS {
        let mut server = build_engine_server(output, 2, 64, policy, reorder, landmarks);
        let cold = server.answer_batch(batch).expect("valid batch");
        let warm = server.answer_batch(batch).expect("valid batch");
        assert_eq!(cold, reference, "engine config {name}");
        assert_eq!(warm, reference, "warm, engine config {name}");
    }
    reference
}

fn bench_serving(c: &mut Criterion) {
    if std::env::var("BENCH_OVERLOAD").is_ok_and(|v| !v.is_empty() && v != "0") {
        bench_overload(c);
        return;
    }
    let g = random_graph(N, DEFAULT_SEED);
    let output = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    let uniform = QueryWorkload::uniform(N)
        .expect("valid workload")
        .queries(BATCH)
        .seed(11)
        .bound(40.0)
        .generate();
    let zipf = QueryWorkload::zipf(N, 1.1)
        .expect("valid workload")
        .queries(BATCH)
        .seed(12)
        .bound(40.0)
        .generate();
    let mixed = QueryWorkload::mixed(N, false)
        .expect("valid workload")
        .queries(BATCH)
        .seed(13)
        .generate();

    // Determinism gate first: the numbers below describe one result set.
    assert_identical_answers(&output, &zipf);

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);

    for threads in [1, 2] {
        // Uniform traffic: the cache-hostile baseline (hit rate ~0).
        let mut server = build_server(&output, threads, 0);
        group.bench_with_input(
            BenchmarkId::new("uniform_uncached", threads),
            &threads,
            |b, _| b.iter(|| server.answer_batch(&uniform).expect("valid batch").len()),
        );

        // Zipf hotspots, no cache vs. warm cache: the headline pair.
        let mut uncached = build_server(&output, threads, 0);
        group.bench_with_input(
            BenchmarkId::new("zipf_uncached", threads),
            &threads,
            |b, _| b.iter(|| uncached.answer_batch(&zipf).expect("valid batch").len()),
        );
        let mut cached = build_server(&output, threads, 128);
        cached.answer_batch(&zipf).expect("warms the tree cache");
        group.bench_with_input(
            BenchmarkId::new("zipf_cached", threads),
            &threads,
            |b, _| b.iter(|| cached.answer_batch(&zipf).expect("valid batch").len()),
        );

        // Mixed read profile with a live cache — the realistic shape.
        let mut mixed_server = build_server(&output, threads, 128);
        group.bench_with_input(
            BenchmarkId::new("mixed_cached", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    mixed_server
                        .answer_batch(&mixed)
                        .expect("valid batch")
                        .len()
                })
            },
        );
    }
    group.finish();

    // The point-query acceleration stack through the serving layer:
    // tight-bound uniform distance traffic (the workload the bucket queue
    // and ALT pruning target — a loose bound degenerates to full searches
    // no queue can save) with the engine pinned to each configuration.
    // Answers were asserted identical above; these rows record what the
    // stack buys end-to-end, serving overhead included.
    let bounded = QueryWorkload::uniform(N)
        .expect("valid workload")
        .queries(BATCH)
        .seed(14)
        .bound(6.0)
        .generate();
    assert_identical_answers(&output, &bounded);
    let mut engines = c.benchmark_group("point_query_engines");
    engines.sample_size(10);
    for (name, policy, reorder, landmarks) in ENGINE_CONFIGS {
        let mut server = build_engine_server(&output, 1, 0, policy, reorder, landmarks);
        engines.bench_function(BenchmarkId::new("bounded_uniform", name), |b| {
            b.iter(|| server.answer_batch(&bounded).expect("valid batch").len())
        });
    }
    engines.finish();

    // The acceptance ratio, measured directly so the artifact carries it
    // even when per-bench samples are noisy: cached vs. uncached wall time
    // on the Zipf workload (single-threaded, multiple rounds).
    let mut uncached = build_server(&output, 1, 0);
    let mut cached = build_server(&output, 1, 128);
    cached.answer_batch(&zipf).expect("warms the tree cache");
    let rounds = 5;
    let t0 = Instant::now();
    for _ in 0..rounds {
        uncached.answer_batch(&zipf).expect("valid batch");
    }
    let uncached_time = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..rounds {
        cached.answer_batch(&zipf).expect("valid batch");
    }
    let cached_time = t1.elapsed();
    let speedup = uncached_time.as_secs_f64() / cached_time.as_secs_f64().max(1e-12);
    println!(
        "cache_speedup_zipf: uncached {uncached_time:?} / cached {cached_time:?} = {speedup:.2}x \
         (hit rate {:.1}%)",
        100.0 * cached.stats().cache_hit_rate().unwrap_or(0.0)
    );
    assert!(
        speedup > 1.0,
        "the SPT cache must beat uncached point-to-point queries on Zipf \
         traffic (measured {speedup:.2}x)"
    );
}

// ---------------------------------------------------------------------------
// Overload group (gated by BENCH_OVERLOAD).
// ---------------------------------------------------------------------------

/// Universe for the overload simulation — smaller than the throughput
/// groups so the greedy build stays cheap at SPANNER_THREADS=1.
const OVERLOAD_N: usize = 800;
/// Interactive queries per submitted batch.
const INTERACTIVE_BATCH: usize = 8;
/// Bulk (ball) queries per submitted batch.
const BULK_BATCH: usize = 16;
/// Modeled virtual cost of one point query (the [`VirtualClock`] default),
/// used to translate "× capacity" load factors into arrival rates.
const POINT_COST: f64 = 20e-6;
/// Modeled virtual cost of one ball query.
const BALL_COST: f64 = 400e-6;

/// Builds a sorted open-loop batch schedule offering `load` × the virtual
/// service capacity, split 4% interactive point lookups / 96% bulk radius
/// sweeps in service-time units. Per-query arrivals come from the seeded
/// [`QueryWorkload::open_loop`] Poisson schedule; consecutive queries group
/// into batches stamped with their last member's arrival.
fn overload_schedule(
    load: f64,
    interactive_count: usize,
    bulk_count: usize,
    seed: u64,
) -> Vec<(Duration, Vec<Query>)> {
    let interactive_rate = 0.04 * load / POINT_COST;
    let bulk_rate = 0.96 * load / BALL_COST;
    let batched = |arrivals: Vec<greedy_spanner::workload::Arrival>, size: usize| {
        arrivals
            .chunks(size)
            .map(|chunk| {
                (
                    chunk.last().expect("non-empty chunk").at,
                    chunk.iter().map(|a| a.query).collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let interactive = batched(
        QueryWorkload::uniform(OVERLOAD_N)
            .expect("valid workload")
            .queries(interactive_count)
            .seed(seed)
            .bound(40.0)
            .open_loop(interactive_rate)
            .expect("valid rate")
            .generate(),
        INTERACTIVE_BATCH,
    );
    let bulk = batched(
        QueryWorkload::ball_sweep(OVERLOAD_N, vec![2.0, 4.0])
            .expect("valid sweep")
            .queries(bulk_count)
            .seed(seed ^ 0xB01D)
            .open_loop(bulk_rate)
            .expect("valid rate")
            .generate(),
        BULK_BATCH,
    );
    let mut events: Vec<(Duration, Vec<Query>)> = interactive.into_iter().chain(bulk).collect();
    events.sort_by_key(|(at, _)| *at);
    events
}

/// What one simulated run produced; everything needed for the gates and
/// the artifact rows.
struct OverloadRun {
    /// Per-event outcome in schedule order: `None` = shed at the door.
    outcomes: Vec<Option<Vec<Answer>>>,
    admitted: u64,
    shed: u64,
    queued: u64,
    interactive_p99: Duration,
    bulk_p99: Option<Duration>,
}

/// Drives the schedule open-loop through a router over a fresh server:
/// `limited` = adaptive AIMD admission with QoS preemption, otherwise a
/// limiter-off baseline (same chunk size, strict FIFO, never sheds). All
/// timing is virtual and seeded, so runs are bit-reproducible; the backend
/// answers every admitted query for real.
fn drive_overload(
    server: SpannerServer,
    events: &[(Duration, Vec<Query>)],
    limited: bool,
) -> OverloadRun {
    let router = Router::over(server).virtual_clock(VirtualClock::seeded(7));
    let mut router = if limited {
        router
            .limiter(Limiter::aimd(AimdLimit::new(16)))
            .shed_factor(2.0)
            .finish()
    } else {
        router
            .limiter(Limiter::fixed(16))
            .shed_factor(f64::INFINITY)
            .fifo(true)
            .finish()
    };
    let mut tickets = Vec::with_capacity(events.len());
    for (at, batch) in events {
        router.poll_until(*at);
        router.advance_to(*at);
        match router.offer(QosClass::of_batch(batch), batch) {
            Ok(ticket) => tickets.push(Some(ticket)),
            Err(ServeError::Overloaded { retry_after_hint }) => {
                assert!(retry_after_hint > Duration::ZERO, "usable retry hint");
                tickets.push(None);
            }
            Err(other) => panic!("the schedule contains no invalid batch: {other}"),
        }
    }
    router.drain();
    let outcomes = tickets
        .into_iter()
        .map(|ticket| {
            ticket.map(|t| {
                router
                    .collect(t)
                    .expect("drained")
                    .expect("admitted batches always answer")
            })
        })
        .collect();
    let stats = router.stats();
    OverloadRun {
        admitted: stats.admitted,
        shed: stats.shed,
        queued: stats.queued,
        interactive_p99: stats
            .class_latency(QosClass::Interactive)
            .p99()
            .expect("the schedule carries interactive traffic"),
        bulk_p99: stats.class_latency(QosClass::Bulk).p99(),
        outcomes,
    }
}

/// Appends one custom record to the `BENCH_JSON` artifact (same JSON-lines
/// file the criterion shim writes its rows to).
fn append_bench_record(record: &str) {
    use std::io::Write;
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{record}"));
    if let Err(e) = written {
        eprintln!("BENCH_JSON: could not append to {path}: {e}");
    }
}

fn bench_overload(c: &mut Criterion) {
    let g = random_graph(OVERLOAD_N, DEFAULT_SEED);
    let output = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    // 10× the virtual service capacity for ~100ms of offered traffic, and
    // an unloaded (0.5×) reference of the same shape.
    let saturated = overload_schedule(10.0, 2000, 2400, 51);
    let unloaded = overload_schedule(0.5, 400, 48, 52);
    let server = || build_server(&output, 0, 64);

    // Gates before timing. (1) The simulation is deterministic end to end.
    let on = drive_overload(server(), &saturated, true);
    let twin = drive_overload(server(), &saturated, true);
    assert_eq!(on.outcomes, twin.outcomes, "overload run must reproduce");
    assert_eq!((on.admitted, on.shed), (twin.admitted, twin.shed));
    // (2) Overload is real and survivable: bulk sheds and queues, yet every
    // admitted batch answers (collect() above would have panicked).
    assert!(on.shed > 0, "10× saturation must shed");
    assert!(
        on.admitted > 0,
        "admission must keep serving under overload"
    );
    assert!(on.queued > 0, "admitted work must queue under overload");
    // (3) The QoS knee holds: interactive p99 under 10× saturation stays
    // within 3× of the unloaded p99 while the limiter is on.
    let base = drive_overload(server(), &unloaded, true);
    let loaded_ratio =
        on.interactive_p99.as_secs_f64() / base.interactive_p99.as_secs_f64().max(1e-12);
    assert!(
        loaded_ratio <= 3.0,
        "interactive p99 degraded {loaded_ratio:.2}x under 10x saturation \
         (loaded {:?} vs unloaded {:?})",
        on.interactive_p99,
        base.interactive_p99
    );
    // (4) The limiter-off baseline shows what admission control buys:
    // identical schedule, no shedding, strict FIFO.
    let off = drive_overload(server(), &saturated, false);
    assert_eq!(off.shed, 0, "the limiter-off baseline never sheds");
    let off_ratio = off.interactive_p99.as_secs_f64() / on.interactive_p99.as_secs_f64().max(1e-12);
    assert!(
        off_ratio > 1.0,
        "limiter off must be worse for interactive p99 (measured {off_ratio:.2}x)"
    );
    println!(
        "overload_limited: admitted {} shed {} queued {} interactive_p99 {:?} \
         ({loaded_ratio:.2}x unloaded {:?}) bulk_p99 {:?}",
        on.admitted, on.shed, on.queued, on.interactive_p99, base.interactive_p99, on.bulk_p99
    );
    println!(
        "overload_limiter_off: interactive_p99 {:?} = {off_ratio:.2}x the limited p99",
        off.interactive_p99
    );
    append_bench_record(&format!(
        "{{\"bench\":\"overload/limited_10x\",\"admitted\":{},\"shed\":{},\"queued\":{},\
         \"interactive_p99_ns\":{},\"unloaded_interactive_p99_ns\":{},\
         \"ratio_vs_unloaded\":{loaded_ratio:.4}}}",
        on.admitted,
        on.shed,
        on.queued,
        on.interactive_p99.as_nanos(),
        base.interactive_p99.as_nanos(),
    ));
    append_bench_record(&format!(
        "{{\"bench\":\"overload/limiter_off_10x\",\"interactive_p99_ns\":{},\
         \"ratio_vs_limited\":{off_ratio:.4}}}",
        off.interactive_p99.as_nanos(),
    ));

    // Timed rows: real wall time of driving the full simulation (virtual
    // clock, real answers) — the runtime's scheduling overhead trajectory.
    let mut group = c.benchmark_group("overload");
    group.sample_size(10);
    group.bench_function("driven_10x_limited", |b| {
        b.iter(|| drive_overload(server(), &saturated, true).admitted)
    });
    group.bench_function("driven_10x_limiter_off", |b| {
        b.iter(|| drive_overload(server(), &saturated, false).admitted)
    });
    group.finish();
}

criterion_group!(serving, bench_serving);
criterion_main!(serving);
