//! Serving-layer throughput: batched [`SpannerServer`] queries over a
//! frozen greedy spanner, uniform vs. Zipf-hotspot workloads, cached vs.
//! uncached, at several worker-thread counts.
//!
//! The load-bearing comparison is `zipf_uncached` vs. `zipf_cached`: on
//! skewed traffic the shortest-path-tree cache answers hot sources in
//! `O(1)` per target, so the cached rows must beat the uncached ones — the
//! `cache_speedup_zipf` line printed by this bench records the measured
//! ratio, and CI archives the JSON summary (`BENCH_JSON`) as the read-path
//! perf trajectory. Before timing anything the bench asserts the serving
//! determinism contract: answers bit-identical across thread counts
//! {1, 2, 8} and across cache states.
//!
//! Run with `cargo bench --bench serving_throughput`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::serve::{Answer, Query, SpannerServer};
use greedy_spanner::workload::QueryWorkload;
use greedy_spanner::{Spanner, SpannerOutput};
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};
use spanner_graph::QueuePolicy;

const N: usize = 2000;
const BATCH: usize = 2048;

/// The point-query engine configurations the `point_query_engines` group
/// compares: (name, queue policy, relayout, landmark count).
const ENGINE_CONFIGS: [(&str, QueuePolicy, bool, usize); 3] = [
    ("heap", QueuePolicy::Heap, false, 0),
    ("bucket", QueuePolicy::Auto, true, 0),
    ("bucket_alt", QueuePolicy::Auto, true, 4),
];

/// Freezes a fresh server off one shared construction result — the ~1s
/// n=2000 greedy build runs once per bench invocation, not once per server.
/// Uses the builder defaults: bucket queue, relayout, landmarks.
fn build_server(output: &SpannerOutput, threads: usize, cache: usize) -> SpannerServer {
    output
        .clone()
        .serve()
        .threads(threads)
        .cache_capacity(cache)
        .finish()
}

/// Like [`build_server`] but pinning one explicit engine configuration.
fn build_engine_server(
    output: &SpannerOutput,
    threads: usize,
    cache: usize,
    policy: QueuePolicy,
    reorder: bool,
    landmarks: usize,
) -> SpannerServer {
    output
        .clone()
        .serve()
        .threads(threads)
        .cache_capacity(cache)
        .queue_policy(policy)
        .reorder(reorder)
        .landmarks(landmarks)
        .finish()
}

/// Answers `batch` once on a fresh server per configuration and asserts the
/// results are identical everywhere — across thread counts, cache states
/// and every point-query engine configuration — the determinism contract
/// this bench publishes numbers under.
fn assert_identical_answers(output: &SpannerOutput, batch: &[Query]) -> Vec<Answer> {
    let mut reference_server = build_engine_server(output, 1, 0, QueuePolicy::Heap, false, 0);
    let reference = reference_server.answer_batch(batch).expect("valid batch");
    for threads in [1, 2, 8] {
        for cache in [0, 64] {
            let mut server = build_server(output, threads, cache);
            let cold = server.answer_batch(batch).expect("valid batch");
            let warm = server.answer_batch(batch).expect("valid batch");
            assert_eq!(cold, reference, "threads={threads} cache={cache}");
            assert_eq!(warm, reference, "warm, threads={threads} cache={cache}");
        }
    }
    for (name, policy, reorder, landmarks) in ENGINE_CONFIGS {
        let mut server = build_engine_server(output, 2, 64, policy, reorder, landmarks);
        let cold = server.answer_batch(batch).expect("valid batch");
        let warm = server.answer_batch(batch).expect("valid batch");
        assert_eq!(cold, reference, "engine config {name}");
        assert_eq!(warm, reference, "warm, engine config {name}");
    }
    reference
}

fn bench_serving(c: &mut Criterion) {
    let g = random_graph(N, DEFAULT_SEED);
    let output = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    let uniform = QueryWorkload::uniform(N)
        .expect("valid workload")
        .queries(BATCH)
        .seed(11)
        .bound(40.0)
        .generate();
    let zipf = QueryWorkload::zipf(N, 1.1)
        .expect("valid workload")
        .queries(BATCH)
        .seed(12)
        .bound(40.0)
        .generate();
    let mixed = QueryWorkload::mixed(N, false)
        .expect("valid workload")
        .queries(BATCH)
        .seed(13)
        .generate();

    // Determinism gate first: the numbers below describe one result set.
    assert_identical_answers(&output, &zipf);

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);

    for threads in [1, 2] {
        // Uniform traffic: the cache-hostile baseline (hit rate ~0).
        let mut server = build_server(&output, threads, 0);
        group.bench_with_input(
            BenchmarkId::new("uniform_uncached", threads),
            &threads,
            |b, _| b.iter(|| server.answer_batch(&uniform).expect("valid batch").len()),
        );

        // Zipf hotspots, no cache vs. warm cache: the headline pair.
        let mut uncached = build_server(&output, threads, 0);
        group.bench_with_input(
            BenchmarkId::new("zipf_uncached", threads),
            &threads,
            |b, _| b.iter(|| uncached.answer_batch(&zipf).expect("valid batch").len()),
        );
        let mut cached = build_server(&output, threads, 128);
        cached.answer_batch(&zipf).expect("warms the tree cache");
        group.bench_with_input(
            BenchmarkId::new("zipf_cached", threads),
            &threads,
            |b, _| b.iter(|| cached.answer_batch(&zipf).expect("valid batch").len()),
        );

        // Mixed read profile with a live cache — the realistic shape.
        let mut mixed_server = build_server(&output, threads, 128);
        group.bench_with_input(
            BenchmarkId::new("mixed_cached", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    mixed_server
                        .answer_batch(&mixed)
                        .expect("valid batch")
                        .len()
                })
            },
        );
    }
    group.finish();

    // The point-query acceleration stack through the serving layer:
    // tight-bound uniform distance traffic (the workload the bucket queue
    // and ALT pruning target — a loose bound degenerates to full searches
    // no queue can save) with the engine pinned to each configuration.
    // Answers were asserted identical above; these rows record what the
    // stack buys end-to-end, serving overhead included.
    let bounded = QueryWorkload::uniform(N)
        .expect("valid workload")
        .queries(BATCH)
        .seed(14)
        .bound(6.0)
        .generate();
    assert_identical_answers(&output, &bounded);
    let mut engines = c.benchmark_group("point_query_engines");
    engines.sample_size(10);
    for (name, policy, reorder, landmarks) in ENGINE_CONFIGS {
        let mut server = build_engine_server(&output, 1, 0, policy, reorder, landmarks);
        engines.bench_function(BenchmarkId::new("bounded_uniform", name), |b| {
            b.iter(|| server.answer_batch(&bounded).expect("valid batch").len())
        });
    }
    engines.finish();

    // The acceptance ratio, measured directly so the artifact carries it
    // even when per-bench samples are noisy: cached vs. uncached wall time
    // on the Zipf workload (single-threaded, multiple rounds).
    let mut uncached = build_server(&output, 1, 0);
    let mut cached = build_server(&output, 1, 128);
    cached.answer_batch(&zipf).expect("warms the tree cache");
    let rounds = 5;
    let t0 = Instant::now();
    for _ in 0..rounds {
        uncached.answer_batch(&zipf).expect("valid batch");
    }
    let uncached_time = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..rounds {
        cached.answer_batch(&zipf).expect("valid batch");
    }
    let cached_time = t1.elapsed();
    let speedup = uncached_time.as_secs_f64() / cached_time.as_secs_f64().max(1e-12);
    println!(
        "cache_speedup_zipf: uncached {uncached_time:?} / cached {cached_time:?} = {speedup:.2}x \
         (hit rate {:.1}%)",
        100.0 * cached.stats().cache_hit_rate().unwrap_or(0.0)
    );
    assert!(
        speedup > 1.0,
        "the SPT cache must beat uncached point-to-point queries on Zipf \
         traffic (measured {speedup:.2}x)"
    );
}

criterion_group!(serving, bench_serving);
criterion_main!(serving);
