//! E9 — the degree blow-up phenomenon: the greedy (1+ε)-spanner on the star
//! metric (degree n − 1) against uniform planar points (small degree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};
use spanner_metric::generators::star_metric;

fn bench_degree_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_greedy_degree_blowup");
    group.sample_size(10);
    let greedy = Spanner::greedy().stretch(1.5);
    for n in [100usize, 200] {
        let star = star_metric(n);
        group.bench_with_input(BenchmarkId::new("star_metric", n), &star, |b, star| {
            b.iter(|| {
                let out = greedy.build(star).expect("non-empty");
                assert_eq!(out.spanner.max_degree(), n - 1);
                out.spanner.num_edges()
            })
        });
        let uniform = uniform_square(n, DEFAULT_SEED);
        group.bench_with_input(BenchmarkId::new("uniform_2d", n), &uniform, |b, uniform| {
            b.iter(|| {
                let out = greedy.build(uniform).expect("non-empty");
                assert!(out.spanner.max_degree() < n / 4);
                out.spanner.num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_degree_blowup);
criterion_main!(benches);
