//! Persistence-path costs: snapshot write/load, kill/restart recovery
//! (snapshot + WAL replay) vs. rebuilding the greedy spanner from scratch.
//!
//! The load-bearing comparison is `recover_replay` vs. `full_rebuild`: a
//! restarted server loads the newest snapshot and replays the WAL suffix
//! through the deterministic apply path, which must beat re-running the
//! O(n·m)-flavoured greedy construction on the final graph. The
//! `replay_vs_rebuild` line records the measured ratio (the gate asserts
//! speedup > 1x), and CI archives the JSON summary (`BENCH_JSON`,
//! `bench-persistence.jsonl`) as the persistence perf trajectory.
//!
//! Before timing anything the bench asserts the recovery contract: the
//! recovered spanner is bit-identical to the killed one.
//!
//! Run with `cargo bench --bench persistence`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use greedy_spanner::update::{LiveSpanner, UpdateBatch};
use greedy_spanner::workload::{LiveWorkload, StreamEvent};
use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};
use spanner_store::{list_snapshots, Snapshot};

const N: usize = 500;
const STRETCH: f64 = 2.0;
const BATCHES: usize = 8;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("greedy-spanner-persistence-bench")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_persistence(c: &mut Criterion) {
    let g = random_graph(N, DEFAULT_SEED);
    let output = Spanner::greedy()
        .stretch(STRETCH)
        .build(&g)
        .expect("valid stretch");
    let batches: Vec<UpdateBatch> = LiveWorkload::new(N)
        .expect("valid universe")
        .update_fraction(1.0)
        .expect("valid fraction")
        .insert_fraction(0.6)
        .expect("valid fraction")
        .rounds(BATCHES)
        .updates_per_batch(12)
        .weights(1.0, 10.0)
        .expect("valid range")
        .seed(DEFAULT_SEED)
        .generate(&g)
        .into_iter()
        .map(|event| match event {
            StreamEvent::Updates(batch) => batch,
            StreamEvent::Queries(_) => unreachable!("update fraction is 1.0"),
        })
        .collect();

    // The "killed" store every recovery below starts from. A service that
    // checkpoints periodically loses only the WAL suffix past the newest
    // snapshot on a crash; model that by checkpointing into the store one
    // batch before the kill, leaving `REPLAY_SUFFIX` batches to replay.
    const REPLAY_SUFFIX: usize = 1;
    let checkpoint_after = BATCHES - REPLAY_SUFFIX;
    let store = bench_dir("store");
    let mut victim = LiveSpanner::new(output.clone(), &g).expect("greedy has a stretch");
    victim.persist_to(&store).expect("fresh store");
    for batch in &batches[..checkpoint_after] {
        victim.apply(batch).expect("valid stream");
    }
    let name = spanner_store::snapshot_file_name(victim.stats().batches, victim.epoch());
    victim.checkpoint(&store.join(name)).expect("checkpoint");
    for batch in &batches[checkpoint_after..] {
        victim.apply(batch).expect("valid stream");
    }
    let final_state = victim.original().to_weighted_graph();
    let final_spanner = victim.spanner().to_weighted_graph();

    // Contract gate before any timing: recovery is bit-identical.
    {
        let recovered = LiveSpanner::recover(&store).expect("store recovers");
        assert_eq!(
            recovered.live.spanner().to_weighted_graph(),
            final_spanner,
            "recovery must restore the killed spanner bit-identically"
        );
    }

    let snapshot_path = {
        let dir = bench_dir("checkpoints");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bench.snap");
        victim.checkpoint(&path).expect("checkpoint");
        path
    };

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);

    // Serialize + checksum + fsync + rename of a full snapshot.
    group.bench_function("snapshot_write", |b| {
        let target = snapshot_path.with_file_name("rewrite.snap");
        b.iter(|| {
            victim.checkpoint(&target).expect("checkpoint");
            std::fs::metadata(&target).expect("written").len()
        })
    });

    // Verified read of the same snapshot (checksums + graph restore).
    group.bench_function("snapshot_load", |b| {
        b.iter(|| {
            let snapshot = Snapshot::read(&snapshot_path).expect("valid snapshot");
            snapshot
                .spanner
                .restore(&snapshot_path)
                .expect("valid image")
                .num_edges()
        })
    });

    // Kill/restart: newest snapshot + deterministic WAL replay.
    group.bench_function("recover_replay", |b| {
        b.iter(|| {
            LiveSpanner::recover(&store)
                .expect("store recovers")
                .live
                .spanner()
                .num_edges()
        })
    });

    // The alternative a snapshotless service faces: greedy from scratch.
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            Spanner::greedy()
                .stretch(STRETCH)
                .build(&final_state)
                .expect("valid stretch")
                .spanner
                .num_edges()
        })
    });
    group.finish();

    // The acceptance ratio, measured directly so the artifact carries it
    // even when per-bench samples are noisy.
    let rounds = 3;
    let mut replay = Duration::ZERO;
    let mut rebuild = Duration::ZERO;
    for _ in 0..rounds {
        let t0 = Instant::now();
        LiveSpanner::recover(&store).expect("store recovers");
        replay += t0.elapsed();
        let t1 = Instant::now();
        Spanner::greedy()
            .stretch(STRETCH)
            .build(&final_state)
            .expect("valid stretch");
        rebuild += t1.elapsed();
    }
    let speedup = rebuild.as_secs_f64() / replay.as_secs_f64().max(1e-12);
    let snapshots = list_snapshots(&store).expect("listable").len();
    println!(
        "replay_vs_rebuild: rebuild {rebuild:?} / recover {replay:?} = {speedup:.2}x \
         ({snapshots} snapshot(s), {REPLAY_SUFFIX}-batch WAL suffix of {BATCHES}, n = {N})"
    );
    assert!(
        speedup > 1.0,
        "snapshot + WAL replay must beat a from-scratch greedy rebuild \
         (measured {speedup:.2}x)"
    );

    let _ = std::fs::remove_dir_all(std::env::temp_dir().join("greedy-spanner-persistence-bench"));
}

criterion_group!(persistence, bench_persistence);
criterion_main!(persistence);
