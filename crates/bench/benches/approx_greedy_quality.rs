//! E6a — Theorem 6: the approximate-greedy construction and its quality
//! guarantees (stretch, subgraph-of-base, degree bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::approx_greedy::approximate_greedy_spanner;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};

fn bench_approx_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6a_approx_greedy_quality");
    group.sample_size(10);
    for n in [200usize, 400] {
        let points = uniform_square(n, DEFAULT_SEED);
        group.bench_with_input(BenchmarkId::new("approx_greedy", n), &points, |b, points| {
            b.iter(|| {
                let result = approximate_greedy_spanner(points, 0.5).expect("non-empty");
                assert!(result.spanner.is_edge_subgraph_of(&result.base));
                result.spanner.num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx_quality);
criterion_main!(benches);
