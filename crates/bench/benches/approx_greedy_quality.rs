//! E6a — Theorem 6: the approximate-greedy construction and its quality
//! guarantees (stretch target, connectivity, sparsity vs the exact greedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};

fn bench_approx_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6a_approx_greedy_quality");
    group.sample_size(10);
    let approx = Spanner::approx_greedy().epsilon(0.5);
    for n in [200usize, 400] {
        let points = uniform_square(n, DEFAULT_SEED);
        group.bench_with_input(
            BenchmarkId::new("approx_greedy", n),
            &points,
            |b, points| {
                b.iter(|| {
                    let out = approx.build(points).expect("non-empty");
                    assert!(spanner_graph::connectivity::is_connected(&out.spanner));
                    out.spanner.num_edges()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_approx_quality);
criterion_main!(benches);
