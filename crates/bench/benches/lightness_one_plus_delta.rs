//! E3 — Corollary 5: the greedy O(log n / δ)-spanner (linear size, lightness
//! at most 1 + δ) on random graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::analysis::lightness;
use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};

fn bench_lightness(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_lightness_one_plus_delta");
    group.sample_size(10);
    let n = 300usize;
    let g = random_graph(n, DEFAULT_SEED);
    for delta in [0.25f64, 1.0] {
        let t = (n as f64).log2() / delta;
        let greedy = Spanner::greedy().stretch(t);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("delta_{delta}")),
            &t,
            |b, &_t| {
                b.iter(|| {
                    let out = greedy.build(&g).expect("valid stretch");
                    let l = lightness(&g, &out.spanner);
                    assert!(l <= 1.0 + delta + 1e-9, "lightness {l} exceeds 1 + {delta}");
                    out.spanner.num_edges()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lightness);
criterion_main!(benches);
