//! E5 — Corollary 10: greedy (1+ε)-spanner of doubling metrics (uniform and
//! clustered planar point sets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{clustered_square, uniform_square, DEFAULT_SEED};

fn bench_doubling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_doubling_size_lightness");
    group.sample_size(10);
    let n = 200usize;
    let uniform = uniform_square(n, DEFAULT_SEED);
    let clustered = clustered_square(n, DEFAULT_SEED);
    for eps in [0.5f64, 1.0] {
        let greedy = Spanner::greedy().stretch(1.0 + eps);
        group.bench_with_input(
            BenchmarkId::new("greedy_uniform", format!("eps_{eps}")),
            &eps,
            |b, &_eps| {
                b.iter(|| {
                    greedy
                        .build(&uniform)
                        .expect("non-empty")
                        .spanner
                        .num_edges()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_clustered", format!("eps_{eps}")),
            &eps,
            |b, &_eps| {
                b.iter(|| {
                    greedy
                        .build(&clustered)
                        .expect("non-empty")
                        .spanner
                        .num_edges()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_doubling);
criterion_main!(benches);
