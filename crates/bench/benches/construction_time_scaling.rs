//! E6b — construction-time scaling: exact greedy (quadratic candidate set)
//! against the approximate-greedy algorithm (linear candidate set drawn from
//! the bounded-degree base spanner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::approx_greedy::approximate_greedy_spanner;
use greedy_spanner::greedy_metric::greedy_spanner_of_metric;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6b_construction_time_scaling");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let points = uniform_square(n, DEFAULT_SEED);
        group.bench_with_input(BenchmarkId::new("exact_greedy", n), &points, |b, points| {
            b.iter(|| {
                greedy_spanner_of_metric(points, 1.5)
                    .expect("non-empty")
                    .spanner
                    .num_edges()
            })
        });
        group.bench_with_input(BenchmarkId::new("approx_greedy", n), &points, |b, points| {
            b.iter(|| {
                approximate_greedy_spanner(points, 0.5)
                    .expect("non-empty")
                    .spanner
                    .num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
