//! E6b — construction-time scaling: exact greedy (quadratic candidate set)
//! against the approximate-greedy algorithm (linear candidate set drawn from
//! the bounded-degree base spanner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{uniform_square, DEFAULT_SEED};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6b_construction_time_scaling");
    group.sample_size(10);
    let exact = Spanner::greedy().stretch(1.5);
    let approx = Spanner::approx_greedy().epsilon(0.5);
    for n in [100usize, 200, 400] {
        let points = uniform_square(n, DEFAULT_SEED);
        group.bench_with_input(BenchmarkId::new("exact_greedy", n), &points, |b, points| {
            b.iter(|| exact.build(points).expect("non-empty").spanner.num_edges())
        });
        group.bench_with_input(
            BenchmarkId::new("approx_greedy", n),
            &points,
            |b, points| b.iter(|| approx.build(points).expect("non-empty").spanner.num_edges()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
