//! E4 — Lemma 3: verifying that the greedy spanner is its own unique
//! t-spanner (the self-optimality check used by the property tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::optimality::is_own_unique_spanner;
use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, DEFAULT_SEED};

fn bench_self_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_self_spanner_check");
    group.sample_size(10);
    let g = random_graph(120, DEFAULT_SEED);
    for t in [1.5f64, 3.0] {
        let spanner = Spanner::greedy()
            .stretch(t)
            .build(&g)
            .expect("valid stretch")
            .into_spanner();
        group.bench_with_input(
            BenchmarkId::new("lemma3_check", format!("t_{t}")),
            &t,
            |b, &t| {
                b.iter(|| {
                    let unique = is_own_unique_spanner(&spanner, t).expect("valid stretch");
                    assert!(unique);
                    unique
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_self_spanner);
criterion_main!(benches);
