//! Micro-benchmarks of the substrates every experiment leans on: Dijkstra
//! (legacy free functions vs the CSR-backed [`DijkstraEngine`]), Kruskal,
//! net-hierarchy construction and WSPD construction.
//!
//! The `bounded_query_*` pair is the load-bearing comparison: the greedy
//! spanner issues one bounded distance query per candidate edge, so the
//! legacy-vs-CSR gap here is the construction-time gap of every
//! engine-backed algorithm. CI runs this bench with a tiny sample count
//! (`BENCH_SAMPLE_SIZE`) and archives the JSON summary (`BENCH_JSON`) as the
//! perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_bench::workloads::{random_graph, uniform_square, DEFAULT_SEED};
use spanner_graph::dijkstra::{bounded_distance, shortest_path_tree};
use spanner_graph::mst::kruskal;
use spanner_graph::parallel::EnginePool;
use spanner_graph::{
    CsrGraph, DijkstraEngine, Landmarks, QueuePolicy, RelaxKernel, VertexId, WeightedGraph,
};
use spanner_metric::net::NetHierarchy;
use spanner_metric::wspd::{well_separated_pairs, SplitTree};

/// A deterministic batch of bounded queries spread over the graph.
fn query_batch(n: usize, count: usize) -> Vec<(VertexId, VertexId, f64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919) % n;
            let t = (i * 104729 + n / 2) % n;
            (VertexId(s), VertexId(t), 4.0 + (i % 5) as f64)
        })
        .collect()
}

/// An exact bitwise digest of a query batch's answers through one engine:
/// every distance's bit pattern is folded in, so two engines produce the
/// same digest iff they returned bit-identical answers in the same order.
fn answer_digest(
    engine: &mut DijkstraEngine,
    csr: &CsrGraph,
    queries: &[(VertexId, VertexId, f64)],
) -> u64 {
    queries
        .iter()
        .fold(0x9E37_79B9_7F4A_7C15, |acc, &(s, t, bound)| {
            let bits = match engine.bounded_distance(csr, s, t, bound) {
                Some(d) => d.to_bits(),
                None => u64::MAX,
            };
            acc.rotate_left(7) ^ bits
        })
}

/// An ER-like graph far too large for the engine's `dist`/`state` lanes to
/// stay cache-resident: a random spanning tree plus `extra_per_vertex · n`
/// uniformly sampled edges (the O(n²) library generator is impractical at
/// this size). Weights and mean degree match `random_graph`.
fn large_sparse_graph(n: usize, extra_per_vertex: usize, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(VertexId(v), VertexId(parent), rng.gen_range(1.0..10.0));
    }
    for _ in 0..n * extra_per_vertex {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        g.add_edge(VertexId(u), VertexId(v), rng.gen_range(1.0..10.0));
    }
    g
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_micro");
    group.sample_size(20);

    let g = random_graph(500, DEFAULT_SEED);
    group.bench_function("dijkstra_sssp_n500", |b| {
        b.iter(|| shortest_path_tree(&g, VertexId(0)).distances().len())
    });
    group.bench_function("kruskal_mst_n500", |b| b.iter(|| kruskal(&g).total_weight));

    // Legacy vs CSR: the same bounded-query batch through the allocating
    // free function and through one reused engine.
    let big = random_graph(2000, DEFAULT_SEED);
    let csr = CsrGraph::from(&big);
    let queries = query_batch(big.num_vertices(), 64);
    group.bench_function("bounded_query_legacy_n2000", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(s, t, bound)| bounded_distance(&big, s, t, bound).is_some())
                .count()
        })
    });
    let mut engine = DijkstraEngine::with_capacity(big.num_vertices());
    group.bench_function("bounded_query_csr_engine_n2000", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(s, t, bound)| engine.bounded_distance(&csr, s, t, bound).is_some())
                .count()
        })
    });

    let points = uniform_square(300, DEFAULT_SEED);
    group.bench_function("net_hierarchy_n300", |b| {
        b.iter(|| NetHierarchy::build(&points).height())
    });
    group.bench_function("split_tree_wspd_n300", |b| {
        b.iter(|| {
            let tree = SplitTree::build(&points);
            well_separated_pairs(&tree, 4.0).len()
        })
    });
    group.finish();
}

/// The acceleration-stack comparison the serving layer leans on: the same
/// bounded point-query batch over the **er2000 greedy spanner** through
/// three engine configurations — binary heap, bucket queue, and bucket
/// queue + ALT landmark pruning. Before timing anything, the settled-vertex
/// counts of the heap and ALT configurations are measured from engine
/// stats (outside the timed region) and the heap/ALT ratio is asserted
/// `> 1.0` — the acceptance gate for the pruning stack. The `BENCH_JSON`
/// artifact carries the timed rows; the printed `point_query_settled` line
/// carries the ratio.
fn bench_point_query_engines(c: &mut Criterion) {
    let g = random_graph(2000, DEFAULT_SEED);
    let spanner = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch")
        .spanner;
    let csr = CsrGraph::from(&spanner);
    let landmarks = Landmarks::build_degree_ranked(&csr, 4);
    let queries = query_batch(csr.num_vertices(), 256);
    let n = csr.num_vertices();

    let mut heap_engine = DijkstraEngine::with_capacity(n);
    heap_engine.set_queue_policy(QueuePolicy::Heap);
    heap_engine.set_relax_kernel(RelaxKernel::Scalar);
    let mut bucket_engine = DijkstraEngine::with_capacity(n);
    let mut alt_engine = DijkstraEngine::with_capacity(n);
    let mut batched_engine = DijkstraEngine::with_capacity(n);
    batched_engine.set_relax_kernel(RelaxKernel::Batched);

    let run_heap = |engine: &mut DijkstraEngine| {
        queries
            .iter()
            .filter(|&&(s, t, bound)| engine.bounded_distance(&csr, s, t, bound).is_some())
            .count()
    };
    let run_alt = |engine: &mut DijkstraEngine| {
        queries
            .iter()
            .filter(|&&(s, t, bound)| {
                engine
                    .bounded_distance_landmarked(&csr, &landmarks, s, t, bound)
                    .is_some()
            })
            .count()
    };

    // The acceptance gate, measured outside the timed region: the three
    // configurations agree on every answer, and ALT pruning settles
    // strictly fewer vertices than the plain heap on the same batch.
    let heap_hits = run_heap(&mut heap_engine);
    let bucket_hits = run_heap(&mut bucket_engine);
    let alt_hits = run_alt(&mut alt_engine);
    assert_eq!(heap_hits, bucket_hits, "bucket queue changed an answer");
    assert_eq!(heap_hits, alt_hits, "landmark pruning changed an answer");
    // The kernel digest gate: scalar and batched engines must return
    // bit-identical distances for the whole batch, in order.
    let scalar_digest = answer_digest(&mut heap_engine, &csr, &queries);
    let batched_digest = answer_digest(&mut batched_engine, &csr, &queries);
    assert_eq!(
        scalar_digest, batched_digest,
        "the batched relax kernel changed an answer on the er2000 spanner"
    );
    let settled_heap = heap_engine.stats().settled_vertices;
    let settled_alt = alt_engine.stats().settled_vertices;
    let reduction = settled_heap as f64 / (settled_alt as f64).max(1.0);
    println!(
        "point_query_settled: heap {settled_heap} bucket {} alt {settled_alt} \
         ({reduction:.2}x settled-vertex reduction, pruned {} by bound/landmarks)",
        bucket_engine.stats().settled_vertices,
        alt_engine.stats().pruned_by_bound,
    );
    assert!(
        reduction > 1.0,
        "ALT pruning must settle fewer vertices than the plain heap on the \
         er2000 bounded batch (measured {reduction:.2}x)"
    );

    let mut group = c.benchmark_group("point_query_engines");
    group.sample_size(20);
    group.bench_function("heap_n2000", |b| b.iter(|| run_heap(&mut heap_engine)));
    group.bench_function("bucket_n2000", |b| b.iter(|| run_heap(&mut bucket_engine)));
    group.bench_function("bucket_alt_n2000", |b| b.iter(|| run_alt(&mut alt_engine)));
    group.bench_function("batched_kernel_n2000", |b| {
        b.iter(|| run_heap(&mut batched_engine))
    });
    group.finish();
}

/// The relax-kernel comparison, gated behind `BENCH_RELAX_KERNEL=1`: the
/// same bounded point-query batch (er2000-style mixed bounds) over an
/// ER-like graph large enough that the packed rows and the engine's
/// `dist`/`state` lanes fall out of cache — the regime every lane of the
/// batched kernel's pipeline (cohort drain, edge-line lookahead, `state`
/// priming, branchless filter) is built for. Cache-resident graphs sit at
/// parity by construction (the per-edge work is identical; only the memory
/// schedule differs), which is why the er2000 graph above only carries
/// digest rows. Asserts, outside the timed region: bit-identical digests
/// between kernels, and a best-of-5 batched speedup `≥ 1.3×` — the
/// acceptance gate for the kernel. Also asserts `Auto` does not regress a
/// short-row path graph onto the batched kernel. `BENCH_RELAX_N` /
/// `BENCH_RELAX_BOUND` override the graph size and base query bound for
/// exploration; the defaults are the gate configuration.
fn bench_relax_kernel(c: &mut Criterion) {
    if std::env::var("BENCH_RELAX_KERNEL").map_or(true, |v| v.is_empty() || v == "0") {
        return;
    }
    let n = std::env::var("BENCH_RELAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    let big = large_sparse_graph(n, 5, DEFAULT_SEED);
    let csr = CsrGraph::from(&big);
    let bound_base: f64 = std::env::var("BENCH_RELAX_BOUND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8.0);
    let queries: Vec<(VertexId, VertexId, f64)> = query_batch(n, 128)
        .into_iter()
        .enumerate()
        .map(|(i, (s, t, _))| (s, t, bound_base + (i % 5) as f64))
        .collect();

    let mut scalar = DijkstraEngine::with_capacity_for(n, big.num_edges());
    scalar.set_queue_policy(QueuePolicy::Heap);
    scalar.set_relax_kernel(RelaxKernel::Scalar);
    let mut batched = DijkstraEngine::with_capacity_for(n, big.num_edges());
    batched.set_queue_policy(QueuePolicy::Heap);
    batched.set_relax_kernel(RelaxKernel::Batched);

    assert_eq!(
        answer_digest(&mut scalar, &csr, &queries),
        answer_digest(&mut batched, &csr, &queries),
        "the batched relax kernel changed an answer on the out-of-cache batch"
    );

    // The speed gate, best-of-5 per kernel (min, not mean: the engines are
    // warm and deterministic, so the minimum is the least-noisy estimate).
    let best_of = |engine: &mut DijkstraEngine| {
        (0..5)
            .map(|_| {
                let start = std::time::Instant::now();
                let digest = answer_digest(engine, &csr, &queries);
                let elapsed = start.elapsed();
                assert_ne!(digest, 0); // keep the work observable
                elapsed
            })
            .min()
            .expect("five runs")
    };
    let scalar_time = best_of(&mut scalar);
    let batched_time = best_of(&mut batched);
    let speedup = scalar_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-12);
    println!(
        "relax_kernel_speedup: scalar {:?} batched {:?} ({speedup:.2}x, \
         {} rows batched, {} edges gathered, {} committed)",
        scalar_time,
        batched_time,
        batched.stats().kernel.rows_batched,
        batched.stats().kernel.edges_gathered,
        batched.stats().kernel.candidates_committed,
    );
    assert!(
        speedup >= 1.3,
        "the batched kernel must be >= 1.3x faster than scalar on the \
         out-of-cache bounded batch (measured {speedup:.2}x)"
    );

    // No-regression guard: on a short-row path graph `Auto` must stay on
    // the scalar kernel (batching degree-2 rows would only add staging
    // overhead).
    let path =
        WeightedGraph::from_edges(1000, (0..999).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())
            .expect("valid path graph");
    let path_csr = CsrGraph::from(&path);
    let mut auto_engine = DijkstraEngine::with_capacity_for(1000, 999);
    for i in 0..64 {
        let _ = auto_engine.bounded_distance(
            &path_csr,
            VertexId(i * 13 % 1000),
            VertexId(i * 31 % 1000),
            40.0,
        );
    }
    assert_eq!(
        auto_engine.stats().kernel.rows_batched,
        0,
        "Auto must keep short-row graphs on the scalar kernel"
    );

    let mut group = c.benchmark_group("relax_kernel");
    group.sample_size(10);
    group.bench_function("scalar_kernel_er4m", |b| {
        b.iter(|| answer_digest(&mut scalar, &csr, &queries))
    });
    group.bench_function("batched_kernel_er4m", |b| {
        b.iter(|| answer_digest(&mut batched, &csr, &queries))
    });
    group.finish();
}

/// The pool fan-out in isolation: one fixed batch of bounded queries mapped
/// across an [`EnginePool`] snapshot at 1/2/4/8 workers. This is the pure
/// substrate half of the `parallel_scaling` story — no greedy commit phase,
/// so it measures the ceiling the construction-level bench can reach.
fn bench_parallel_scaling(c: &mut Criterion) {
    let big = random_graph(2000, DEFAULT_SEED);
    let csr = CsrGraph::from(&big);
    let queries = query_batch(big.num_vertices(), 512);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let mut pool = EnginePool::with_capacity_for(threads, big.num_vertices(), big.num_edges());
        let mut out = vec![false; queries.len()];
        group.bench_function(BenchmarkId::new("pool_filter_batch_n2000", threads), |b| {
            b.iter(|| {
                pool.map_batch(
                    csr.snapshot(),
                    &queries,
                    &mut out,
                    |engine, graph, &(s, t, bound)| {
                        engine.bounded_distance(graph, s, t, bound).is_some()
                    },
                );
                out.iter().filter(|&&covered| covered).count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_point_query_engines,
    bench_relax_kernel,
    bench_parallel_scaling
);
criterion_main!(benches);
