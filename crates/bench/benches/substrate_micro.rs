//! Micro-benchmarks of the substrates every experiment leans on: Dijkstra,
//! Kruskal, net-hierarchy construction and WSPD construction.

use criterion::{criterion_group, criterion_main, Criterion};

use spanner_bench::workloads::{random_graph, uniform_square, DEFAULT_SEED};
use spanner_graph::dijkstra::shortest_path_tree;
use spanner_graph::mst::kruskal;
use spanner_graph::VertexId;
use spanner_metric::net::NetHierarchy;
use spanner_metric::wspd::{well_separated_pairs, SplitTree};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_micro");
    group.sample_size(20);

    let g = random_graph(500, DEFAULT_SEED);
    group.bench_function("dijkstra_sssp_n500", |b| {
        b.iter(|| shortest_path_tree(&g, VertexId(0)).distances().len())
    });
    group.bench_function("kruskal_mst_n500", |b| b.iter(|| kruskal(&g).total_weight));

    let points = uniform_square(300, DEFAULT_SEED);
    group.bench_function("net_hierarchy_n300", |b| {
        b.iter(|| NetHierarchy::build(&points).height())
    });
    group.bench_function("split_tree_wspd_n300", |b| {
        b.iter(|| {
            let tree = SplitTree::build(&points);
            well_separated_pairs(&tree, 4.0).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
