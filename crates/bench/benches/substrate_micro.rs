//! Micro-benchmarks of the substrates every experiment leans on: Dijkstra
//! (legacy free functions vs the CSR-backed [`DijkstraEngine`]), Kruskal,
//! net-hierarchy construction and WSPD construction.
//!
//! The `bounded_query_*` pair is the load-bearing comparison: the greedy
//! spanner issues one bounded distance query per candidate edge, so the
//! legacy-vs-CSR gap here is the construction-time gap of every
//! engine-backed algorithm. CI runs this bench with a tiny sample count
//! (`BENCH_SAMPLE_SIZE`) and archives the JSON summary (`BENCH_JSON`) as the
//! perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use greedy_spanner::Spanner;
use spanner_bench::workloads::{random_graph, uniform_square, DEFAULT_SEED};
use spanner_graph::dijkstra::{bounded_distance, shortest_path_tree};
use spanner_graph::mst::kruskal;
use spanner_graph::parallel::EnginePool;
use spanner_graph::{CsrGraph, DijkstraEngine, Landmarks, QueuePolicy, VertexId};
use spanner_metric::net::NetHierarchy;
use spanner_metric::wspd::{well_separated_pairs, SplitTree};

/// A deterministic batch of bounded queries spread over the graph.
fn query_batch(n: usize, count: usize) -> Vec<(VertexId, VertexId, f64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919) % n;
            let t = (i * 104729 + n / 2) % n;
            (VertexId(s), VertexId(t), 4.0 + (i % 5) as f64)
        })
        .collect()
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_micro");
    group.sample_size(20);

    let g = random_graph(500, DEFAULT_SEED);
    group.bench_function("dijkstra_sssp_n500", |b| {
        b.iter(|| shortest_path_tree(&g, VertexId(0)).distances().len())
    });
    group.bench_function("kruskal_mst_n500", |b| b.iter(|| kruskal(&g).total_weight));

    // Legacy vs CSR: the same bounded-query batch through the allocating
    // free function and through one reused engine.
    let big = random_graph(2000, DEFAULT_SEED);
    let csr = CsrGraph::from(&big);
    let queries = query_batch(big.num_vertices(), 64);
    group.bench_function("bounded_query_legacy_n2000", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(s, t, bound)| bounded_distance(&big, s, t, bound).is_some())
                .count()
        })
    });
    let mut engine = DijkstraEngine::with_capacity(big.num_vertices());
    group.bench_function("bounded_query_csr_engine_n2000", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(s, t, bound)| engine.bounded_distance(&csr, s, t, bound).is_some())
                .count()
        })
    });

    let points = uniform_square(300, DEFAULT_SEED);
    group.bench_function("net_hierarchy_n300", |b| {
        b.iter(|| NetHierarchy::build(&points).height())
    });
    group.bench_function("split_tree_wspd_n300", |b| {
        b.iter(|| {
            let tree = SplitTree::build(&points);
            well_separated_pairs(&tree, 4.0).len()
        })
    });
    group.finish();
}

/// The acceleration-stack comparison the serving layer leans on: the same
/// bounded point-query batch over the **er2000 greedy spanner** through
/// three engine configurations — binary heap, bucket queue, and bucket
/// queue + ALT landmark pruning. Before timing anything, the settled-vertex
/// counts of the heap and ALT configurations are measured from engine
/// stats (outside the timed region) and the heap/ALT ratio is asserted
/// `> 1.0` — the acceptance gate for the pruning stack. The `BENCH_JSON`
/// artifact carries the timed rows; the printed `point_query_settled` line
/// carries the ratio.
fn bench_point_query_engines(c: &mut Criterion) {
    let g = random_graph(2000, DEFAULT_SEED);
    let spanner = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch")
        .spanner;
    let csr = CsrGraph::from(&spanner);
    let landmarks = Landmarks::build_degree_ranked(&csr, 4);
    let queries = query_batch(csr.num_vertices(), 256);
    let n = csr.num_vertices();

    let mut heap_engine = DijkstraEngine::with_capacity(n);
    heap_engine.set_queue_policy(QueuePolicy::Heap);
    let mut bucket_engine = DijkstraEngine::with_capacity(n);
    let mut alt_engine = DijkstraEngine::with_capacity(n);

    let run_heap = |engine: &mut DijkstraEngine| {
        queries
            .iter()
            .filter(|&&(s, t, bound)| engine.bounded_distance(&csr, s, t, bound).is_some())
            .count()
    };
    let run_alt = |engine: &mut DijkstraEngine| {
        queries
            .iter()
            .filter(|&&(s, t, bound)| {
                engine
                    .bounded_distance_landmarked(&csr, &landmarks, s, t, bound)
                    .is_some()
            })
            .count()
    };

    // The acceptance gate, measured outside the timed region: the three
    // configurations agree on every answer, and ALT pruning settles
    // strictly fewer vertices than the plain heap on the same batch.
    let heap_hits = run_heap(&mut heap_engine);
    let bucket_hits = run_heap(&mut bucket_engine);
    let alt_hits = run_alt(&mut alt_engine);
    assert_eq!(heap_hits, bucket_hits, "bucket queue changed an answer");
    assert_eq!(heap_hits, alt_hits, "landmark pruning changed an answer");
    let settled_heap = heap_engine.stats().settled_vertices;
    let settled_alt = alt_engine.stats().settled_vertices;
    let reduction = settled_heap as f64 / (settled_alt as f64).max(1.0);
    println!(
        "point_query_settled: heap {settled_heap} bucket {} alt {settled_alt} \
         ({reduction:.2}x settled-vertex reduction, pruned {} by bound/landmarks)",
        bucket_engine.stats().settled_vertices,
        alt_engine.stats().pruned_by_bound,
    );
    assert!(
        reduction > 1.0,
        "ALT pruning must settle fewer vertices than the plain heap on the \
         er2000 bounded batch (measured {reduction:.2}x)"
    );

    let mut group = c.benchmark_group("point_query_engines");
    group.sample_size(20);
    group.bench_function("heap_n2000", |b| b.iter(|| run_heap(&mut heap_engine)));
    group.bench_function("bucket_n2000", |b| b.iter(|| run_heap(&mut bucket_engine)));
    group.bench_function("bucket_alt_n2000", |b| b.iter(|| run_alt(&mut alt_engine)));
    group.finish();
}

/// The pool fan-out in isolation: one fixed batch of bounded queries mapped
/// across an [`EnginePool`] snapshot at 1/2/4/8 workers. This is the pure
/// substrate half of the `parallel_scaling` story — no greedy commit phase,
/// so it measures the ceiling the construction-level bench can reach.
fn bench_parallel_scaling(c: &mut Criterion) {
    let big = random_graph(2000, DEFAULT_SEED);
    let csr = CsrGraph::from(&big);
    let queries = query_batch(big.num_vertices(), 512);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let mut pool = EnginePool::with_capacity_for(threads, big.num_vertices(), big.num_edges());
        let mut out = vec![false; queries.len()];
        group.bench_function(BenchmarkId::new("pool_filter_batch_n2000", threads), |b| {
            b.iter(|| {
                pool.map_batch(
                    csr.snapshot(),
                    &queries,
                    &mut out,
                    |engine, graph, &(s, t, bound)| {
                        engine.bounded_distance(graph, s, t, bound).is_some()
                    },
                );
                out.iter().filter(|&&covered| covered).count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_point_query_engines,
    bench_parallel_scaling
);
criterion_main!(benches);
