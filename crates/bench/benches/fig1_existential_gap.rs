//! E1 — Figure 1: greedy spanner construction on the cage + star overlays.
//!
//! The regression target is the construction cost of the greedy spanner on
//! the existential-optimality gap instances; the *result* (all cage edges
//! kept, star is optimal) is asserted so a silent regression cannot slip by.

use criterion::{criterion_group, criterion_main, Criterion};

use greedy_spanner::optimality::cage_overlay_instances;
use greedy_spanner::Spanner;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_fig1_existential_gap");
    group.sample_size(20);
    for (name, inst) in cage_overlay_instances(0.1).expect("valid epsilon") {
        let h_only = inst
            .graph
            .filter_edges(|_, e| inst.h_edge_keys.contains(&e.key()));
        let girth = spanner_graph::girth::girth(&h_only).expect("cages have cycles");
        let t = (girth - 2) as f64;
        let greedy = Spanner::greedy().stretch(t);
        group.bench_function(name.replace(' ', "_"), |b| {
            b.iter(|| {
                let out = greedy.build(&inst.graph).expect("valid stretch");
                assert_eq!(inst.count_h_edges_in(&out.spanner), inst.h_edge_keys.len());
                out.spanner.num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
