//! Shared harness code for the benchmark suite and the `experiments` binary:
//! reproducible workloads, spanner-construction wrappers and plain-text table
//! rendering matching the rows reported in EXPERIMENTS.md.

pub mod tables;
pub mod workloads;

pub use tables::Table;
