//! Regenerates every table of EXPERIMENTS.md (experiment ids E1–E12): the
//! Figure 1 instance, the size/lightness corollaries, the doubling-metric
//! results, the approximate-greedy comparison, the baseline comparison, the
//! full algorithm matrix (E10), the serving-layer table (E11: qps / cache
//! hit rate / latency over uniform, Zipf and mixed read workloads), and the
//! live-update table (E12: a server interleaving query and update batches —
//! admissions, repairs, epochs, stale cache evictions — checked
//! round-by-round against a from-scratch rebuild).
//!
//! Every construction is dispatched through the unified
//! [`SpannerAlgorithm`](greedy_spanner::SpannerAlgorithm) pipeline — the
//! builder for single runs, [`algorithms::registry`] +
//! [`run_matrix`](greedy_spanner::run_matrix) for the comparative tables —
//! so adding a construction to the registry automatically adds it to the
//! comparison experiments.
//!
//! Run with `cargo run --release -p spanner-bench --bin experiments`.
//! Pass a subset of experiment ids (e.g. `e1 e5`) to run only those.
//!
//! **Threads.** Every construction honors the `SPANNER_THREADS` environment
//! variable (the tables use configs that leave `threads` at 0, so
//! [`SpannerConfig::resolve_threads`] reads the env): single builds run the
//! batched filter-then-commit loop with that many workers, and the E10
//! batch runner spends the same budget on cell-level parallelism. Outputs
//! are bit-identical at every thread count — `SPANNER_THREADS=8` changes
//! how fast the tables regenerate, never a number in them (wall-time
//! columns aside).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use greedy_spanner::algorithms;
use greedy_spanner::analysis::{evaluate, lightness, max_stretch_all_pairs};
use greedy_spanner::optimality::{cage_overlay_instances, contains_mst, is_own_unique_spanner};
use greedy_spanner::{run_matrix, Spanner, SpannerConfig, SpannerInput};
use spanner_bench::tables::{fmt_f, Table};
use spanner_bench::workloads::{
    clustered_square, geometric_graph, random_graph, uniform_cube_3d, uniform_square, DEFAULT_SEED,
};
use spanner_graph::metric_closure::metric_closure;
use spanner_graph::mst::mst_weight;
use spanner_metric::doubling::estimate_doubling_dimension;
use spanner_metric::generators::star_metric;
use spanner_metric::MetricSpace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!(
        "Greedy-spanner reproduction — experiment tables (seed {DEFAULT_SEED}, \
         {} worker thread(s); override with SPANNER_THREADS — outputs are \
         thread-count invariant)\n",
        SpannerConfig::default().resolve_threads()
    );
    if want("e1") {
        println!("{}", experiment_e1().render());
    }
    if want("e2") {
        println!("{}", experiment_e2().render());
    }
    if want("e3") {
        println!("{}", experiment_e3().render());
    }
    if want("e4") {
        println!("{}", experiment_e4().render());
    }
    if want("e5") {
        println!("{}", experiment_e5().render());
    }
    if want("e6") {
        println!("{}", experiment_e6_quality().render());
        println!("{}", experiment_e6_runtime().render());
    }
    if want("e7") {
        println!("{}", experiment_e7().render());
    }
    if want("e8") {
        println!("{}", experiment_e8().render());
    }
    if want("e9") {
        println!("{}", experiment_e9().render());
    }
    if want("e10") {
        println!("{}", experiment_e10().render());
    }
    if want("e11") {
        println!("{}", experiment_e11().render());
    }
    if want("e12") {
        println!("{}", experiment_e12().render());
    }
}

/// E1 — Figure 1: the greedy 3-spanner of the Petersen + star instance keeps
/// every high-girth edge while the optimal spanner is the star.
fn experiment_e1() -> Table {
    let mut table = Table::new(
        "E1: Figure 1 — greedy keeps the high-girth graph, optimum is the star",
        &[
            "instance",
            "t",
            "|E(G)|",
            "greedy edges",
            "H edges kept",
            "greedy weight",
            "star weight",
        ],
    );
    for (name, inst) in cage_overlay_instances(0.1).expect("valid epsilon") {
        let h_only = inst
            .graph
            .filter_edges(|_, e| inst.h_edge_keys.contains(&e.key()));
        let girth = spanner_graph::girth::girth(&h_only).expect("cages have cycles");
        let t = (girth - 2) as f64;
        let greedy = Spanner::greedy()
            .stretch(t)
            .build(&inst.graph)
            .expect("valid stretch");
        table.add_row(vec![
            name,
            fmt_f(t),
            inst.graph.num_edges().to_string(),
            greedy.spanner.num_edges().to_string(),
            inst.count_h_edges_in(&greedy.spanner).to_string(),
            fmt_f(greedy.spanner.total_weight()),
            fmt_f(inst.star_weight()),
        ]);
    }
    table
}

/// E2 — Corollary 4: size and lightness of the greedy (2k−1)(1+ε)-spanner on
/// random graphs, against the `n^{1+1/k}` / `n^{1/k}` shapes.
fn experiment_e2() -> Table {
    let mut table = Table::new(
        "E2: Corollary 4 — greedy (2k-1)(1+eps) spanner, eps = 0.5, random graphs",
        &[
            "n",
            "k",
            "t",
            "|E(G)|",
            "edges",
            "n^(1+1/k)",
            "edges/n^(1+1/k)",
            "lightness",
            "n^(1/k)",
            "max stretch",
        ],
    );
    for &n in &[200usize, 400, 800] {
        for &k in &[2usize, 3, 5] {
            let g = random_graph(n, DEFAULT_SEED + k as u64);
            let t = (2 * k - 1) as f64 * 1.5;
            let greedy = Spanner::greedy()
                .stretch(t)
                .build(&g)
                .expect("valid stretch");
            let report = evaluate(&g, &greedy.spanner, t);
            let size_bound = (n as f64).powf(1.0 + 1.0 / k as f64);
            table.add_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_f(t),
                g.num_edges().to_string(),
                report.summary.num_edges.to_string(),
                fmt_f(size_bound),
                fmt_f(report.summary.num_edges as f64 / size_bound),
                fmt_f(report.summary.lightness),
                fmt_f((n as f64).powf(1.0 / k as f64)),
                fmt_f(report.max_stretch),
            ]);
        }
    }
    table
}

/// E3 — Corollary 5: the greedy O(log n / δ)-spanner has O(n) edges and
/// lightness at most 1 + δ.
fn experiment_e3() -> Table {
    let mut table = Table::new(
        "E3: Corollary 5 — greedy O(log n / delta) spanner: linear size, lightness <= 1 + delta",
        &[
            "n",
            "delta",
            "t",
            "edges",
            "edges/n",
            "lightness",
            "1+delta",
        ],
    );
    for &n in &[200usize, 500, 1000] {
        for &delta in &[0.1f64, 0.25, 0.5, 1.0] {
            let g = random_graph(n, DEFAULT_SEED + 17);
            let t = (n as f64).log2() / delta;
            let greedy = Spanner::greedy()
                .stretch(t)
                .build(&g)
                .expect("valid stretch");
            let light = lightness(&g, &greedy.spanner);
            table.add_row(vec![
                n.to_string(),
                fmt_f(delta),
                fmt_f(t),
                greedy.spanner.num_edges().to_string(),
                fmt_f(greedy.spanner.num_edges() as f64 / n as f64),
                fmt_f(light),
                fmt_f(1.0 + delta),
            ]);
        }
    }
    table
}

/// E4 — Lemma 3: the greedy spanner is its own unique t-spanner; generic
/// graphs are not.
fn experiment_e4() -> Table {
    let mut table = Table::new(
        "E4: Lemma 3 — the only t-spanner of the greedy t-spanner is itself",
        &[
            "n",
            "t",
            "graph",
            "greedy self-optimal",
            "input graph self-optimal",
        ],
    );
    for &(n, name) in &[(100usize, "random"), (100, "geometric")] {
        for &t in &[1.5f64, 2.0, 3.0] {
            let g = if name == "random" {
                random_graph(n, DEFAULT_SEED + 3)
            } else {
                geometric_graph(n, DEFAULT_SEED + 3)
            };
            let greedy = Spanner::greedy()
                .stretch(t)
                .build(&g)
                .expect("valid stretch");
            let greedy_self = is_own_unique_spanner(&greedy.spanner, t).expect("valid stretch");
            let input_self = is_own_unique_spanner(&g, t).expect("valid stretch");
            table.add_row(vec![
                n.to_string(),
                fmt_f(t),
                name.to_owned(),
                greedy_self.to_string(),
                input_self.to_string(),
            ]);
        }
    }
    table
}

/// E5 — Corollary 10: greedy (1+ε)-spanners of doubling metrics have linear
/// size and small lightness.
fn experiment_e5() -> Table {
    let mut table = Table::new(
        "E5: Corollary 10 — greedy (1+eps)-spanner in doubling metrics",
        &[
            "points",
            "n",
            "eps",
            "ddim est",
            "edges",
            "edges/n",
            "lightness",
            "max stretch",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(DEFAULT_SEED);
    for &n in &[200usize, 500] {
        for &eps in &[0.25f64, 0.5, 1.0] {
            let cases: Vec<(&str, Box<dyn MetricSpace>)> = vec![
                (
                    "uniform 2d",
                    Box::new(uniform_square(n, DEFAULT_SEED + n as u64)),
                ),
                (
                    "clustered 2d",
                    Box::new(clustered_square(n, DEFAULT_SEED + n as u64)),
                ),
                (
                    "uniform 3d",
                    Box::new(uniform_cube_3d(n, DEFAULT_SEED + n as u64)),
                ),
            ];
            for (name, metric) in cases {
                let t = 1.0 + eps;
                // Materialize the O(n²) distance graph once and share it
                // between the build and the evaluation.
                let complete = metric.to_complete_graph();
                let input = SpannerInput::prepared(metric.as_ref(), &complete);
                let result = Spanner::greedy()
                    .stretch(t)
                    .build(input)
                    .expect("non-empty");
                let report = evaluate(&complete, &result.spanner, t);
                let ddim = estimate_doubling_dimension(metric.as_ref(), 8, &mut rng);
                table.add_row(vec![
                    name.to_owned(),
                    n.to_string(),
                    fmt_f(eps),
                    fmt_f(ddim),
                    report.summary.num_edges.to_string(),
                    fmt_f(report.summary.num_edges as f64 / n as f64),
                    fmt_f(report.summary.lightness),
                    fmt_f(report.max_stretch),
                ]);
            }
        }
    }
    table
}

/// E6a — Theorem 6: approximate-greedy quality against the exact greedy.
fn experiment_e6_quality() -> Table {
    let mut table = Table::new(
        "E6a: Theorem 6 — approximate-greedy vs exact greedy (eps = 0.5, uniform 2d)",
        &[
            "n",
            "construction",
            "edges",
            "lightness",
            "max degree",
            "max stretch",
        ],
    );
    for &n in &[200usize, 500, 1000] {
        let points = uniform_square(n, DEFAULT_SEED + 5);
        let complete = points.to_complete_graph();
        let eps = 0.5;
        for builder in [
            Spanner::greedy().stretch(1.0 + eps),
            Spanner::approx_greedy().epsilon(eps),
        ] {
            let out = builder.build(&points).expect("non-empty");
            let report = evaluate(&complete, &out.spanner, 1.0 + eps);
            table.add_row(vec![
                n.to_string(),
                out.provenance.algorithm.clone(),
                report.summary.num_edges.to_string(),
                fmt_f(report.summary.lightness),
                report.summary.max_degree.to_string(),
                fmt_f(report.max_stretch),
            ]);
        }
    }
    table
}

/// E6b — construction-time scaling of exact greedy vs approximate-greedy,
/// using the wall time the unified pipeline measures itself.
fn experiment_e6_runtime() -> Table {
    let mut table = Table::new(
        "E6b: construction time (ms), eps = 0.5, uniform 2d",
        &["n", "greedy (ms)", "approx-greedy (ms)", "speedup"],
    );
    for &n in &[250usize, 500, 1000] {
        let points = uniform_square(n, DEFAULT_SEED + 6);
        let greedy = Spanner::greedy()
            .stretch(1.5)
            .build(&points)
            .expect("non-empty");
        let approx = Spanner::approx_greedy()
            .epsilon(0.5)
            .build(&points)
            .expect("non-empty");
        let greedy_ms = greedy.stats.wall_time.as_secs_f64() * 1e3;
        let approx_ms = approx.stats.wall_time.as_secs_f64() * 1e3;
        table.add_row(vec![
            n.to_string(),
            fmt_f(greedy_ms),
            fmt_f(approx_ms),
            fmt_f(greedy_ms / approx_ms.max(1e-9)),
        ]);
    }
    table
}

/// E7 — the empirical claim of Section 1.2: the greedy spanner is markedly
/// sparser and lighter than the other constructions. The rows come straight
/// from the registry, so new constructions join the table automatically.
fn experiment_e7() -> Table {
    let mut table = Table::new(
        "E7: greedy vs baseline constructions (n = 500, eps = 0.5 where applicable)",
        &[
            "points",
            "construction",
            "guaranteed t",
            "edges",
            "lightness",
            "max stretch",
        ],
    );
    let n = 500usize;
    let eps = 0.5;
    for &(name, clustered) in &[("uniform 2d", false), ("clustered 2d", true)] {
        let points = if clustered {
            clustered_square(n, DEFAULT_SEED + 7)
        } else {
            uniform_square(n, DEFAULT_SEED + 7)
        };
        let complete = points.to_complete_graph();
        let input = SpannerInput::prepared_euclidean2(&points, &complete);
        // `k = 2` pins Baswana–Sen to its classical (2k − 1) = 3 comparison
        // row; the (1 + ε) constructions read the stretch target instead.
        let config = SpannerConfig {
            stretch: 1.0 + eps,
            k: Some(2),
            seed: DEFAULT_SEED + 8,
            ..SpannerConfig::default()
        };
        for algorithm in algorithms::registry() {
            if !algorithm.supports(&input) {
                continue;
            }
            let out = algorithm
                .build(&input, &config)
                .expect("construction succeeds");
            table.add_row(vec![
                name.to_owned(),
                out.provenance.algorithm.clone(),
                out.provenance
                    .guaranteed_stretch
                    .map_or_else(|| "-".to_owned(), fmt_f),
                out.spanner.num_edges().to_string(),
                fmt_f(lightness(&complete, &out.spanner)),
                fmt_f(max_stretch_all_pairs(&complete, &out.spanner)),
            ]);
        }
    }
    table
}

/// E8 — Observations 2 and 6: MST containment and MST preservation under the
/// metric closure.
fn experiment_e8() -> Table {
    let mut table = Table::new(
        "E8: Observation 2 & 6 — MST containment and metric-closure MST preservation",
        &[
            "n",
            "t",
            "greedy contains MST",
            "w(MST(G))",
            "w(MST(M_G))",
            "relative gap",
        ],
    );
    for &n in &[100usize, 200, 400] {
        let g = random_graph(n, DEFAULT_SEED + 9);
        let t = 2.0;
        let greedy = Spanner::greedy()
            .stretch(t)
            .build(&g)
            .expect("valid stretch");
        let closure = metric_closure(&g).expect("connected");
        let w_g = mst_weight(&g);
        let w_m = mst_weight(&closure);
        table.add_row(vec![
            n.to_string(),
            fmt_f(t),
            contains_mst(&g, &greedy.spanner).to_string(),
            fmt_f(w_g),
            fmt_f(w_m),
            fmt_f((w_g - w_m).abs() / w_g),
        ]);
    }
    table
}

/// E9 — the degree blow-up phenomenon: on the star metric the greedy spanner
/// has degree n − 1, while on uniform points its degree stays small.
fn experiment_e9() -> Table {
    let mut table = Table::new(
        "E9: greedy degree blow-up on the star metric vs uniform points (eps = 0.5)",
        &["metric", "n", "ddim est", "greedy max degree", "edges"],
    );
    let mut rng = SmallRng::seed_from_u64(DEFAULT_SEED + 10);
    let greedy = Spanner::greedy().stretch(1.5);
    for &n in &[50usize, 100, 200] {
        let star = star_metric(n);
        let star_out = greedy.build(&star).expect("non-empty");
        table.add_row(vec![
            "star".to_owned(),
            n.to_string(),
            fmt_f(estimate_doubling_dimension(&star, 8, &mut rng)),
            star_out.spanner.max_degree().to_string(),
            star_out.spanner.num_edges().to_string(),
        ]);
        let uniform = uniform_square(n, DEFAULT_SEED + n as u64);
        let uni_out = greedy.build(&uniform).expect("non-empty");
        table.add_row(vec![
            "uniform 2d".to_owned(),
            n.to_string(),
            fmt_f(estimate_doubling_dimension(&uniform, 8, &mut rng)),
            uni_out.spanner.max_degree().to_string(),
            uni_out.spanner.num_edges().to_string(),
        ]);
    }
    table
}

/// E11 — the serving layer: one greedy spanner frozen into a
/// `SpannerServer`, measured under uniform, Zipf-hotspot and mixed read
/// traffic, cached vs. uncached. Answers are bit-identical across every
/// row (asserted here); only the throughput and cache columns move.
fn experiment_e11() -> Table {
    use greedy_spanner::workload::QueryWorkload;

    let mut table = Table::new(
        "E11: serving — workloads x tree cache over one frozen greedy 2-spanner (n=600)",
        &[
            "workload",
            "cache",
            "queries",
            "qps",
            "hit rate",
            "p50",
            "p99",
            "max",
            "trees",
            "utilization",
            "settled",
            "pruned",
            "identical",
        ],
    );
    let n = 600;
    let g = random_graph(n, DEFAULT_SEED + 13);
    let output = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    let workloads = [
        (
            "uniform",
            QueryWorkload::uniform(n)
                .expect("valid")
                .queries(2000)
                .seed(1)
                .bound(40.0),
        ),
        (
            "zipf 1.1",
            QueryWorkload::zipf(n, 1.1)
                .expect("valid")
                .queries(2000)
                .seed(2)
                .bound(40.0),
        ),
        (
            "mixed",
            QueryWorkload::mixed(n, true)
                .expect("valid")
                .queries(2000)
                .seed(3),
        ),
    ];
    for (name, workload) in workloads {
        let batch = workload.generate();
        let mut reference: Option<Vec<greedy_spanner::Answer>> = None;
        for cache in [0usize, 128] {
            let mut server = output
                .clone()
                .serve()
                .cache_capacity(cache)
                .audit_against(&g)
                .finish();
            // Two rounds so the cached row serves hot sources from trees.
            let cold = server.answer_batch(&batch).expect("valid batch");
            let warm = server.answer_batch(&batch).expect("valid batch");
            let identical = cold == warm && reference.as_ref().is_none_or(|r| &cold == r);
            if reference.is_none() {
                reference = Some(cold);
            }
            let stats = server.stats();
            table.add_row(vec![
                name.to_owned(),
                if cache == 0 {
                    "off".to_owned()
                } else {
                    cache.to_string()
                },
                stats.queries.to_string(),
                fmt_f(stats.qps().unwrap_or(0.0)),
                format!("{:.1}%", 100.0 * stats.cache_hit_rate().unwrap_or(0.0)),
                format!("{:?}", stats.latency.p50().expect("recorded")),
                format!("{:?}", stats.latency.p99().expect("recorded")),
                format!("{:?}", stats.latency.max().expect("recorded")),
                server.cached_trees().to_string(),
                fmt_f(server.worker_utilization()),
                server.engine_stats().settled_vertices.to_string(),
                server.engine_stats().pruned_by_bound.to_string(),
                if identical { "yes" } else { "NO" }.to_owned(),
            ]);
            assert!(identical, "E11: serving answers diverged across rows");
        }
    }
    table
}

/// E12 — live updates: one greedy 2-spanner opened for updates and served
/// while a mixed query/update stream runs against it. Update rounds report
/// the admission/repair counters and the epochs they advanced; query rounds
/// report serving statistics (including stale-tree evictions and the exact
/// latency maximum) and are checked bit-for-bit against a server rebuilt
/// from scratch at the current epoch.
fn experiment_e12() -> Table {
    use greedy_spanner::serve::ServeBuilder;
    use greedy_spanner::workload::{LiveWorkload, StreamEvent};
    use std::time::Instant;

    let mut table = Table::new(
        "E12: live updates — interleaved query/update stream over one greedy 2-spanner \
         (n=400, cache=64, update fraction 0.4)",
        &[
            "round",
            "event",
            "admitted",
            "rejected",
            "repaired",
            "epoch",
            "stale evict",
            "hit rate",
            "p50",
            "p99",
            "max",
            "identical",
        ],
    );
    let n = 400;
    let g = random_graph(n, DEFAULT_SEED + 14);
    let output = Spanner::greedy()
        .stretch(2.0)
        .build(&g)
        .expect("valid stretch");
    let t0 = Instant::now();
    let mut server = output
        .clone()
        .live(&g)
        .expect("greedy guarantees a stretch")
        .serve()
        .cache_capacity(64)
        .finish();
    let stream = LiveWorkload::new(n)
        .expect("valid universe")
        .update_fraction(0.4)
        .expect("valid fraction")
        .rounds(10)
        .queries_per_batch(1500)
        .updates_per_batch(20)
        .seed(DEFAULT_SEED + 15)
        .generate(&g);
    for (round, event) in stream.iter().enumerate() {
        match event {
            StreamEvent::Updates(batch) => {
                let outcome = server.apply_updates(batch).expect("valid stream");
                table.add_row(vec![
                    round.to_string(),
                    format!("update x{}", batch.len()),
                    outcome.admitted.to_string(),
                    outcome.rejected.to_string(),
                    outcome.repaired.to_string(),
                    server.epoch().to_string(),
                    server.stats().stale_evictions.to_string(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                ]);
            }
            StreamEvent::Queries(queries) => {
                // The rebuild oracle: a cold server over a fresh handle at
                // the current epoch, auditing against the live original.
                let original = server
                    .live()
                    .expect("live server")
                    .original()
                    .to_weighted_graph();
                let mut rebuilt = ServeBuilder::from_handle(server.freeze_current())
                    .cache_capacity(0)
                    .audit_against(&original)
                    .finish();
                let expected = rebuilt.answer_batch(queries).expect("valid batch");
                let got = server.answer_batch(queries).expect("valid batch");
                let identical = got == expected;
                let stats = server.stats();
                table.add_row(vec![
                    round.to_string(),
                    format!("query x{}", queries.len()),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    stats.epoch.to_string(),
                    stats.stale_evictions.to_string(),
                    format!("{:.1}%", 100.0 * stats.cache_hit_rate().unwrap_or(0.0)),
                    format!("{:?}", stats.latency.p50().expect("recorded")),
                    format!("{:?}", stats.latency.p99().expect("recorded")),
                    format!("{:?}", stats.latency.max().expect("recorded")),
                    if identical { "yes" } else { "NO" }.to_owned(),
                ]);
                assert!(identical, "E12: interleaved server diverged from rebuild");
            }
        }
    }
    let incremental = t0.elapsed();
    // One full rebuild of the final state, for scale.
    let final_graph = server
        .live()
        .expect("live server")
        .original()
        .to_weighted_graph();
    let t1 = Instant::now();
    let _ = Spanner::greedy()
        .stretch(2.0)
        .build(&final_graph)
        .expect("valid stretch");
    let one_rebuild = t1.elapsed();
    let updates = *server.update_stats().expect("live server");
    table.add_row(vec![
        "(total)".to_owned(),
        format!(
            "stream {:.1} ms vs 1 rebuild {:.1} ms",
            incremental.as_secs_f64() * 1e3,
            one_rebuild.as_secs_f64() * 1e3
        ),
        updates.admitted.to_string(),
        updates.rejected.to_string(),
        updates.repaired.to_string(),
        server.epoch().to_string(),
        server.stats().stale_evictions.to_string(),
        format!(
            "{:.1}%",
            100.0 * server.stats().cache_hit_rate().unwrap_or(0.0)
        ),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        format!("certified {:.3}", updates.certified_stretch),
    ]);
    table
}

/// E10 — the full algorithm matrix: every registry construction over a graph
/// and a metric workload at several stretch targets, via the batch runner.
fn experiment_e10() -> Table {
    let mut table = Table::new(
        "E10: algorithm matrix — registry x workloads x stretches (batch runner)",
        &[
            "input",
            "construction",
            "target t",
            "edges",
            "lightness",
            "max stretch",
            "time (ms)",
            "peak frontier",
            "queries",
            "reuse hits",
            "rows batched",
            "edges gathered",
            "committed",
        ],
    );
    let g = random_graph(200, DEFAULT_SEED + 11);
    let points = uniform_square(200, DEFAULT_SEED + 11);
    let inputs = [
        ("random graph", SpannerInput::from(&g)),
        ("uniform 2d", SpannerInput::from(&points)),
    ];
    let algorithms = algorithms::registry();
    let stretches = [1.5, 3.0];
    let base = SpannerConfig {
        seed: DEFAULT_SEED + 12,
        ..SpannerConfig::default()
    };
    let cells = run_matrix(&inputs, &algorithms, &stretches, &base);
    let agg = greedy_spanner::aggregate_stats(&cells);
    for cell in cells {
        match (&cell.output, &cell.report) {
            (Ok(out), Some(report)) => table.add_row(vec![
                cell.input.clone(),
                cell.algorithm.clone(),
                fmt_f(cell.stretch),
                report.summary.num_edges.to_string(),
                fmt_f(report.summary.lightness),
                fmt_f(report.max_stretch),
                fmt_f(out.stats.wall_time.as_secs_f64() * 1e3),
                out.stats.peak_frontier.to_string(),
                out.stats.distance_queries.to_string(),
                out.stats.workspace_reuse_hits.to_string(),
                out.stats.kernel.rows_batched.to_string(),
                out.stats.kernel.edges_gathered.to_string(),
                out.stats.kernel.candidates_committed.to_string(),
            ]),
            _ => table.add_row(vec![
                cell.input.clone(),
                cell.algorithm.clone(),
                fmt_f(cell.stretch),
                "failed".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ]),
        };
    }
    // Per-cell stats rolled up: with parallel cells (SPANNER_THREADS > 1)
    // the summed wall time exceeds the elapsed time by the achieved
    // cell-level parallelism.
    table.add_row(vec![
        "(aggregate)".to_owned(),
        format!("{} cells, {} failed", agg.cells, agg.failures),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        fmt_f(agg.total_wall_time.as_secs_f64() * 1e3),
        "-".to_owned(),
        agg.distance_queries.to_string(),
        agg.workspace_reuse_hits.to_string(),
        agg.kernel.rows_batched.to_string(),
        agg.kernel.edges_gathered.to_string(),
        agg.kernel.candidates_committed.to_string(),
    ]);
    table
}
