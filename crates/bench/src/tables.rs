//! Minimal fixed-width table rendering for experiment output.

/// A simple column-aligned text table.
///
/// The experiments binary prints one of these per experiment id; the same
/// rows are recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells should match the header.
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let num_cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; num_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt_f(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_owned()
    } else if x >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["n", "edges", "lightness"]);
        t.add_row(vec!["10".into(), "45".into(), "1.25".into()]);
        t.add_row(vec!["1000".into(), "4995".into(), "10.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("lightness"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert!(t.render().contains('2'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(123.456), "123.5");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
    }
}
