//! Reproducible workloads shared by the Criterion benches and the
//! `experiments` binary. Every workload is parameterized by a seed so a table
//! can be regenerated exactly.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use spanner_graph::generators::{erdos_renyi_connected, random_geometric_connected};
use spanner_graph::WeightedGraph;
use spanner_metric::generators::{clustered_points, uniform_points};
use spanner_metric::EuclideanSpace;

/// Default seed used by the experiment tables.
pub const DEFAULT_SEED: u64 = 20160722; // PODC'16 week.

/// A connected Erdős–Rényi graph with the edge density used throughout the
/// graph experiments (average degree ≈ 12, weights in `[1, 10)`).
pub fn random_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = (12.0 / n as f64).min(1.0);
    erdos_renyi_connected(n, p, 1.0..10.0, &mut rng)
}

/// A connected random geometric graph in the unit square with radius chosen
/// so the expected degree is ≈ 10.
pub fn geometric_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let radius = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
    random_geometric_connected(n, radius, &mut rng).0
}

/// Uniform points in the unit square (the staple workload of the geometric
/// spanner experiments).
pub fn uniform_square(n: usize, seed: u64) -> EuclideanSpace<2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    uniform_points::<2, _>(n, &mut rng)
}

/// Clustered points in the unit square (the second staple workload).
pub fn clustered_square(n: usize, seed: u64) -> EuclideanSpace<2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    clustered_points::<2, _>(n, (n / 40).max(2), 0.03, &mut rng)
}

/// Uniform points in the unit 3- and 4-dimensional cubes for the
/// higher-doubling-dimension rows.
pub fn uniform_cube_3d(n: usize, seed: u64) -> EuclideanSpace<3> {
    let mut rng = SmallRng::seed_from_u64(seed);
    uniform_points::<3, _>(n, &mut rng)
}

/// Uniform points in the unit 4-cube.
pub fn uniform_cube_4d(n: usize, seed: u64) -> EuclideanSpace<4> {
    let mut rng = SmallRng::seed_from_u64(seed);
    uniform_points::<4, _>(n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::connectivity::is_connected;
    use spanner_metric::MetricSpace;

    #[test]
    fn workloads_are_reproducible() {
        let a = random_graph(50, 1);
        let b = random_graph(50, 1);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!((a.total_weight() - b.total_weight()).abs() < 1e-12);
        let c = random_graph(50, 2);
        assert!(
            a.num_edges() != c.num_edges() || (a.total_weight() - c.total_weight()).abs() > 1e-12
        );
    }

    #[test]
    fn graph_workloads_are_connected() {
        assert!(is_connected(&random_graph(80, DEFAULT_SEED)));
        assert!(is_connected(&geometric_graph(80, DEFAULT_SEED)));
    }

    #[test]
    fn point_workloads_have_requested_size() {
        assert_eq!(uniform_square(33, 1).len(), 33);
        assert_eq!(clustered_square(90, 1).len(), 90);
        assert_eq!(uniform_cube_3d(20, 1).len(), 20);
        assert_eq!(uniform_cube_4d(21, 1).len(), 21);
    }
}
