//! Adaptive concurrency limits: pluggable algorithms behind one inflight
//! gauge, in the style of the Netflix/Sui concurrency limiters.
//!
//! A limit is a number of *work units* (queries) the runtime will have in
//! flight or dispatch per scheduling round. The algorithm searches for the
//! knee of the latency/throughput curve from observed samples:
//!
//! * [`AimdLimit`] — TCP-style additive-increase / multiplicative-decrease:
//!   grow by a constant while latency is under target and the limit is
//!   actually being used, back off multiplicatively the moment a sample
//!   breaches the target (or a shed happens).
//! * [`GradientLimit`] — tracks the gradient between a long-term latency
//!   EWMA and the recent windowed median; when recent latency inflates
//!   relative to history the limit contracts proportionally, plus a
//!   `√limit` queue allowance so it can still probe upward.
//!
//! Both are fed *windowed* p50/p99 signals ([`WindowedHistogram`]) rather
//! than lifetime aggregates, and are plain deterministic state machines:
//! identical sample sequences produce identical limit trajectories, which
//! is what makes shed decisions reproducible under the virtual clock.
//!
//! The [`InflightGauge`] is deliberately decoupled from the algorithm — it
//! counts units actually outstanding (mirroring the engine-pool occupancy
//! gauge, [`spanner_graph::parallel::EnginePool::inflight`]), while the
//! algorithm only decides how many *should* be.

use std::time::Duration;

use super::window::WindowedHistogram;

/// One observation fed to a [`LimitAlgorithm`] after a dispatch (or a shed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitSample {
    /// Mean per-query service latency of the dispatched chunk.
    pub per_query: Duration,
    /// Work units (queries) in the chunk.
    pub units: usize,
    /// Work units still queued behind it when the sample was taken.
    pub queued: usize,
    /// `true` when this sample reports a shed batch instead of a dispatch.
    pub shed: bool,
}

/// A concurrency-limit search algorithm: a deterministic state machine from
/// latency samples to a unit limit.
pub trait LimitAlgorithm: std::fmt::Debug + Send {
    /// Feeds one sample plus the current windowed latency view.
    fn on_sample(&mut self, sample: LimitSample, window: &WindowedHistogram);
    /// The current limit, in work units (always at least 1).
    fn limit(&self) -> usize;
}

/// Fallback latency target when neither an explicit target nor a windowed
/// median is available yet.
const DEFAULT_TARGET: Duration = Duration::from_millis(1);

/// Additive-increase / multiplicative-decrease limit.
///
/// A sample breaches when its per-query latency exceeds the target — an
/// explicit [`AimdLimit::with_target`], or `tolerance ×` the windowed
/// median when none is set — or when it reports a shed. Breach ⇒ the limit
/// shrinks by the backoff ratio; a clean sample that actually saturated the
/// limit ⇒ it grows by the additive step. All parameters are clamped into
/// valid ranges at construction, never at sample time.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdLimit {
    limit: f64,
    min: usize,
    max: usize,
    increase: f64,
    backoff: f64,
    target: Option<Duration>,
    tolerance: f64,
}

impl AimdLimit {
    /// An AIMD limit starting at `initial` units (clamped ≥ 1), with range
    /// `[1, 1024]`, step `+1`, backoff `×0.9`, and a `2× windowed median`
    /// adaptive target.
    pub fn new(initial: usize) -> Self {
        AimdLimit {
            limit: initial.max(1) as f64,
            min: 1,
            max: 1024,
            increase: 1.0,
            backoff: 0.9,
            target: None,
            tolerance: 2.0,
        }
    }

    /// Sets the `[min, max]` unit range (min clamped ≥ 1, max ≥ min); the
    /// current limit is clamped into it.
    pub fn with_range(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self.limit = self.limit.clamp(self.min as f64, self.max as f64);
        self
    }

    /// Fixes an explicit per-query latency target instead of the adaptive
    /// windowed-median target.
    pub fn with_target(mut self, target: Duration) -> Self {
        self.target = Some(target.max(Duration::from_nanos(1)));
        self
    }

    /// Sets the adaptive-target tolerance (target = `tolerance × windowed
    /// p50`; clamped ≥ 1).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = if tolerance.is_finite() {
            tolerance.max(1.0)
        } else {
            2.0
        };
        self
    }

    /// Sets the additive step (clamped > 0).
    pub fn with_increase(mut self, increase: f64) -> Self {
        self.increase = if increase.is_finite() && increase > 0.0 {
            increase
        } else {
            1.0
        };
        self
    }

    /// Sets the multiplicative backoff ratio (clamped into `(0, 1)`).
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        self.backoff = if backoff.is_finite() {
            backoff.clamp(0.1, 0.999)
        } else {
            0.9
        };
        self
    }

    fn effective_target(&self, window: &WindowedHistogram) -> Duration {
        if let Some(t) = self.target {
            return t;
        }
        match window.p50() {
            Some(p50) => p50.mul_f64(self.tolerance),
            None => DEFAULT_TARGET,
        }
    }
}

impl LimitAlgorithm for AimdLimit {
    fn on_sample(&mut self, sample: LimitSample, window: &WindowedHistogram) {
        let breach = sample.shed || sample.per_query > self.effective_target(window);
        if breach {
            self.limit = (self.limit * self.backoff).max(self.min as f64);
        } else if sample.units + sample.queued >= self.limit as usize {
            // Only probe upward when the limit is actually the bottleneck.
            self.limit = (self.limit + self.increase).min(self.max as f64);
        }
    }

    fn limit(&self) -> usize {
        (self.limit as usize).max(self.min)
    }
}

/// Gradient limit: contracts when the recent windowed median inflates
/// relative to a long-term EWMA of itself, with a `√limit` queue allowance
/// for upward probing and smoothing on every move.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientLimit {
    limit: f64,
    min: usize,
    max: usize,
    smoothing: f64,
    tolerance: f64,
    long_alpha: f64,
    long_nanos: Option<f64>,
}

impl GradientLimit {
    /// A gradient limit starting at `initial` units (clamped ≥ 1), range
    /// `[1, 1024]`, smoothing `0.2`, tolerance `1.5`, long-EWMA α `0.05`.
    pub fn new(initial: usize) -> Self {
        GradientLimit {
            limit: initial.max(1) as f64,
            min: 1,
            max: 1024,
            smoothing: 0.2,
            tolerance: 1.5,
            long_alpha: 0.05,
            long_nanos: None,
        }
    }

    /// Sets the `[min, max]` unit range (min clamped ≥ 1, max ≥ min).
    pub fn with_range(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self.limit = self.limit.clamp(self.min as f64, self.max as f64);
        self
    }

    /// Sets the per-move smoothing factor (clamped into `(0, 1]`).
    pub fn with_smoothing(mut self, smoothing: f64) -> Self {
        self.smoothing = if smoothing.is_finite() {
            smoothing.clamp(0.01, 1.0)
        } else {
            0.2
        };
        self
    }

    /// Sets the latency-inflation tolerance (clamped ≥ 1).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = if tolerance.is_finite() {
            tolerance.max(1.0)
        } else {
            1.5
        };
        self
    }
}

impl LimitAlgorithm for GradientLimit {
    fn on_sample(&mut self, sample: LimitSample, window: &WindowedHistogram) {
        let short = window.p50().unwrap_or(sample.per_query).as_nanos().max(1) as f64;
        let long = *self.long_nanos.get_or_insert(short);
        self.long_nanos = Some(long + self.long_alpha * (short - long));
        let gradient = if sample.shed {
            0.5
        } else {
            (self.tolerance * long / short).clamp(0.5, 1.0)
        };
        let proposed = self.limit * gradient + self.limit.sqrt();
        self.limit = (self.limit * (1.0 - self.smoothing) + proposed * self.smoothing)
            .clamp(self.min as f64, self.max as f64);
    }

    fn limit(&self) -> usize {
        (self.limit as usize).max(self.min)
    }
}

/// A constant limit — no adaptation. Useful to pin behavior in tests and as
/// a baseline in benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedLimit(usize);

impl FixedLimit {
    /// A fixed limit of `limit` units (clamped ≥ 1).
    pub fn new(limit: usize) -> Self {
        FixedLimit(limit.max(1))
    }
}

impl LimitAlgorithm for FixedLimit {
    fn on_sample(&mut self, _sample: LimitSample, _window: &WindowedHistogram) {}

    fn limit(&self) -> usize {
        self.0
    }
}

/// Counts work units actually outstanding, with a high-water mark. Owned by
/// the [`Limiter`] and shared by every algorithm — the algorithm decides
/// the limit, the gauge reports reality.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InflightGauge {
    current: usize,
    peak: usize,
}

impl InflightGauge {
    /// Marks `units` as in flight.
    pub fn acquire(&mut self, units: usize) {
        self.current += units;
        self.peak = self.peak.max(self.current);
    }

    /// Marks `units` as done.
    pub fn release(&mut self, units: usize) {
        self.current = self.current.saturating_sub(units);
    }

    /// Units currently in flight.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Most units ever simultaneously in flight.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// The runtime's admission limiter: a pluggable [`LimitAlgorithm`] behind a
/// shared [`InflightGauge`], fed from a [`WindowedHistogram`] of recent
/// per-query latencies.
///
/// The `unlimited` construction is what the compatibility shims run on: it
/// never sheds, never splits, and skips latency bookkeeping entirely, so
/// `answer_batch` through an unlimited router costs the same as the
/// pre-runtime path it replaced.
#[derive(Debug)]
pub struct Limiter {
    algorithm: Option<Box<dyn LimitAlgorithm>>,
    gauge: InflightGauge,
    window: WindowedHistogram,
}

impl Limiter {
    /// A limiter driven by [`AimdLimit`].
    pub fn aimd(algorithm: AimdLimit) -> Self {
        Limiter::from_algorithm(Box::new(algorithm))
    }

    /// A limiter driven by [`GradientLimit`].
    pub fn gradient(algorithm: GradientLimit) -> Self {
        Limiter::from_algorithm(Box::new(algorithm))
    }

    /// A limiter pinned to a constant limit.
    pub fn fixed(limit: usize) -> Self {
        Limiter::from_algorithm(Box::new(FixedLimit::new(limit)))
    }

    /// A limiter driven by any boxed [`LimitAlgorithm`].
    pub fn from_algorithm(algorithm: Box<dyn LimitAlgorithm>) -> Self {
        Limiter {
            algorithm: Some(algorithm),
            gauge: InflightGauge::default(),
            window: WindowedHistogram::default(),
        }
    }

    /// No limit at all: infinite knee, whole-batch dispatch, no latency
    /// bookkeeping — the pre-runtime serving behavior.
    pub fn unlimited() -> Self {
        Limiter {
            algorithm: None,
            gauge: InflightGauge::default(),
            window: WindowedHistogram::default(),
        }
    }

    /// Replaces the latency window with one of `slots × samples_per_slot`.
    pub fn with_window(mut self, slots: usize, samples_per_slot: u64) -> Self {
        self.window = WindowedHistogram::new(slots, samples_per_slot);
        self
    }

    /// Is this the unlimited construction?
    pub fn is_unlimited(&self) -> bool {
        self.algorithm.is_none()
    }

    /// The current limit in work units (`usize::MAX` when unlimited).
    pub fn limit(&self) -> usize {
        match &self.algorithm {
            Some(algorithm) => algorithm.limit(),
            None => usize::MAX,
        }
    }

    /// Records a dispatched chunk: `units` queries at `per_query` mean
    /// service latency with `queued` units still waiting. Updates the
    /// window, then the algorithm.
    pub fn observe(&mut self, per_query: Duration, units: usize, queued: usize) {
        let Some(algorithm) = self.algorithm.as_mut() else {
            return;
        };
        for _ in 0..units {
            self.window.record(per_query);
        }
        algorithm.on_sample(
            LimitSample {
                per_query,
                units,
                queued,
                shed: false,
            },
            &self.window,
        );
    }

    /// Records a shed batch (no latency — the work never ran).
    pub fn observe_shed(&mut self, units: usize, queued: usize) {
        let Some(algorithm) = self.algorithm.as_mut() else {
            return;
        };
        algorithm.on_sample(
            LimitSample {
                per_query: Duration::ZERO,
                units,
                queued,
                shed: true,
            },
            &self.window,
        );
    }

    /// The windowed latency view feeding the algorithm.
    pub fn window(&self) -> &WindowedHistogram {
        &self.window
    }

    /// The shared occupancy gauge.
    pub fn gauge(&self) -> &InflightGauge {
        &self.gauge
    }

    /// Mutable access to the gauge, for the dispatch loop.
    pub fn gauge_mut(&mut self) -> &mut InflightGauge {
        &mut self.gauge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(per_query_us: u64, units: usize, queued: usize) -> LimitSample {
        LimitSample {
            per_query: Duration::from_micros(per_query_us),
            units,
            queued,
            shed: false,
        }
    }

    #[test]
    fn aimd_grows_when_saturated_and_backs_off_on_breach() {
        let window = WindowedHistogram::default();
        let mut aimd = AimdLimit::new(10)
            .with_range(2, 64)
            .with_target(Duration::from_micros(500));
        // Fast + saturated: additive growth.
        aimd.on_sample(sample(100, 10, 5), &window);
        assert_eq!(aimd.limit(), 11);
        // Fast but underutilized: no growth.
        aimd.on_sample(sample(100, 1, 0), &window);
        assert_eq!(aimd.limit(), 11);
        // Slow: multiplicative decrease.
        aimd.on_sample(sample(5000, 10, 5), &window);
        assert_eq!(aimd.limit(), 9);
        // Repeated breaches floor at min.
        for _ in 0..100 {
            aimd.on_sample(sample(5000, 10, 5), &window);
        }
        assert_eq!(aimd.limit(), 2);
        // Repeated clean saturation ceilings at max.
        for _ in 0..1000 {
            aimd.on_sample(sample(100, 64, 64), &window);
        }
        assert_eq!(aimd.limit(), 64);
    }

    #[test]
    fn aimd_adaptive_target_follows_the_window() {
        let mut window = WindowedHistogram::new(2, 8);
        for _ in 0..16 {
            window.record(Duration::from_micros(100));
        }
        let mut aimd = AimdLimit::new(10).with_tolerance(2.0);
        // 150µs against a 100µs windowed median is within 2× tolerance.
        aimd.on_sample(sample(150, 10, 10), &window);
        assert_eq!(aimd.limit(), 11);
        // 10× the median breaches the adaptive target.
        aimd.on_sample(sample(1000, 10, 10), &window);
        assert!(aimd.limit() < 11);
    }

    #[test]
    fn gradient_contracts_under_inflation_and_recovers() {
        let mut window = WindowedHistogram::new(4, 16);
        let mut gradient = GradientLimit::new(32).with_range(1, 256);
        // Stable latency: the √limit allowance lets it probe upward.
        for _ in 0..50 {
            for _ in 0..8 {
                window.record(Duration::from_micros(100));
            }
            gradient.on_sample(sample(100, 8, 8), &window);
        }
        let stable = gradient.limit();
        assert!(stable > 32, "stable latency probes upward, got {stable}");
        // Latency inflates 20×: the windowed median rises against the long
        // EWMA and the limit contracts sharply. Once the EWMA re-baselines
        // to the new latency the gradient flattens again — so the invariant
        // is a deep trough during the transition, not a permanent floor.
        let mut trough = stable;
        for _ in 0..50 {
            for _ in 0..8 {
                window.record(Duration::from_micros(2000));
            }
            gradient.on_sample(sample(2000, 8, 8), &window);
            trough = trough.min(gradient.limit());
        }
        assert!(
            trough < stable / 2,
            "inflation must contract the limit: trough {trough} vs stable {stable}"
        );
    }

    #[test]
    fn shed_samples_back_both_algorithms_off() {
        let window = WindowedHistogram::default();
        let shed = LimitSample {
            per_query: Duration::ZERO,
            units: 8,
            queued: 100,
            shed: true,
        };
        let mut aimd = AimdLimit::new(32);
        aimd.on_sample(shed, &window);
        assert!(aimd.limit() < 32);
        let mut gradient = GradientLimit::new(32);
        for _ in 0..20 {
            gradient.on_sample(shed, &window);
        }
        assert!(gradient.limit() < 32);
    }

    #[test]
    fn limiter_facade_and_gauge() {
        let mut limiter = Limiter::aimd(AimdLimit::new(4)).with_window(2, 4);
        assert!(!limiter.is_unlimited());
        assert_eq!(limiter.limit(), 4);
        limiter.gauge_mut().acquire(3);
        assert_eq!(limiter.gauge().current(), 3);
        limiter.gauge_mut().release(2);
        assert_eq!(limiter.gauge().current(), 1);
        assert_eq!(limiter.gauge().peak(), 3);
        limiter.observe(Duration::from_micros(50), 4, 0);
        assert_eq!(limiter.window().total(), 4);

        let mut unlimited = Limiter::unlimited();
        assert!(unlimited.is_unlimited());
        assert_eq!(unlimited.limit(), usize::MAX);
        unlimited.observe(Duration::from_micros(50), 4, 0);
        assert_eq!(
            unlimited.window().total(),
            0,
            "unlimited skips latency bookkeeping"
        );
        let fixed = Limiter::fixed(7);
        assert_eq!(fixed.limit(), 7);
        assert_eq!(FixedLimit::new(0).limit(), 1, "fixed clamps to 1");
    }
}
