//! A windowed view over [`LatencyHistogram`]: recent-latency quantiles for
//! admission control, instead of process-lifetime aggregates.
//!
//! [`ServeStats::latency`](crate::serve::ServeStats) accumulates forever,
//! which is the right shape for reporting but the wrong shape for a limiter:
//! an hour of fast history drowns out the last second of congestion. A
//! [`WindowedHistogram`] is a ring of fixed-sample sub-histograms — recording
//! rotates to a fresh slot every `samples_per_slot` samples, overwriting the
//! oldest — so quantiles always describe roughly the last
//! `slots × samples_per_slot` samples.
//!
//! Rotation is by sample count, not wall time, which keeps the view
//! deterministic under the virtual clock the admission tests run on.

use std::time::Duration;

use crate::serve::LatencyHistogram;

/// Default number of ring slots.
pub const DEFAULT_WINDOW_SLOTS: usize = 8;
/// Default samples recorded into a slot before rotating to the next.
pub const DEFAULT_SAMPLES_PER_SLOT: u64 = 256;

/// A ring of [`LatencyHistogram`] slots rotated by sample count; quantiles
/// merge every live slot, so they track the recent window only.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHistogram {
    slots: Vec<LatencyHistogram>,
    head: usize,
    samples_per_slot: u64,
    rotations: u64,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new(DEFAULT_WINDOW_SLOTS, DEFAULT_SAMPLES_PER_SLOT)
    }
}

impl WindowedHistogram {
    /// Creates a window of `slots` ring slots, each holding
    /// `samples_per_slot` samples before rotation. Both are clamped to at
    /// least 1 (a single slot degenerates to "forget everything every
    /// `samples_per_slot` samples", which is still a window).
    pub fn new(slots: usize, samples_per_slot: u64) -> Self {
        WindowedHistogram {
            slots: vec![LatencyHistogram::default(); slots.max(1)],
            head: 0,
            samples_per_slot: samples_per_slot.max(1),
            rotations: 0,
        }
    }

    /// Records one latency sample into the active slot, rotating (and
    /// clearing the oldest slot) once the active slot is full.
    pub fn record(&mut self, latency: Duration) {
        self.slots[self.head].record(latency);
        if self.slots[self.head].total() >= self.samples_per_slot {
            self.head = (self.head + 1) % self.slots.len();
            self.slots[self.head] = LatencyHistogram::default();
            self.rotations += 1;
        }
    }

    /// Samples currently inside the window (at most
    /// `slots × samples_per_slot`).
    pub fn total(&self) -> u64 {
        self.slots.iter().map(LatencyHistogram::total).sum()
    }

    /// `true` when no sample is in the window (never recorded, or every
    /// recorded sample has rotated out).
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// How many slot rotations have happened — each one dropped the oldest
    /// slot's samples from the window.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// One histogram merging every live slot — the window's combined view.
    pub fn merged(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for slot in &self.slots {
            merged.merge(slot);
        }
        merged
    }

    /// The windowed `q`-quantile, or `None` for an empty window.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.merged().quantile(q)
    }

    /// Windowed median latency, or `None` for an empty window.
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// Windowed 99th-percentile latency, or `None` for an empty window.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_none_not_zero() {
        let w = WindowedHistogram::new(4, 16);
        assert!(w.is_empty());
        assert_eq!(w.total(), 0);
        assert_eq!(w.p50(), None);
        assert_eq!(w.p99(), None);
        assert_eq!(w.rotations(), 0);
    }

    #[test]
    fn quantiles_rotate_out_old_samples() {
        // 2 slots × 4 samples: after 8 slow samples the window is all-slow;
        // 8 fast samples later every slow sample has rotated out and the
        // windowed p50 drops, while a lifetime histogram would still be
        // dominated by the slow half.
        let mut w = WindowedHistogram::new(2, 4);
        for _ in 0..8 {
            w.record(Duration::from_millis(64));
        }
        let slow_p50 = w.p50().unwrap();
        assert!(slow_p50 >= Duration::from_millis(64));
        for _ in 0..8 {
            w.record(Duration::from_micros(10));
        }
        let fast_p50 = w.p50().unwrap();
        assert!(
            fast_p50 < Duration::from_millis(1),
            "stale slow samples must rotate out, got {fast_p50:?}"
        );
        assert!(w.rotations() >= 3);
        assert!(w.total() <= 8, "window holds at most slots × per-slot");
    }

    #[test]
    fn window_caps_total_and_clamps_degenerate_sizes() {
        let mut w = WindowedHistogram::new(0, 0); // clamps to 1 slot × 1 sample
        w.record(Duration::from_micros(5));
        w.record(Duration::from_micros(7));
        assert!(w.total() <= 1);
        let mut w = WindowedHistogram::new(3, 8);
        for i in 0..1000 {
            w.record(Duration::from_micros(i % 50));
        }
        assert!(w.total() <= 24);
        assert!(!w.is_empty());
        assert!(w.p99().is_some());
    }

    #[test]
    fn merged_equals_sum_of_live_slots() {
        let mut w = WindowedHistogram::new(4, 4);
        let mut reference = LatencyHistogram::default();
        // Fewer samples than one slot: merged view == plain histogram.
        for us in [3u64, 9, 27] {
            w.record(Duration::from_micros(us));
            reference.record(Duration::from_micros(us));
        }
        assert_eq!(w.merged(), reference);
        assert_eq!(w.p99(), reference.p99());
    }
}
