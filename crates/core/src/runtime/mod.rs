//! The unified serving runtime: one QoS-classed scheduler with adaptive
//! admission control in front of every server shape.
//!
//! Before this module, `SpannerServer`, live serving, and `ShardedServer`
//! were three parallel frontends that answered any batch thrown at them —
//! no backpressure, no prioritization, no overload behavior. The runtime
//! factors serving into three pieces:
//!
//! * [`Backend`] — the trait the three servers implement: validate a batch,
//!   dispatch it (the pre-runtime unlimited path, bit-identical at every
//!   thread count), report engine occupancy.
//! * [`Router`] — the front door. [`Router::submit`] classifies work into
//!   per-[`QosClass`] FIFO queues (interactive point queries preempt bulk
//!   sweeps), acquires budget from a dynamic concurrency limiter before
//!   dispatch, splits oversized batches into limit-sized chunks, and sheds
//!   past the knee with [`ServeError::Overloaded`] carrying a
//!   `retry_after_hint`.
//! * [`Limiter`] ([`limit`]) — pluggable [`AimdLimit`] / [`GradientLimit`]
//!   algorithms behind a shared inflight gauge, fed windowed latency
//!   quantiles ([`WindowedHistogram`]), deterministic under the seeded
//!   [`VirtualClock`] ([`clock`]).
//!
//! **Answer invariance.** Chunked dispatch relies on the serving stack's
//! standing guarantee that answers are a pure function of the query and the
//! served spanner — never of batch boundaries, cache state, or thread
//! count. Admitted answers through any router configuration are therefore
//! bit-identical to the unlimited path; admission only decides *whether and
//! when* a batch runs, not what it answers. Shed decisions depend only on
//! the workload, the limiter parameters, and the clock — under a virtual
//! clock they are bit-reproducible across machines and thread counts
//! (`tests/admission_determinism.rs`).
//!
//! ```
//! use greedy_spanner::runtime::{QosClass, Router};
//! use greedy_spanner::serve::Query;
//! use greedy_spanner::Spanner;
//! use rand::{rngs::SmallRng, SeedableRng};
//! use spanner_graph::VertexId;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let g = spanner_graph::generators::erdos_renyi_connected(40, 0.3, 1.0..4.0, &mut rng);
//! let server = Spanner::greedy().stretch(2.0).build(&g)?.serve().finish();
//! let mut router = Router::over(server).finish();
//! let answers = router
//!     .submit(
//!         QosClass::Interactive,
//!         &[Query::Distance {
//!             source: VertexId(0),
//!             target: VertexId(7),
//!             bound: f64::INFINITY,
//!         }],
//!     )
//!     .unwrap();
//! assert_eq!(answers.len(), 1);
//! # Ok::<(), greedy_spanner::SpannerError>(())
//! ```

pub mod clock;
pub mod limit;
pub mod window;

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use crate::serve::{Answer, LatencyHistogram, Query, ServeError};

pub use clock::{QueryCosts, ServeClock, VirtualClock};
pub use limit::{AimdLimit, FixedLimit, GradientLimit, InflightGauge, LimitAlgorithm, Limiter};
pub use window::WindowedHistogram;

/// Quality-of-service class of a batch: which runtime queue it waits in.
///
/// Interactive work preempts bulk work — whenever both queues are
/// non-empty, the scheduler dispatches the interactive head first (unless
/// the router was built [`RouterBuilder::fifo`], the strict-arrival-order
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-sensitive point lookups: distance, path, k-nearest.
    Interactive,
    /// Throughput work: ball sweeps and stretch audits.
    Bulk,
}

impl QosClass {
    /// The class a single query belongs to.
    pub fn of(query: &Query) -> QosClass {
        match query {
            Query::Distance { .. } | Query::Path { .. } | Query::KNearest { .. } => {
                QosClass::Interactive
            }
            Query::Ball { .. } | Query::StretchAudit { .. } => QosClass::Bulk,
        }
    }

    /// The class of a whole batch: [`QosClass::Bulk`] if *any* query in it
    /// is bulk (one sweep makes the batch throughput work), interactive
    /// otherwise — including the empty batch.
    pub fn of_batch(queries: &[Query]) -> QosClass {
        if queries.iter().any(|q| QosClass::of(q) == QosClass::Bulk) {
            QosClass::Bulk
        } else {
            QosClass::Interactive
        }
    }

    fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Bulk => 1,
        }
    }
}

/// A query-serving backend the [`Router`] can front: the three server
/// shapes (frozen [`SpannerServer`](crate::serve::SpannerServer), live
/// servers, [`ShardedServer`](crate::shard::ShardedServer)) implement it.
///
/// `dispatch` is the *unlimited* path — the exact pre-runtime
/// `answer_batch` semantics, whole-batch, bit-identical at every thread
/// count. The router builds every admission behavior on top of it.
pub trait Backend {
    /// Checks a batch without running anything: a batch either passes whole
    /// or is rejected whole, exactly like the unlimited path's up-front
    /// validation.
    fn validate_batch(&self, queries: &[Query]) -> Result<(), ServeError>;

    /// Answers a batch unconditionally (no admission control). Must be
    /// insensitive to batch boundaries: dispatching a batch in chunks
    /// yields the same answers as dispatching it whole.
    fn dispatch(&mut self, queries: &[Query]) -> Result<Vec<Answer>, ServeError>;

    /// Engine worker units currently occupied (the engine pool's inflight
    /// gauge) — observability for admission layers.
    fn occupancy(&self) -> usize;
}

/// Handle to a batch accepted by [`Router::offer`]; redeem it with
/// [`Router::collect`] once the batch has been dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Counters and per-class latency views accumulated by a router.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterStats {
    /// Queries accepted (admitted = offered − shed).
    pub admitted: u64,
    /// Queries refused with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Admitted queries that had to wait behind a non-empty queue.
    pub queued: u64,
    /// Summed per-query time between arrival and dispatch.
    pub queue_wait: Duration,
    /// Chunks handed to the backend.
    pub dispatched_chunks: u64,
    /// Most work units ever waiting at once.
    pub peak_queue_units: usize,
    /// Total (wait + service) latency of interactive queries.
    pub interactive_latency: LatencyHistogram,
    /// Total (wait + service) latency of bulk queries.
    pub bulk_latency: LatencyHistogram,
}

impl RouterStats {
    /// The latency histogram of one class.
    pub fn class_latency(&self, class: QosClass) -> &LatencyHistogram {
        match class {
            QosClass::Interactive => &self.interactive_latency,
            QosClass::Bulk => &self.bulk_latency,
        }
    }
}

/// A batch sitting in a runtime queue, partially dispatched.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    class: QosClass,
    queries: Vec<Query>,
    cursor: usize,
    answers: Vec<Answer>,
    arrived: Duration,
}

/// Fallback per-query drain estimate for the retry hint before any latency
/// was observed.
const DEFAULT_RETRY_PER_QUERY: Duration = Duration::from_micros(100);

/// Default overload knee, as a multiple of the current limit: a batch is
/// shed when accepting it would leave more than `shed_factor × limit` units
/// queued.
const DEFAULT_SHED_FACTOR: f64 = 2.0;

/// The router's engine, decoupled from backend ownership so the serving
/// shims (which *are* backends) can drive one over `&mut self`.
#[derive(Debug)]
pub(crate) struct RouterCore {
    limiter: Limiter,
    clock: ServeClock,
    /// One FIFO per [`QosClass`], indexed by [`QosClass::index`].
    queues: [VecDeque<Pending>; 2],
    completed: BTreeMap<u64, Result<Vec<Answer>, ServeError>>,
    next_ticket: u64,
    shed_factor: f64,
    /// Strict arrival-order dispatch (no class preemption) — the
    /// "limiter off" baseline and the shims' compatibility mode.
    fifo: bool,
    queued_units: usize,
    stats: RouterStats,
}

impl RouterCore {
    pub(crate) fn new(limiter: Limiter, clock: ServeClock, shed_factor: f64, fifo: bool) -> Self {
        let shed_factor = if shed_factor.is_finite() {
            shed_factor.max(1.0)
        } else {
            f64::INFINITY
        };
        RouterCore {
            limiter,
            clock,
            queues: [VecDeque::new(), VecDeque::new()],
            completed: BTreeMap::new(),
            next_ticket: 0,
            shed_factor,
            fifo,
            queued_units: 0,
            stats: RouterStats::default(),
        }
    }

    /// The shims' configuration: no limit, no shedding, strict arrival
    /// order, real clock — behaviorally the pre-runtime path.
    pub(crate) fn unlimited() -> Self {
        RouterCore::new(
            Limiter::unlimited(),
            ServeClock::real(),
            f64::INFINITY,
            true,
        )
    }

    pub(crate) fn stats(&self) -> &RouterStats {
        &self.stats
    }

    pub(crate) fn limit(&self) -> usize {
        self.limiter.limit()
    }

    pub(crate) fn window(&self) -> &WindowedHistogram {
        self.limiter.window()
    }

    pub(crate) fn queued_units(&self) -> usize {
        self.queued_units
    }

    pub(crate) fn now(&self) -> Duration {
        self.clock.now()
    }

    pub(crate) fn advance_to(&mut self, at: Duration) {
        self.clock.advance_to(at);
    }

    fn retry_hint(&self, units: usize) -> Duration {
        let per = self
            .limiter
            .window()
            .p50()
            .unwrap_or(DEFAULT_RETRY_PER_QUERY);
        let backlog = (self.queued_units + units) as u32;
        per.saturating_mul(backlog)
    }

    pub(crate) fn offer(
        &mut self,
        backend: &mut dyn Backend,
        class: QosClass,
        queries: &[Query],
    ) -> Result<Ticket, ServeError> {
        backend.validate_batch(queries)?;
        let units = queries.len();
        let ticket = self.next_ticket;
        if units == 0 {
            // An empty batch completes immediately (and occupies no queue).
            self.next_ticket += 1;
            self.completed.insert(ticket, Ok(Vec::new()));
            return Ok(Ticket(ticket));
        }
        if !self.limiter.is_unlimited() {
            let knee = (self.limiter.limit() as f64 * self.shed_factor) as usize;
            if self.queued_units + units > knee.max(1) {
                self.stats.shed += units as u64;
                self.limiter.observe_shed(units, self.queued_units);
                return Err(ServeError::Overloaded {
                    retry_after_hint: self.retry_hint(units),
                });
            }
        }
        self.next_ticket += 1;
        self.stats.admitted += units as u64;
        if self.queued_units > 0 {
            self.stats.queued += units as u64;
        }
        self.queued_units += units;
        self.stats.peak_queue_units = self.stats.peak_queue_units.max(self.queued_units);
        self.queues[class.index()].push_back(Pending {
            ticket,
            class,
            queries: queries.to_vec(),
            cursor: 0,
            answers: Vec::with_capacity(units),
            arrived: self.clock.now(),
        });
        Ok(Ticket(ticket))
    }

    /// Which queue the next chunk comes from: interactive preempts bulk,
    /// unless `fifo` (strict arrival order by ticket).
    fn next_queue(&self) -> Option<usize> {
        match (self.queues[0].front(), self.queues[1].front()) {
            (None, None) => None,
            (Some(_), None) => Some(0),
            (None, Some(_)) => Some(1),
            (Some(interactive), Some(bulk)) => {
                if self.fifo && bulk.ticket < interactive.ticket {
                    Some(1)
                } else {
                    Some(0)
                }
            }
        }
    }

    /// Dispatches one limit-sized chunk from the head of the scheduled
    /// queue; returns the work units it consumed (0 when idle).
    pub(crate) fn step(&mut self, backend: &mut dyn Backend) -> usize {
        let Some(qi) = self.next_queue() else {
            return 0;
        };
        let mut head = self.queues[qi].pop_front().expect("scheduled queue");
        let remaining = head.queries.len() - head.cursor;
        let take = remaining.min(self.limiter.limit().max(1));
        let chunk = &head.queries[head.cursor..head.cursor + take];
        let wait = self.clock.now().saturating_sub(head.arrived);
        self.limiter.gauge_mut().acquire(take);
        let real_start = Instant::now();
        let result = backend.dispatch(chunk);
        let service = self
            .clock
            .charge(chunk)
            .unwrap_or_else(|| real_start.elapsed());
        self.limiter.gauge_mut().release(take);
        self.stats.dispatched_chunks += 1;
        match result {
            Ok(answers) => {
                self.queued_units -= take;
                let per_query = service / take as u32;
                self.limiter.observe(per_query, take, self.queued_units);
                let total = wait + service;
                let class_latency = match head.class {
                    QosClass::Interactive => &mut self.stats.interactive_latency,
                    QosClass::Bulk => &mut self.stats.bulk_latency,
                };
                for _ in 0..take {
                    class_latency.record(total);
                }
                self.stats.queue_wait += wait * take as u32;
                head.answers.extend(answers);
                head.cursor += take;
                if head.cursor == head.queries.len() {
                    self.completed.insert(head.ticket, Ok(head.answers));
                } else {
                    self.queues[qi].push_front(head);
                }
                take
            }
            Err(e) => {
                // The whole ticket aborts: release every unit it still held.
                self.queued_units -= remaining;
                self.completed.insert(head.ticket, Err(e));
                remaining
            }
        }
    }

    /// Dispatches up to one limit's worth of queued work; returns the units
    /// consumed.
    pub(crate) fn poll(&mut self, backend: &mut dyn Backend) -> usize {
        let budget = self.limiter.limit().max(1);
        let mut done = 0;
        while done < budget && self.queued_units > 0 {
            done += self.step(backend);
        }
        done
    }

    /// Dispatches queued work until the clock reaches `deadline` or the
    /// queues empty — the driver loop of open-loop simulations, where work
    /// must not run ahead of the next arrival.
    pub(crate) fn poll_until(&mut self, backend: &mut dyn Backend, deadline: Duration) -> usize {
        let mut done = 0;
        while self.queued_units > 0 && self.clock.now() < deadline {
            done += self.step(backend);
        }
        done
    }

    /// Dispatches everything currently queued.
    pub(crate) fn drain(&mut self, backend: &mut dyn Backend) -> usize {
        let mut done = 0;
        while self.queued_units > 0 {
            done += self.step(backend);
        }
        done
    }

    pub(crate) fn collect(&mut self, ticket: Ticket) -> Option<Result<Vec<Answer>, ServeError>> {
        self.completed.remove(&ticket.0)
    }

    /// Offer + dispatch-to-completion: the blocking submission path.
    pub(crate) fn submit(
        &mut self,
        backend: &mut dyn Backend,
        class: QosClass,
        queries: &[Query],
    ) -> Result<Vec<Answer>, ServeError> {
        let ticket = self.offer(backend, class, queries)?;
        loop {
            if let Some(result) = self.collect(ticket) {
                return result;
            }
            // The ticket is still queued, so the queues are non-empty and
            // `step` always consumes at least one unit — progress is
            // guaranteed.
            self.step(backend);
        }
    }
}

/// The serving front door: a [`Backend`] plus a [`RouterCore`] scheduling
/// queue, built with [`Router::over`].
///
/// Two interaction styles:
///
/// * **Blocking** — [`Router::submit`] runs a batch to completion (waiting
///   its turn behind queued work of equal or higher priority) or sheds it.
/// * **Open-loop** — [`Router::offer`] enqueues, [`Router::poll`] /
///   [`Router::poll_until`] dispatch, [`Router::collect`] redeems tickets;
///   this is how overload simulations and the bench drive it.
#[derive(Debug)]
pub struct Router<B: Backend> {
    backend: B,
    core: RouterCore,
}

impl<B: Backend> Router<B> {
    /// Starts building a router over `backend`; the default configuration
    /// is an AIMD limiter, a real clock, and the standard shed knee.
    pub fn over(backend: B) -> RouterBuilder<B> {
        RouterBuilder {
            backend,
            limiter: Limiter::aimd(AimdLimit::new(64)),
            clock: ServeClock::real(),
            shed_factor: DEFAULT_SHED_FACTOR,
            fifo: false,
        }
    }

    /// Submits a batch and blocks until it is answered or shed.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when admission sheds the batch; any
    /// backend validation/dispatch error otherwise. Shed batches run no
    /// query.
    pub fn submit(
        &mut self,
        class: QosClass,
        queries: &[Query],
    ) -> Result<Vec<Answer>, ServeError> {
        self.core.submit(&mut self.backend, class, queries)
    }

    /// Enqueues a batch without dispatching it, returning a [`Ticket`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::submit`], decided at offer time.
    pub fn offer(&mut self, class: QosClass, queries: &[Query]) -> Result<Ticket, ServeError> {
        self.core.offer(&mut self.backend, class, queries)
    }

    /// Redeems a completed ticket: `None` while still queued, the batch's
    /// result once dispatched (each ticket redeems once).
    pub fn collect(&mut self, ticket: Ticket) -> Option<Result<Vec<Answer>, ServeError>> {
        self.core.collect(ticket)
    }

    /// Dispatches up to one limit's worth of queued work.
    pub fn poll(&mut self) -> usize {
        self.core.poll(&mut self.backend)
    }

    /// Dispatches queued work until the clock reaches `deadline` (measured
    /// from the clock origin) or the queues empty.
    pub fn poll_until(&mut self, deadline: Duration) -> usize {
        self.core.poll_until(&mut self.backend, deadline)
    }

    /// Dispatches everything currently queued.
    pub fn drain(&mut self) -> usize {
        self.core.drain(&mut self.backend)
    }

    /// Declares an arrival instant to a virtual clock (no-op on a real
    /// clock).
    pub fn advance_to(&mut self, at: Duration) {
        self.core.advance_to(at);
    }

    /// Current clock reading, relative to the clock origin.
    pub fn now(&self) -> Duration {
        self.core.now()
    }

    /// The limiter's current limit, in work units.
    pub fn limit(&self) -> usize {
        self.core.limit()
    }

    /// Work units currently queued.
    pub fn queued_units(&self) -> usize {
        self.core.queued_units()
    }

    /// Admission counters and per-class latency views.
    pub fn stats(&self) -> &RouterStats {
        self.core.stats()
    }

    /// The windowed latency view feeding the limiter.
    pub fn window(&self) -> &WindowedHistogram {
        self.core.window()
    }

    /// The fronted backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the fronted backend (e.g. to apply live updates
    /// between batches).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps the router, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

/// Configures a [`Router`]; made by [`Router::over`].
#[derive(Debug)]
pub struct RouterBuilder<B: Backend> {
    backend: B,
    limiter: Limiter,
    clock: ServeClock,
    shed_factor: f64,
    fifo: bool,
}

impl<B: Backend> RouterBuilder<B> {
    /// Replaces the limiter (see [`Limiter::aimd`], [`Limiter::gradient`],
    /// [`Limiter::fixed`], [`Limiter::unlimited`]).
    pub fn limiter(mut self, limiter: Limiter) -> Self {
        self.limiter = limiter;
        self
    }

    /// Runs the router on a seeded [`VirtualClock`] — deterministic
    /// admission for tests and simulations.
    pub fn virtual_clock(mut self, clock: VirtualClock) -> Self {
        self.clock = ServeClock::Virtual(clock);
        self
    }

    /// Sets the overload knee as a multiple of the current limit (clamped
    /// ≥ 1; non-finite disables shedding). A batch is shed when accepting
    /// it would leave more than `shed_factor × limit` units queued.
    pub fn shed_factor(mut self, shed_factor: f64) -> Self {
        self.shed_factor = shed_factor;
        self
    }

    /// Strict arrival-order dispatch, disabling class preemption — the
    /// "no QoS" baseline the overload bench compares against.
    pub fn fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Builds the router.
    pub fn finish(self) -> Router<B> {
        Router {
            backend: self.backend,
            core: RouterCore::new(self.limiter, self.clock, self.shed_factor, self.fifo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::VertexId;

    /// A backend that answers every query with its index-independent stub
    /// and records the chunk sizes it was handed.
    #[derive(Debug, Default)]
    struct EchoBackend {
        chunks: Vec<usize>,
        occupancy: usize,
    }

    impl Backend for EchoBackend {
        fn validate_batch(&self, queries: &[Query]) -> Result<(), ServeError> {
            for q in queries {
                if let Query::Distance { bound, .. } = q {
                    if bound.is_nan() || *bound < 0.0 {
                        return Err(ServeError::InvalidBound { bound: *bound });
                    }
                }
            }
            Ok(())
        }

        fn dispatch(&mut self, queries: &[Query]) -> Result<Vec<Answer>, ServeError> {
            self.chunks.push(queries.len());
            Ok(queries
                .iter()
                .map(|_| Answer::Distance(Some(1.0)))
                .collect())
        }

        fn occupancy(&self) -> usize {
            self.occupancy
        }
    }

    fn point(i: usize) -> Query {
        Query::Distance {
            source: VertexId(i),
            target: VertexId(i + 1),
            bound: f64::INFINITY,
        }
    }

    fn ball(i: usize) -> Query {
        Query::Ball {
            source: VertexId(i),
            radius: 1.0,
        }
    }

    #[test]
    fn qos_classification() {
        assert_eq!(QosClass::of(&point(0)), QosClass::Interactive);
        assert_eq!(
            QosClass::of(&Query::KNearest {
                source: VertexId(0),
                k: 3
            }),
            QosClass::Interactive
        );
        assert_eq!(QosClass::of(&ball(0)), QosClass::Bulk);
        assert_eq!(
            QosClass::of(&Query::StretchAudit {
                source: VertexId(0),
                target: VertexId(1)
            }),
            QosClass::Bulk
        );
        assert_eq!(
            QosClass::of_batch(&[point(0), point(1)]),
            QosClass::Interactive
        );
        assert_eq!(QosClass::of_batch(&[point(0), ball(1)]), QosClass::Bulk);
        assert_eq!(QosClass::of_batch(&[]), QosClass::Interactive);
    }

    #[test]
    fn unlimited_router_passes_batches_through_whole() {
        let mut router = Router::over(EchoBackend::default())
            .limiter(Limiter::unlimited())
            .fifo(true)
            .finish();
        let queries: Vec<Query> = (0..100).map(point).collect();
        let answers = router.submit(QosClass::Interactive, &queries).unwrap();
        assert_eq!(answers.len(), 100);
        assert_eq!(router.backend().chunks, vec![100], "one whole chunk");
        assert_eq!(router.stats().admitted, 100);
        assert_eq!(router.stats().shed, 0);
        assert_eq!(router.stats().queued, 0, "nothing waited");
        // Empty batches answer empty without queueing.
        assert!(router.submit(QosClass::Bulk, &[]).unwrap().is_empty());
    }

    #[test]
    fn limited_router_chunks_batches_and_interactive_preempts_bulk() {
        let mut router = Router::over(EchoBackend::default())
            .limiter(Limiter::fixed(8))
            .shed_factor(f64::INFINITY)
            .virtual_clock(VirtualClock::seeded(1))
            .finish();
        let bulk: Vec<Query> = (0..32).map(ball).collect();
        let bulk_ticket = router.offer(QosClass::Bulk, &bulk).unwrap();
        let interactive: Vec<Query> = (0..4).map(point).collect();
        let interactive_ticket = router.offer(QosClass::Interactive, &interactive).unwrap();
        router.drain();
        // The interactive batch arrived second but dispatched first.
        assert_eq!(router.backend().chunks[0], 4, "interactive preempts");
        assert!(router.backend().chunks[1..].iter().all(|&c| c <= 8));
        let a = router.collect(interactive_ticket).unwrap().unwrap();
        assert_eq!(a.len(), 4);
        let b = router.collect(bulk_ticket).unwrap().unwrap();
        assert_eq!(b.len(), 32, "chunked ticket reassembles in order");
        assert!(router.collect(bulk_ticket).is_none(), "redeems once");
        assert_eq!(router.stats().queued, 4, "interactive waited behind bulk");
        assert!(router.stats().interactive_latency.total() == 4);
        assert!(router.stats().bulk_latency.total() == 32);
    }

    #[test]
    fn fifo_mode_respects_arrival_order() {
        let mut router = Router::over(EchoBackend::default())
            .limiter(Limiter::fixed(8))
            .shed_factor(f64::INFINITY)
            .virtual_clock(VirtualClock::seeded(1))
            .fifo(true)
            .finish();
        let bulk: Vec<Query> = (0..16).map(ball).collect();
        router.offer(QosClass::Bulk, &bulk).unwrap();
        router.offer(QosClass::Interactive, &[point(0)]).unwrap();
        router.drain();
        // Strict arrival order: the bulk batch (first in) fully dispatches
        // before the interactive query.
        assert_eq!(router.backend().chunks, vec![8, 8, 1]);
    }

    #[test]
    fn overload_sheds_with_a_retry_hint_and_stays_typed() {
        let mut router = Router::over(EchoBackend::default())
            .limiter(Limiter::fixed(4))
            .shed_factor(2.0)
            .virtual_clock(VirtualClock::seeded(7))
            .finish();
        // Knee = 2 × 4 = 8 units: a 6-unit batch fits…
        router
            .offer(QosClass::Bulk, &(0..6).map(ball).collect::<Vec<_>>())
            .unwrap();
        // …but another 6 units would leave 12 > 8 queued: shed.
        let err = router
            .offer(QosClass::Bulk, &(0..6).map(ball).collect::<Vec<_>>())
            .unwrap_err();
        let ServeError::Overloaded { retry_after_hint } = err else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert!(retry_after_hint > Duration::ZERO);
        assert_eq!(router.stats().shed, 6);
        assert_eq!(router.stats().admitted, 6);
        // Shed batches ran nothing.
        assert!(router.backend().chunks.is_empty());
        router.drain();
        assert_eq!(router.stats().admitted, 6);
        assert_eq!(router.queued_units(), 0);
        // With the backlog drained, a new batch is admitted again.
        router
            .offer(QosClass::Bulk, &(0..6).map(ball).collect::<Vec<_>>())
            .unwrap();
    }

    #[test]
    fn invalid_batches_fail_validation_not_admission() {
        let mut router = Router::over(EchoBackend::default()).finish();
        let err = router
            .submit(
                QosClass::Interactive,
                &[Query::Distance {
                    source: VertexId(0),
                    target: VertexId(1),
                    bound: -1.0,
                }],
            )
            .unwrap_err();
        assert_eq!(err, ServeError::InvalidBound { bound: -1.0 });
        assert_eq!(router.stats().admitted, 0);
        assert_eq!(router.stats().shed, 0);
    }

    #[test]
    fn queue_wait_accrues_under_the_virtual_clock() {
        let mut router = Router::over(EchoBackend::default())
            .limiter(Limiter::fixed(2))
            .shed_factor(f64::INFINITY)
            .virtual_clock(VirtualClock::seeded(3).with_jitter(0.0))
            .finish();
        router
            .offer(QosClass::Bulk, &(0..4).map(ball).collect::<Vec<_>>())
            .unwrap();
        router.offer(QosClass::Interactive, &[point(0)]).unwrap();
        router.drain();
        // Preemption dispatched the interactive query first, so it never
        // waited — but the bulk chunks queued behind it (and each other)
        // accrued wait, visible in both the counter and the class latency.
        assert_eq!(router.backend().chunks[0], 1, "interactive first");
        assert!(router.stats().queue_wait > Duration::ZERO);
        let interactive = router.stats().interactive_latency.max().unwrap();
        let bulk = router.stats().bulk_latency.max().unwrap();
        assert!(
            bulk > interactive,
            "queued bulk work carries the wait: {bulk:?} vs {interactive:?}"
        );
    }

    #[test]
    fn identical_configurations_make_identical_decisions() {
        let run = || {
            let mut router = Router::over(EchoBackend::default())
                .limiter(Limiter::aimd(AimdLimit::new(8).with_range(1, 64)))
                .shed_factor(1.5)
                .virtual_clock(VirtualClock::seeded(11))
                .finish();
            let mut outcomes = Vec::new();
            for round in 0..40 {
                let batch: Vec<Query> = if round % 3 == 0 {
                    (0..12).map(ball).collect()
                } else {
                    (0..6).map(point).collect()
                };
                let class = QosClass::of_batch(&batch);
                match router.offer(class, &batch) {
                    Ok(_) => outcomes.push(true),
                    Err(ServeError::Overloaded { .. }) => outcomes.push(false),
                    Err(e) => panic!("unexpected {e:?}"),
                }
                if round % 4 == 3 {
                    router.poll();
                }
            }
            router.drain();
            (outcomes, router.stats().clone(), router.limit())
        };
        let (a_out, a_stats, a_limit) = run();
        let (b_out, b_stats, b_limit) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_limit, b_limit);
        assert_eq!(a_stats, b_stats);
        assert!(a_stats.shed > 0, "the scenario must actually shed");
    }
}
