//! Time sources for the serving runtime: real wall time in production, a
//! seeded virtual clock in tests and overload simulations.
//!
//! Admission decisions (shed / queue / dispatch order) must be reproducible
//! to be testable, but they are driven by latency — the least reproducible
//! signal a real machine produces. The split here is the one the
//! determinism suite relies on: a [`VirtualClock`] *models* per-query
//! service time with a seeded cost model (per query kind, with
//! deterministic jitter), so every limiter sample, every queue-wait, and
//! therefore every shed decision is a pure function of the workload and the
//! seed — never of thread scheduling or machine load. Queries are still
//! dispatched to the real backend and answered for real; only the *timing*
//! the runtime observes is synthetic.

use std::time::{Duration, Instant};

use crate::serve::Query;

/// Modeled service cost per query kind, used by [`VirtualClock::charge`].
///
/// Defaults reflect the relative shape measured on the serving benches:
/// point lookups (distance/path/k-nearest) are cheap, radius sweeps and
/// stretch audits cost an order of magnitude more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCosts {
    /// Cost of a [`Query::Distance`].
    pub distance: Duration,
    /// Cost of a [`Query::Path`].
    pub path: Duration,
    /// Cost of a [`Query::KNearest`].
    pub k_nearest: Duration,
    /// Cost of a [`Query::Ball`].
    pub ball: Duration,
    /// Cost of a [`Query::StretchAudit`].
    pub stretch_audit: Duration,
}

impl Default for QueryCosts {
    fn default() -> Self {
        QueryCosts {
            distance: Duration::from_micros(20),
            path: Duration::from_micros(40),
            k_nearest: Duration::from_micros(60),
            ball: Duration::from_micros(400),
            stretch_audit: Duration::from_micros(500),
        }
    }
}

impl QueryCosts {
    /// The modeled cost of one query.
    pub fn of(&self, query: &Query) -> Duration {
        match query {
            Query::Distance { .. } => self.distance,
            Query::Path { .. } => self.path,
            Query::KNearest { .. } => self.k_nearest,
            Query::Ball { .. } => self.ball,
            Query::StretchAudit { .. } => self.stretch_audit,
        }
    }
}

/// A deterministic simulated clock: monotone nanoseconds advanced by a
/// seeded per-query cost model.
///
/// Two things move time forward: [`VirtualClock::charge`] (dispatching work
/// costs its modeled service time) and [`VirtualClock::advance_to`] (the
/// driver declaring an arrival instant). Jitter comes from a splitmix64
/// stream over the seed, so two clocks with the same seed observing the
/// same query sequence read identical times — on any machine, at any
/// thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualClock {
    now_nanos: u64,
    state: u64,
    costs: QueryCosts,
    jitter: f64,
}

/// Default ± fraction of jitter applied to each query's modeled cost.
const DEFAULT_JITTER: f64 = 0.25;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl VirtualClock {
    /// A virtual clock at time zero whose jitter stream is seeded with
    /// `seed`, using the default [`QueryCosts`].
    pub fn seeded(seed: u64) -> Self {
        VirtualClock {
            now_nanos: 0,
            state: seed,
            costs: QueryCosts::default(),
            jitter: DEFAULT_JITTER,
        }
    }

    /// Replaces the per-kind cost model.
    pub fn with_costs(mut self, costs: QueryCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the jitter fraction (clamped to `[0, 0.9]`); `0.0` makes every
    /// charge exactly its modeled cost.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = if jitter.is_finite() {
            jitter.clamp(0.0, 0.9)
        } else {
            0.0
        };
        self
    }

    /// Current virtual time since the clock's origin.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos)
    }

    /// Charges the modeled service time of `queries` (cost per kind ×
    /// deterministic jitter), advances the clock by it, and returns it.
    pub fn charge(&mut self, queries: &[Query]) -> Duration {
        let mut total: u64 = 0;
        for query in queries {
            let base = self.costs.of(query).as_nanos().min(u128::from(u64::MAX)) as u64;
            let unit = splitmix64(&mut self.state) as f64 / u64::MAX as f64;
            let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
            total = total.saturating_add((base as f64 * factor) as u64);
        }
        self.now_nanos = self.now_nanos.saturating_add(total);
        Duration::from_nanos(total)
    }

    /// Moves the clock forward to `at` (no-op if already past — virtual
    /// time is monotone, like the wall clock it stands in for).
    pub fn advance_to(&mut self, at: Duration) {
        let at = at.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.now_nanos = self.now_nanos.max(at);
    }
}

/// The runtime's time source: real (production) or virtual (tests, overload
/// simulations).
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Wall time, measured from the clock's creation instant.
    Real {
        /// When this clock was created; [`ServeClock::now`] reads relative
        /// to it.
        origin: Instant,
    },
    /// Simulated time — see [`VirtualClock`].
    Virtual(VirtualClock),
}

impl Default for ServeClock {
    fn default() -> Self {
        ServeClock::real()
    }
}

impl ServeClock {
    /// A real wall clock starting now.
    pub fn real() -> Self {
        ServeClock::Real {
            origin: Instant::now(),
        }
    }

    /// Is this the virtual variant?
    pub fn is_virtual(&self) -> bool {
        matches!(self, ServeClock::Virtual(_))
    }

    /// Time elapsed since the clock's origin.
    pub fn now(&self) -> Duration {
        match self {
            ServeClock::Real { origin } => origin.elapsed(),
            ServeClock::Virtual(vc) => vc.now(),
        }
    }

    /// Charges service time for a dispatched chunk: the virtual clock
    /// returns its modeled (and clock-advancing) cost, the real clock
    /// returns `None` — the caller measures actual elapsed time instead.
    pub fn charge(&mut self, queries: &[Query]) -> Option<Duration> {
        match self {
            ServeClock::Real { .. } => None,
            ServeClock::Virtual(vc) => Some(vc.charge(queries)),
        }
    }

    /// Declares an arrival instant: moves a virtual clock forward to `at`;
    /// a real clock ignores it (wall time advances on its own).
    pub fn advance_to(&mut self, at: Duration) {
        if let ServeClock::Virtual(vc) = self {
            vc.advance_to(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::VertexId;

    fn point(i: usize) -> Query {
        Query::Distance {
            source: VertexId(i),
            target: VertexId(i + 1),
            bound: f64::INFINITY,
        }
    }

    #[test]
    fn same_seed_same_timeline() {
        let queries: Vec<Query> = (0..32).map(point).collect();
        let mut a = VirtualClock::seeded(7);
        let mut b = VirtualClock::seeded(7);
        assert_eq!(a.charge(&queries), b.charge(&queries));
        assert_eq!(a.now(), b.now());
        let mut c = VirtualClock::seeded(8);
        c.charge(&queries);
        assert_ne!(a.now(), c.now(), "different seeds jitter differently");
    }

    #[test]
    fn charge_scales_with_cost_model_and_jitter_bounds() {
        let costs = QueryCosts {
            distance: Duration::from_micros(100),
            ..QueryCosts::default()
        };
        let mut clock = VirtualClock::seeded(1).with_costs(costs).with_jitter(0.25);
        let charged = clock.charge(&[point(0)]);
        assert!(charged >= Duration::from_micros(75) && charged <= Duration::from_micros(125));
        let mut exact = VirtualClock::seeded(1).with_costs(costs).with_jitter(0.0);
        assert_eq!(exact.charge(&[point(0)]), Duration::from_micros(100));
        // Bulk queries are modeled as more expensive than point queries.
        let ball = Query::Ball {
            source: VertexId(0),
            radius: 1.0,
        };
        assert!(QueryCosts::default().of(&ball) > QueryCosts::default().of(&point(0)));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut clock = VirtualClock::seeded(0);
        clock.advance_to(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.advance_to(Duration::from_millis(3));
        assert_eq!(clock.now(), Duration::from_millis(5), "never rewinds");
        let mut serve = ServeClock::Virtual(clock);
        assert!(serve.is_virtual());
        serve.advance_to(Duration::from_millis(9));
        assert_eq!(serve.now(), Duration::from_millis(9));
        assert!(serve.charge(&[point(0)]).is_some());
        let mut real = ServeClock::real();
        assert!(real.charge(&[point(0)]).is_none());
    }
}
