//! The single error hierarchy shared by every spanner construction.
//!
//! The workspace used to have two overlapping error surfaces: substrate
//! failures ([`GraphError`], from `spanner-graph`) and construction failures
//! (`SpannerError`), each with its own "empty input" variant. They are now a
//! single `From`-chained hierarchy surfaced as [`SpannerError`]:
//!
//! * substrate errors convert with `?` via [`From<GraphError>`], with the
//!   overlapping [`GraphError::EmptyGraph`] canonicalized to
//!   [`SpannerError::EmptyInput`] so callers match one variant for "the input
//!   was empty" regardless of which layer noticed;
//! * all other graph failures are carried as [`SpannerError::Graph`] and
//!   remain reachable through [`std::error::Error::source`].

use std::error::Error;
use std::fmt;

pub use spanner_graph::GraphError;

/// Errors produced by spanner constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum SpannerError {
    /// The stretch parameter was below 1 or not finite.
    InvalidStretch {
        /// The offending stretch value.
        stretch: f64,
    },
    /// The accuracy parameter ε was outside the supported range.
    InvalidEpsilon {
        /// The offending ε value.
        epsilon: f64,
    },
    /// The sparseness parameter `k` was zero.
    InvalidK,
    /// The input graph or metric was empty where at least one vertex/point is
    /// required.
    EmptyInput,
    /// An algorithm was handed an input kind it cannot consume (for example a
    /// Θ-graph construction over an abstract metric without coordinates).
    Unsupported {
        /// Name of the algorithm, as reported by `SpannerAlgorithm::name`.
        algorithm: String,
        /// Short description of the offered input kind.
        input: String,
    },
    /// A substrate graph operation failed (all non-empty-input graph errors).
    Graph(GraphError),
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::InvalidStretch { stretch } => {
                write!(
                    f,
                    "stretch parameter {stretch} must be a finite number at least 1"
                )
            }
            SpannerError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon {epsilon} must be a finite number in (0, 1)")
            }
            SpannerError::InvalidK => write!(f, "sparseness parameter k must be at least 1"),
            SpannerError::EmptyInput => write!(f, "input graph or metric has no vertices"),
            SpannerError::Unsupported { algorithm, input } => {
                write!(f, "algorithm {algorithm} does not support {input} inputs")
            }
            SpannerError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for SpannerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpannerError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SpannerError {
    fn from(e: GraphError) -> Self {
        match e {
            // The two layers used to expose overlapping empty-input variants;
            // canonicalize on the construction-level one.
            GraphError::EmptyGraph => SpannerError::EmptyInput,
            other => SpannerError::Graph(other),
        }
    }
}

/// Validates a stretch parameter `t >= 1`.
pub fn validate_stretch(t: f64) -> Result<(), SpannerError> {
    if t.is_finite() && t >= 1.0 {
        Ok(())
    } else {
        Err(SpannerError::InvalidStretch { stretch: t })
    }
}

/// Validates an accuracy parameter `0 < ε < 1`.
pub fn validate_epsilon(epsilon: f64) -> Result<(), SpannerError> {
    if epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0 {
        Ok(())
    } else {
        Err(SpannerError::InvalidEpsilon { epsilon })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errs: Vec<SpannerError> = vec![
            SpannerError::InvalidStretch { stretch: 0.5 },
            SpannerError::InvalidEpsilon { epsilon: 2.0 },
            SpannerError::InvalidK,
            SpannerError::EmptyInput,
            SpannerError::Unsupported {
                algorithm: "theta-graph".into(),
                input: "metric".into(),
            },
            SpannerError::Graph(GraphError::Disconnected),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn graph_errors_convert_and_expose_source() {
        let e: SpannerError = GraphError::Disconnected.into();
        assert!(matches!(e, SpannerError::Graph(_)));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SpannerError::InvalidK).is_none());
    }

    #[test]
    fn overlapping_empty_variants_are_canonicalized() {
        // The hierarchy exposes exactly one "empty input" variant: converting
        // the substrate's EmptyGraph must land on SpannerError::EmptyInput.
        let e: SpannerError = GraphError::EmptyGraph.into();
        assert_eq!(e, SpannerError::EmptyInput);
    }

    #[test]
    fn stretch_validation() {
        assert!(validate_stretch(1.0).is_ok());
        assert!(validate_stretch(3.5).is_ok());
        assert!(validate_stretch(0.99).is_err());
        assert!(validate_stretch(f64::NAN).is_err());
        assert!(validate_stretch(f64::INFINITY).is_err());
    }

    #[test]
    fn epsilon_validation() {
        assert!(validate_epsilon(0.1).is_ok());
        assert!(validate_epsilon(0.999).is_ok());
        assert!(validate_epsilon(0.0).is_err());
        assert!(validate_epsilon(1.0).is_err());
        assert!(validate_epsilon(f64::NAN).is_err());
    }
}
